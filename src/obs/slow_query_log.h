#ifndef PROMETHEUS_OBS_SLOW_QUERY_LOG_H_
#define PROMETHEUS_OBS_SLOW_QUERY_LOG_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace prometheus::obs {

/// Bounded in-memory log of queries whose execution exceeded a threshold:
/// the query text, the elapsed time and the execution profile (the plan
/// line from EXPLAIN, or the full per-stage trace when the request was
/// profiled). A ring buffer of the most recent `capacity` entries —
/// overload produces many slow queries and the interesting ones are the
/// latest.
///
/// Thread-safe; recording takes a short mutex (the slow path has already
/// spent >= threshold, so the lock is noise). A threshold < 0 disables
/// the log entirely: `ShouldRecord` is then a single comparison.
class SlowQueryLog {
 public:
  struct Entry {
    std::uint64_t request_id = 0;
    std::string trace_id;  ///< trace-context id (correlates with the
                           ///< flight recorder and the caller's headers)
    std::string query;
    double micros = 0;
    std::string profile;  ///< plan summary or rendered trace tree
    /// Wait breakdown at record time, so a slow query is diagnosable from
    /// /slowlog alone: was it queued, blocked on the guard, or actually
    /// executing? (Zeros when the server had timing off.)
    double queue_micros = 0;
    double guard_wait_micros = 0;
    double execute_micros = 0;
  };

  explicit SlowQueryLog(double threshold_micros = -1,
                        std::size_t capacity = 128)
      : threshold_micros_(threshold_micros),
        capacity_(capacity == 0 ? 1 : capacity) {}

  bool enabled() const { return threshold_micros_ >= 0; }
  double threshold_micros() const { return threshold_micros_; }

  /// The cheap guard callers check before assembling an Entry.
  bool ShouldRecord(double elapsed_micros) const {
    return enabled() && elapsed_micros >= threshold_micros_;
  }

  void Record(Entry entry) {
    std::lock_guard<std::mutex> lock(mu_);
    if (entries_.size() >= capacity_) entries_.pop_front();
    entries_.push_back(std::move(entry));
    recorded_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Copies the retained entries, oldest first.
  std::vector<Entry> entries() const {
    std::lock_guard<std::mutex> lock(mu_);
    return {entries_.begin(), entries_.end()};
  }

  /// Total recorded since construction (including entries the ring has
  /// since evicted).
  std::uint64_t recorded_total() const {
    return recorded_.load(std::memory_order_relaxed);
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
  }

 private:
  const double threshold_micros_;
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::deque<Entry> entries_;
  std::atomic<std::uint64_t> recorded_{0};
};

}  // namespace prometheus::obs

#endif  // PROMETHEUS_OBS_SLOW_QUERY_LOG_H_
