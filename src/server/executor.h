#ifndef PROMETHEUS_SERVER_EXECUTOR_H_
#define PROMETHEUS_SERVER_EXECUTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace prometheus::server {

/// Fixed-size worker pool with a bounded queue — the admission half of the
/// service layer. Three properties the server builds on:
///
///  1. **Backpressure, not buffering**: `Submit` never blocks and never
///     grows the queue past its capacity. A full queue refuses the job, and
///     the caller surfaces that to the client (`ResponseCode::kRejected`) —
///     overload sheds load at the edge instead of ballooning latency.
///  2. **Exactly-once completion**: every accepted job is invoked exactly
///     once — with `run=true` by a worker, or with `run=false` when a
///     non-draining shutdown discards the queue. A job owns its completion
///     signal (a promise) and can therefore always resolve it.
///  3. **Graceful drain**: `Shutdown(drain=true)` stops admission, runs the
///     queue dry, and joins the workers.
class ThreadPoolExecutor {
 public:
  /// A unit of work. `run=false` means the executor is discarding the job
  /// (non-draining shutdown); the job must still resolve its completion.
  using Job = std::function<void(bool run)>;

  struct Options {
    int threads = 4;
    std::size_t queue_capacity = 256;
  };

  explicit ThreadPoolExecutor(const Options& options);

  /// Drains and joins (Shutdown(true)) if not already shut down.
  ~ThreadPoolExecutor();

  ThreadPoolExecutor(const ThreadPoolExecutor&) = delete;
  ThreadPoolExecutor& operator=(const ThreadPoolExecutor&) = delete;

  /// Enqueues a job. Returns false — without blocking and without invoking
  /// the job — when the queue is at capacity or the executor is shutting
  /// down.
  bool Submit(Job job);

  /// Stops accepting work, disposes of the queue (running it with `drain`,
  /// discarding it otherwise) and joins the workers. Idempotent.
  void Shutdown(bool drain = true);

  int threads() const { return static_cast<int>(workers_.size()); }
  std::size_t queue_capacity() const { return capacity_; }

  /// Instantaneous queue depth (racy by nature; for stats only).
  std::size_t queue_depth() const;

  /// Jobs run to completion (run=true invocations).
  std::uint64_t executed() const {
    return executed_.load(std::memory_order_relaxed);
  }

  /// Submissions refused by backpressure or shutdown.
  std::uint64_t rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }

 private:
  void WorkerLoop(int worker_index);

  const std::size_t capacity_;
  std::mutex shutdown_mu_;  ///< serialises Shutdown callers (worker joins)
  mutable std::mutex mu_;
  std::condition_variable not_empty_;  ///< signalled on enqueue and shutdown
  std::deque<Job> queue_;
  std::vector<std::thread> workers_;
  bool shutting_down_ = false;
  std::atomic<std::uint64_t> executed_{0};
  std::atomic<std::uint64_t> rejected_{0};
};

}  // namespace prometheus::server

#endif  // PROMETHEUS_SERVER_EXECUTOR_H_
