# Empty compiler generated dependencies file for library_catalogue.
# This may be replaced when dependencies are built.
