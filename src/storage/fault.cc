#include "storage/fault.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <system_error>

namespace prometheus::storage {

namespace {

namespace fs = std::filesystem;

Status Errno(const std::string& what, const std::string& path) {
  return Status::IoError(what + " '" + path + "': " + std::strerror(errno));
}

/// Unbuffered POSIX file: Append maps to write(2), Sync to fsync(2).
class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(std::string_view data) override {
    if (fd_ < 0) return Status::IoError("append to closed file '" + path_ + "'");
    const char* p = data.data();
    std::size_t left = data.size();
    while (left > 0) {
      ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Errno("write", path_);
      }
      p += n;
      left -= static_cast<std::size_t>(n);
    }
    return Status::Ok();
  }

  Status Flush() override { return Status::Ok(); }  // unbuffered

  Status Sync() override {
    if (fd_ < 0) return Status::IoError("sync of closed file '" + path_ + "'");
    if (::fsync(fd_) != 0) return Errno("fsync", path_);
    return Status::Ok();
  }

  Status Close() override {
    if (fd_ < 0) return Status::Ok();
    int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return Errno("close", path_);
    return Status::Ok();
  }

 private:
  int fd_;
  std::string path_;
};

class PosixEnv : public Env {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override {
    int flags = O_WRONLY | O_CREAT | (truncate ? O_TRUNC : O_APPEND);
    int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) return Errno("open", path);
    return std::unique_ptr<WritableFile>(
        std::make_unique<PosixWritableFile>(fd, path));
  }

  bool FileExists(const std::string& path) override {
    std::error_code ec;
    return fs::exists(path, ec);
  }

  Result<std::uint64_t> FileSize(const std::string& path) override {
    std::error_code ec;
    std::uintmax_t size = fs::file_size(path, ec);
    if (ec) return Status::IoError("stat '" + path + "': " + ec.message());
    return static_cast<std::uint64_t>(size);
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    std::error_code ec;
    fs::rename(from, to, ec);
    if (ec) {
      return Status::IoError("rename '" + from + "' -> '" + to +
                             "': " + ec.message());
    }
    return Status::Ok();
  }

  Status RemoveFile(const std::string& path) override {
    std::error_code ec;
    fs::remove(path, ec);  // removing a missing file is fine
    if (ec) return Status::IoError("remove '" + path + "': " + ec.message());
    return Status::Ok();
  }

  Status TruncateFile(const std::string& path, std::uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return Errno("truncate", path);
    }
    return Status::Ok();
  }

  Status CreateDir(const std::string& path) override {
    std::error_code ec;
    fs::create_directories(path, ec);
    if (ec) return Status::IoError("mkdir '" + path + "': " + ec.message());
    return Status::Ok();
  }

  Result<std::vector<std::string>> ListDir(const std::string& path) override {
    std::error_code ec;
    std::vector<std::string> names;
    for (fs::directory_iterator it(path, ec), end; !ec && it != end;
         it.increment(ec)) {
      names.push_back(it->path().filename().string());
    }
    if (ec) return Status::IoError("list '" + path + "': " + ec.message());
    return names;
  }

  Status SyncDir(const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return Errno("open dir", path);
    Status st = Status::Ok();
    if (::fsync(fd) != 0) st = Errno("fsync dir", path);
    ::close(fd);
    return st;
  }
};

Status InjectedFault() { return Status::IoError("injected fault: env crashed"); }

}  // namespace

Env* Env::Default() {
  static PosixEnv env;
  return &env;
}

/// WritableFile wrapper that consults the owning FaultInjectionEnv before
/// letting any byte through.
class FaultInjectedFile : public WritableFile {
 public:
  FaultInjectedFile(FaultInjectionEnv* env, std::unique_ptr<WritableFile> base)
      : env_(env), base_(std::move(base)) {}

  Status Append(std::string_view data) override {
    bool fail = false;
    std::size_t allowed = env_->JudgeAppend(data.size(), &fail);
    if (allowed > 0) {
      Status st = base_->Append(data.substr(0, allowed));
      if (!st.ok()) return st;
    }
    if (fail) return InjectedFault();
    return Status::Ok();
  }

  Status Flush() override {
    if (env_->crashed_) return InjectedFault();
    return base_->Flush();
  }

  Status Sync() override {
    if (env_->crashed_) return InjectedFault();
    if (env_->policy_.fail_sync) return Status::IoError("injected fsync failure");
    return base_->Sync();
  }

  Status Close() override { return base_->Close(); }

 private:
  FaultInjectionEnv* env_;
  std::unique_ptr<WritableFile> base_;
};

FaultInjectionEnv::FaultInjectionEnv(Env* base)
    : base_(base != nullptr ? base : Env::Default()) {}

void FaultInjectionEnv::SetPolicy(FaultPolicy policy) {
  policy_ = policy;
  crashed_ = false;
  appends_seen_ = 0;
  bytes_written_ = 0;
}

std::size_t FaultInjectionEnv::JudgeAppend(std::size_t size, bool* fail) {
  *fail = false;
  if (crashed_) {
    *fail = true;
    return 0;
  }
  ++appends_seen_;
  bool fires = false;
  if (policy_.fail_after_appends >= 0 &&
      appends_seen_ >= static_cast<std::uint64_t>(policy_.fail_after_appends)) {
    fires = true;
  }
  std::size_t allowed = size;
  if (policy_.fail_after_bytes >= 0 &&
      bytes_written_ + size >=
          static_cast<std::uint64_t>(policy_.fail_after_bytes)) {
    fires = true;
    std::uint64_t budget =
        static_cast<std::uint64_t>(policy_.fail_after_bytes) - bytes_written_;
    allowed = static_cast<std::size_t>(budget < size ? budget : size);
  }
  if (fires) {
    crashed_ = true;
    *fail = true;
    if (!policy_.torn_writes) return 0;
    if (allowed == size) allowed = size / 2;  // tear the append-count fault too
    bytes_written_ += allowed;
    return allowed;
  }
  bytes_written_ += size;
  return size;
}

Result<std::unique_ptr<WritableFile>> FaultInjectionEnv::NewWritableFile(
    const std::string& path, bool truncate) {
  if (crashed_) return InjectedFault();
  PROMETHEUS_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> base,
                              base_->NewWritableFile(path, truncate));
  return std::unique_ptr<WritableFile>(
      std::make_unique<FaultInjectedFile>(this, std::move(base)));
}

bool FaultInjectionEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Result<std::uint64_t> FaultInjectionEnv::FileSize(const std::string& path) {
  return base_->FileSize(path);
}

Status FaultInjectionEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  if (crashed_) return InjectedFault();
  if (policy_.fail_rename) return Status::IoError("injected rename failure");
  return base_->RenameFile(from, to);
}

Status FaultInjectionEnv::RemoveFile(const std::string& path) {
  if (crashed_) return InjectedFault();
  return base_->RemoveFile(path);
}

Status FaultInjectionEnv::TruncateFile(const std::string& path,
                                       std::uint64_t size) {
  if (crashed_) return InjectedFault();
  return base_->TruncateFile(path, size);
}

Status FaultInjectionEnv::CreateDir(const std::string& path) {
  if (crashed_) return InjectedFault();
  return base_->CreateDir(path);
}

Result<std::vector<std::string>> FaultInjectionEnv::ListDir(
    const std::string& path) {
  return base_->ListDir(path);
}

Status FaultInjectionEnv::SyncDir(const std::string& path) {
  if (crashed_) return InjectedFault();
  if (policy_.fail_sync) return Status::IoError("injected fsync failure");
  return base_->SyncDir(path);
}

}  // namespace prometheus::storage
