// E19 (micro) — query-cache mechanics in isolation. bench_server's E19
// measures the cache end-to-end through the server; this bench pins down
// the per-operation costs that make that win possible, plus the one
// design decision worth defending with numbers: sharding the result tier.
//
//   result hit      Lookup() that serves (hash + shard lock + LRU touch)
//   result miss     Lookup() of an absent key
//   result insert   Insert() under steady LRU eviction pressure
//   plan hit        PlanCache::Lookup() that serves
//   stale sweep     Lookup() after OnSchemaChange (erase + miss)
//   contention      T threads hammering hits, 1 shard vs 8 shards
//
// Writes BENCH_cache.json. Usage: bench_cache [ops]   (default 200000)

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "cache/plan_cache.h"
#include "cache/result_cache.h"
#include "cache/result_size.h"
#include "query/query_engine.h"

namespace {

using prometheus::Value;
using prometheus::bench::JsonWriter;
using prometheus::cache::ApproxResultBytes;
using prometheus::cache::PlanCache;
using prometheus::cache::PlanEntry;
using prometheus::cache::ResultCache;
using prometheus::pool::ResultSet;

using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// A result shaped like the OO7 range scans the server caches: one id
/// column, ~100 matching rows.
std::shared_ptr<const ResultSet> MakeRows(int rows) {
  auto rs = std::make_shared<ResultSet>();
  rs->columns = {"a.id"};
  rs->rows.reserve(static_cast<std::size_t>(rows));
  for (int i = 0; i < rows; ++i) {
    rs->rows.push_back({Value::Int(i)});
  }
  return rs;
}

std::string KeyFor(int i) {
  return "select a.id from AtomicPart a where a.build_date >= " +
         std::to_string(i) + " and a.build_date <= " + std::to_string(i + 200);
}

double NsPerOp(double wall_ms, long long ops) {
  return ops > 0 ? wall_ms * 1e6 / static_cast<double>(ops) : 0;
}

void PrintRow(const char* label, double ns_per_op, const char* note) {
  std::printf("  %-14s %10.1f ns/op  %s\n", label, ns_per_op, note);
}

/// Aggregate hit throughput with `threads` readers over `shards` shards,
/// each thread looping over its own slice of a shared hot set.
double ContendedMops(std::size_t shards, int threads, int ops_per_thread,
                     const std::shared_ptr<const ResultSet>& rows,
                     std::size_t bytes) {
  ResultCache::Config config;
  config.shards = shards;
  ResultCache cache(config);
  constexpr int kHotKeys = 64;
  std::vector<std::string> keys;
  keys.reserve(kHotKeys);
  for (int i = 0; i < kHotKeys; ++i) {
    keys.push_back(KeyFor(i * 37));
    cache.Insert(keys.back(), /*epoch=*/7, rows, bytes);
  }

  std::atomic<long long> served{0};
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  const Clock::time_point start = Clock::now();
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      long long mine = 0;
      for (int i = 0; i < ops_per_thread; ++i) {
        const std::string& key =
            keys[static_cast<std::size_t>(t * 7 + i) % kHotKeys];
        if (cache.Lookup(key, /*epoch=*/7) != nullptr) ++mine;
      }
      served.fetch_add(mine, std::memory_order_relaxed);
    });
  }
  for (std::thread& w : workers) w.join();
  const double wall_ms = MillisSince(start);
  if (served.load() !=
      static_cast<long long>(threads) * ops_per_thread) {
    std::fprintf(stderr, "contention phase dropped hits — bench invalid\n");
    std::exit(1);
  }
  const double total = static_cast<double>(threads) * ops_per_thread;
  return wall_ms > 0 ? total / (wall_ms * 1000.0) : 0;  // Mops/s
}

}  // namespace

int main(int argc, char** argv) {
  const int ops = argc > 1 ? std::atoi(argv[1]) : 200000;
  const auto rows = MakeRows(100);
  const std::size_t bytes = ApproxResultBytes(*rows);

  JsonWriter json;
  json.BeginObject();
  json.Key("bench").String("cache");
  json.Key("ops").Int(ops);
  json.Key("result_bytes").Int(static_cast<long long>(bytes));

  prometheus::bench::PrintTableHeader(
      "E19 micro: query-cache operation costs",
      "  operation           cost         note");

  // --- result hit --------------------------------------------------------
  {
    ResultCache cache(ResultCache::Config{});
    constexpr int kHot = 256;
    std::vector<std::string> keys;
    for (int i = 0; i < kHot; ++i) {
      keys.push_back(KeyFor(i * 7));
      cache.Insert(keys.back(), 7, rows, bytes);
    }
    const Clock::time_point t0 = Clock::now();
    long long served = 0;
    for (int i = 0; i < ops; ++i) {
      if (cache.Lookup(keys[static_cast<std::size_t>(i) % kHot], 7)) ++served;
    }
    const double ns = NsPerOp(MillisSince(t0), served);
    PrintRow("result hit", ns, "hash + shard lock + LRU touch");
    json.Key("result_hit_ns").Number(ns);
  }

  // --- result miss -------------------------------------------------------
  {
    ResultCache cache(ResultCache::Config{});
    const Clock::time_point t0 = Clock::now();
    for (int i = 0; i < ops; ++i) {
      (void)cache.Lookup(KeyFor(1000000 + i), 7);
    }
    const double ns = NsPerOp(MillisSince(t0), ops);
    PrintRow("result miss", ns, "includes key construction");
    json.Key("result_miss_ns").Number(ns);
  }

  // --- result insert under LRU pressure ----------------------------------
  {
    ResultCache::Config config;
    config.max_bytes = 64 * bytes;  // ~64 entries fit: every insert evicts
    ResultCache cache(config);
    std::vector<std::string> keys;
    const int distinct = 4096;
    for (int i = 0; i < distinct; ++i) keys.push_back(KeyFor(i));
    const Clock::time_point t0 = Clock::now();
    for (int i = 0; i < ops; ++i) {
      cache.Insert(keys[static_cast<std::size_t>(i) % distinct], 7, rows,
                   bytes);
    }
    const double ns = NsPerOp(MillisSince(t0), ops);
    const auto stats = cache.stats();
    PrintRow("result insert", ns, "byte budget full, LRU evicting");
    json.Key("result_insert_ns").Number(ns);
    json.Key("result_insert_evictions")
        .Int(static_cast<long long>(stats.evictions));
  }

  // --- plan hit / stale sweep --------------------------------------------
  {
    PlanCache cache(PlanCache::Config{});
    constexpr int kHot = 256;
    std::vector<std::string> keys;
    for (int i = 0; i < kHot; ++i) {
      keys.push_back(KeyFor(i * 7));
      cache.Insert(keys.back(), std::make_shared<const PlanEntry>());
    }
    const Clock::time_point t0 = Clock::now();
    long long served = 0;
    for (int i = 0; i < ops; ++i) {
      if (cache.Lookup(keys[static_cast<std::size_t>(i) % kHot]) != nullptr) {
        ++served;
      }
    }
    const double hit_ns = NsPerOp(MillisSince(t0), served);
    PrintRow("plan hit", hit_ns, "single mutex, parse + plan skipped");
    json.Key("plan_hit_ns").Number(hit_ns);

    cache.OnSchemaChange();
    const Clock::time_point t1 = Clock::now();
    for (int i = 0; i < kHot; ++i) {
      (void)cache.Lookup(keys[static_cast<std::size_t>(i)]);
    }
    const double stale_ns = NsPerOp(MillisSince(t1), kHot);
    PrintRow("stale sweep", stale_ns, "per-entry lazy erase after DDL");
    json.Key("plan_stale_sweep_ns").Number(stale_ns);
  }

  // --- shard contention --------------------------------------------------
  prometheus::bench::PrintTableHeader(
      "E19 micro: hit throughput vs shard count (Mops/s aggregate)",
      "  threads     1 shard    8 shards   speedup");
  json.Key("contention").BeginArray();
  const int per_thread = std::max(ops / 4, 10000);
  for (int threads : {1, 2, 4, 8}) {
    const double one = ContendedMops(1, threads, per_thread, rows, bytes);
    const double eight = ContendedMops(8, threads, per_thread, rows, bytes);
    std::printf("  %7d  %9.2f  %10.2f  %8.2fx\n", threads, one, eight,
                one > 0 ? eight / one : 0);
    json.BeginObject();
    json.Key("threads").Int(threads);
    json.Key("mops_1_shard").Number(one);
    json.Key("mops_8_shards").Number(eight);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();

  const std::string out = "BENCH_cache.json";
  if (!prometheus::bench::WriteTextFile(out, json.str() + "\n")) {
    std::fprintf(stderr, "failed to write %s\n", out.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out.c_str());
  return 0;
}
