#ifndef PROMETHEUS_TESTS_PROMETHEUS_TEXT_PARSER_H_
#define PROMETHEUS_TESTS_PROMETHEUS_TEXT_PARSER_H_

// A strict conformance parser for the Prometheus text exposition format
// (version 0.0.4) — the test-side contract for everything /metrics and
// kStats emit. Deliberately stricter than a scraper: it rejects anything
// our own renderer has no business producing (unknown comment forms,
// untyped samples, non-cumulative histogram buckets), so a conformance
// regression fails a test even when a lenient real-world scraper would
// shrug it off. Shared by test_obs, test_net and the promcheck CLI tool
// the CI smoke job pipes a live scrape through.
//
// Header-only on purpose: tests and the tool include it without a library
// target.

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace prometheus::testing {

/// One sample line: `name{labels} value`.
struct PromSample {
  std::string name;  ///< the sample's own name (e.g. `foo_bucket`)
  /// Label pairs in source order (name, unescaped value).
  std::vector<std::pair<std::string, std::string>> labels;
  double value = 0;

  /// The raw value of a label, or "" when absent.
  std::string Label(const std::string& label_name) const {
    for (const auto& [k, v] : labels) {
      if (k == label_name) return v;
    }
    return {};
  }
};

/// One metric family: a # TYPE line plus its samples.
struct PromFamily {
  std::string name;
  std::string type;  ///< "counter" | "gauge" | "histogram" | ...
  std::string help;  ///< unescaped # HELP text ("" when absent)
  std::vector<PromSample> samples;
};

/// A fully parsed exposition, family order preserved.
struct PromExposition {
  std::vector<PromFamily> families;

  const PromFamily* Find(const std::string& name) const {
    for (const auto& f : families) {
      if (f.name == name) return &f;
    }
    return nullptr;
  }

  /// The single sample with this exact name (no labels considered);
  /// nullptr when absent or ambiguous.
  const PromSample* FindSample(const std::string& name) const {
    const PromSample* found = nullptr;
    for (const auto& f : families) {
      for (const auto& s : f.samples) {
        if (s.name == name) {
          if (found != nullptr) return nullptr;
          found = &s;
        }
      }
    }
    return found;
  }
};

namespace prom_internal {

inline bool IsMetricNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}
inline bool IsMetricNameChar(char c) {
  return IsMetricNameStart(c) || std::isdigit(static_cast<unsigned char>(c));
}
inline bool IsLabelNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
inline bool IsLabelNameChar(char c) {
  return IsLabelNameStart(c) || std::isdigit(static_cast<unsigned char>(c));
}

inline bool ValidMetricName(const std::string& s) {
  if (s.empty() || !IsMetricNameStart(s[0])) return false;
  for (char c : s) {
    if (!IsMetricNameChar(c)) return false;
  }
  return true;
}

inline bool ValidLabelName(const std::string& s) {
  if (s.empty() || !IsLabelNameStart(s[0])) return false;
  for (char c : s) {
    if (!IsLabelNameChar(c)) return false;
  }
  return true;
}

/// Parses a sample value: decimal floats plus +Inf / -Inf / NaN.
inline bool ParseValue(const std::string& s, double* out) {
  if (s.empty()) return false;
  if (s == "+Inf" || s == "Inf") {
    *out = std::numeric_limits<double>::infinity();
    return true;
  }
  if (s == "-Inf") {
    *out = -std::numeric_limits<double>::infinity();
    return true;
  }
  if (s == "NaN") {
    *out = std::nan("");
    return true;
  }
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0' && end != s.c_str();
}

/// Unescapes a label value body (between the quotes). Only \\, \" and \n
/// are legal escapes in the text format.
inline bool UnescapeLabelValue(const std::string& raw, std::string* out,
                               std::string* error) {
  out->clear();
  for (std::size_t i = 0; i < raw.size(); ++i) {
    if (raw[i] != '\\') {
      *out += raw[i];
      continue;
    }
    if (i + 1 >= raw.size()) {
      *error = "dangling backslash in label value";
      return false;
    }
    const char esc = raw[++i];
    if (esc == '\\') {
      *out += '\\';
    } else if (esc == '"') {
      *out += '"';
    } else if (esc == 'n') {
      *out += '\n';
    } else {
      *error = std::string("illegal escape '\\") + esc + "' in label value";
      return false;
    }
  }
  return true;
}

/// Parses `{name="value",...}` starting at `pos` (the '{'). Advances `pos`
/// past the closing '}'.
inline bool ParseLabels(
    const std::string& line, std::size_t* pos,
    std::vector<std::pair<std::string, std::string>>* labels,
    std::string* error) {
  ++*pos;  // consume '{'
  for (;;) {
    if (*pos >= line.size()) {
      *error = "unterminated label block";
      return false;
    }
    if (line[*pos] == '}') {
      ++*pos;
      return true;
    }
    std::size_t name_end = *pos;
    while (name_end < line.size() && line[name_end] != '=') ++name_end;
    if (name_end >= line.size()) {
      *error = "label without '='";
      return false;
    }
    const std::string label_name = line.substr(*pos, name_end - *pos);
    if (!ValidLabelName(label_name)) {
      *error = "malformed label name '" + label_name + "'";
      return false;
    }
    std::size_t v = name_end + 1;
    if (v >= line.size() || line[v] != '"') {
      *error = "label value is not quoted";
      return false;
    }
    ++v;
    std::string raw;
    while (v < line.size() && line[v] != '"') {
      if (line[v] == '\\') {
        if (v + 1 >= line.size()) {
          *error = "dangling backslash in label value";
          return false;
        }
        raw += line[v];
        raw += line[v + 1];
        v += 2;
        continue;
      }
      raw += line[v];
      ++v;
    }
    if (v >= line.size()) {
      *error = "unterminated label value";
      return false;
    }
    ++v;  // closing quote
    std::string unescaped;
    if (!UnescapeLabelValue(raw, &unescaped, error)) return false;
    labels->emplace_back(label_name, std::move(unescaped));
    if (v < line.size() && line[v] == ',') {
      *pos = v + 1;
      continue;
    }
    *pos = v;
    if (*pos < line.size() && line[*pos] == '}') continue;
    *error = "expected ',' or '}' after label value";
    return false;
  }
}

/// The family a sample name belongs to: for a histogram family F, samples
/// may be F, F_bucket, F_sum or F_count; otherwise the names must match.
inline bool BelongsToFamily(const std::string& sample, const PromFamily& f) {
  if (sample == f.name) return true;
  if (f.type == "histogram" || f.type == "summary") {
    if (sample == f.name + "_bucket" && f.type == "histogram") return true;
    if (sample == f.name + "_sum") return true;
    if (sample == f.name + "_count") return true;
  }
  return false;
}

}  // namespace prom_internal

/// Parses (and validates) a text exposition. Returns "" on success or a
/// description of the first offence. Enforced beyond raw syntax:
///  - the payload is non-empty and newline-terminated;
///  - comments are only `# HELP <name> <text>` / `# TYPE <name> <type>`,
///    TYPE precedes the family's samples and appears once per family;
///  - metric and label names match the Prometheus grammar, label values
///    use only the \\ \" \n escapes;
///  - every sample belongs to a typed family (histogram children only
///    under a histogram TYPE);
///  - per histogram label-set: buckets are cumulative (non-decreasing),
///    end with le="+Inf", and _count equals the +Inf bucket.
inline std::string ParsePrometheusText(const std::string& text,
                                       PromExposition* out) {
  using namespace prom_internal;
  out->families.clear();
  if (text.empty()) return "empty exposition";
  if (text.back() != '\n') return "exposition does not end with a newline";

  std::size_t line_no = 0;
  std::size_t pos = 0;
  auto fail = [&line_no](const std::string& msg) {
    return "line " + std::to_string(line_no) + ": " + msg;
  };

  while (pos < text.size()) {
    ++line_no;
    const std::size_t nl = text.find('\n', pos);
    std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;  // blank lines are legal separators

    if (line[0] == '#') {
      // Only the two structured comment forms are accepted.
      std::string keyword, name;
      std::size_t p = 1;
      while (p < line.size() && line[p] == ' ') ++p;
      while (p < line.size() && line[p] != ' ') keyword += line[p++];
      while (p < line.size() && line[p] == ' ') ++p;
      while (p < line.size() && line[p] != ' ') name += line[p++];
      if (p < line.size()) ++p;  // single space before the payload
      const std::string payload = line.substr(p);
      if (keyword != "HELP" && keyword != "TYPE") {
        return fail("unexpected comment (only # HELP and # TYPE allowed): " +
                    line);
      }
      if (!ValidMetricName(name)) {
        return fail("malformed metric name in comment: '" + name + "'");
      }
      if (keyword == "TYPE") {
        if (payload != "counter" && payload != "gauge" &&
            payload != "histogram" && payload != "summary" &&
            payload != "untyped") {
          return fail("unknown metric type '" + payload + "'");
        }
        // A # HELP line may have parked an untyped placeholder already.
        PromFamily* family = nullptr;
        for (auto& f : out->families) {
          if (f.name == name) family = &f;
        }
        if (family != nullptr) {
          if (!family->type.empty()) {
            return fail("duplicate # TYPE for '" + name + "'");
          }
          family->type = payload;
        } else {
          PromFamily fresh;
          fresh.name = name;
          fresh.type = payload;
          out->families.push_back(std::move(fresh));
        }
      } else {  // HELP
        // HELP may precede TYPE; park it on an untyped placeholder that
        // the TYPE line upgrades. Our renderer always orders HELP first.
        PromFamily* family = nullptr;
        for (auto& f : out->families) {
          if (f.name == name) family = &f;
        }
        if (family == nullptr) {
          PromFamily fresh;
          fresh.name = name;
          fresh.type = "";  // pending TYPE
          out->families.push_back(std::move(fresh));
          family = &out->families.back();
        } else if (!family->help.empty()) {
          return fail("duplicate # HELP for '" + name + "'");
        }
        // Unescape \\ and \n.
        std::string help;
        for (std::size_t i = 0; i < payload.size(); ++i) {
          if (payload[i] == '\\' && i + 1 < payload.size()) {
            const char esc = payload[i + 1];
            if (esc == '\\') {
              help += '\\';
              ++i;
              continue;
            }
            if (esc == 'n') {
              help += '\n';
              ++i;
              continue;
            }
          }
          help += payload[i];
        }
        family->help = std::move(help);
      }
      continue;
    }

    // A sample line: name[{labels}] value
    std::size_t p = 0;
    std::string name;
    while (p < line.size() && IsMetricNameChar(line[p])) name += line[p++];
    if (!ValidMetricName(name)) {
      return fail("malformed sample name in: " + line);
    }
    PromSample sample;
    sample.name = name;
    std::string error;
    if (p < line.size() && line[p] == '{') {
      if (!ParseLabels(line, &p, &sample.labels, &error)) {
        return fail(error + " in: " + line);
      }
    }
    if (p >= line.size() || line[p] != ' ') {
      return fail("expected ' ' before the value in: " + line);
    }
    while (p < line.size() && line[p] == ' ') ++p;
    std::string value_text = line.substr(p);
    // An optional timestamp may trail the value; our renderer never emits
    // one, but tolerate it as the format allows.
    const std::size_t space = value_text.find(' ');
    if (space != std::string::npos) value_text.resize(space);
    if (!ParseValue(value_text, &sample.value)) {
      return fail("malformed value '" + value_text + "' in: " + line);
    }

    // Attach to its (already typed) family.
    PromFamily* family = nullptr;
    for (auto& f : out->families) {
      if (BelongsToFamily(name, f)) family = &f;
    }
    if (family == nullptr || family->type.empty()) {
      return fail("sample '" + name + "' has no preceding # TYPE");
    }
    family->samples.push_back(std::move(sample));
  }

  // A # HELP without a matching # TYPE means an untyped family slipped out.
  for (const auto& f : out->families) {
    if (f.type.empty()) {
      return "family '" + f.name + "' has # HELP but no # TYPE";
    }
    if (f.type == "histogram") {
      // Validate bucket structure per label-set (ignoring `le`).
      std::map<std::string, std::vector<const PromSample*>> buckets;
      std::map<std::string, double> counts;
      for (const auto& s : f.samples) {
        std::string key;
        for (const auto& [k, v] : s.labels) {
          if (k != "le") key += k + "=" + v + ";";
        }
        if (s.name == f.name + "_bucket") {
          buckets[key].push_back(&s);
        } else if (s.name == f.name + "_count") {
          counts[key] = s.value;
        }
      }
      for (const auto& [key, series] : buckets) {
        double prev = -1;
        bool has_inf = false;
        for (const PromSample* b : series) {
          if (b->value < prev) {
            return "histogram '" + f.name +
                   "' buckets are not cumulative (a bucket decreased)";
          }
          prev = b->value;
          if (b->Label("le") == "+Inf") has_inf = true;
        }
        if (!has_inf) {
          return "histogram '" + f.name + "' lacks an le=\"+Inf\" bucket";
        }
        if (series.back()->Label("le") != "+Inf") {
          return "histogram '" + f.name +
                 "' buckets do not end with le=\"+Inf\"";
        }
        const auto count_it = counts.find(key);
        if (count_it == counts.end()) {
          return "histogram '" + f.name + "' lacks a _count sample";
        }
        if (count_it->second != series.back()->value) {
          return "histogram '" + f.name +
                 "' _count disagrees with the +Inf bucket";
        }
      }
    }
  }
  return {};
}

}  // namespace prometheus::testing

#endif  // PROMETHEUS_TESTS_PROMETHEUS_TEXT_PARSER_H_
