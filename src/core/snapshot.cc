#include "core/snapshot.h"

#include <deque>
#include <unordered_set>

#include "core/database.h"

namespace prometheus {

namespace mvcc::internal {
std::atomic<std::uint64_t> g_retained_versions{0};
std::atomic<std::uint64_t> g_live_snapshots{0};
}  // namespace mvcc::internal

DbSnapshot::DbSnapshot() {
  mvcc::internal::g_live_snapshots.fetch_add(1, std::memory_order_relaxed);
}

DbSnapshot::DbSnapshot(const DbSnapshot& prev)
    : epoch_(prev.epoch_),
      objects_(prev.objects_),
      links_(prev.links_),
      extents_(prev.extents_),
      link_extents_(prev.link_extents_),
      context_index_(prev.context_index_),
      synonym_parent_(prev.synonym_parent_),
      schema_(prev.schema_),
      live_objects_(prev.live_objects_),
      live_links_(prev.live_links_) {
  mvcc::internal::g_live_snapshots.fetch_add(1, std::memory_order_relaxed);
}

DbSnapshot::~DbSnapshot() {
  mvcc::internal::g_live_snapshots.fetch_sub(1, std::memory_order_relaxed);
}

// The read algorithms below mirror the `Database` implementations
// line-for-line (see database.cc) with two systematic substitutions:
// record lookups go to the version tries, and schema *children* walks go
// to the snapshot's copied `subclasses`/`subrels` maps — the live vectors
// those BFS walks would otherwise read are appended to by concurrent DDL.

const ClassDef* DbSnapshot::FindClass(std::string_view name) const {
  auto it = schema_->classes_by_name.find(std::string(name));
  return it == schema_->classes_by_name.end() ? nullptr : it->second;
}

const RelationshipDef* DbSnapshot::FindRelationship(
    std::string_view name) const {
  auto it = schema_->rels_by_name.find(std::string(name));
  return it == schema_->rels_by_name.end() ? nullptr : it->second;
}

std::vector<const ClassDef*> DbSnapshot::classes() const {
  return schema_->classes_in_order;
}

std::vector<const RelationshipDef*> DbSnapshot::relationships() const {
  return schema_->rels_in_order;
}

const Object* DbSnapshot::GetObject(Oid oid) const {
  return objects_.Find(oid);
}

const Link* DbSnapshot::GetLink(Oid oid) const { return links_.Find(oid); }

Result<Value> DbSnapshot::GetAttribute(Oid oid,
                                       const std::string& name) const {
  const Object* obj = GetObject(oid);
  if (obj == nullptr) {
    return Status::NotFound("no object @" + std::to_string(oid));
  }
  auto it = obj->attrs.find(name);
  if (it != obj->attrs.end()) return it->second;
  // Attribute inheritance over incoming links (thesis 4.4.5).
  for (Oid lid : obj->in_links) {
    const Link* link = GetLink(lid);
    if (link == nullptr || !link->def->semantics().inherit_attributes) {
      continue;
    }
    if (link->def->FindAttribute(name) != nullptr) {
      auto ait = link->attrs.find(name);
      if (ait != link->attrs.end()) return ait->second;
      return Value::Null();
    }
  }
  return Status::NotFound("object @" + std::to_string(oid) +
                          " has no attribute '" + name + "'");
}

bool DbSnapshot::IsInstanceOf(Oid oid, std::string_view class_name) const {
  const Object* obj = GetObject(oid);
  if (obj == nullptr) return false;
  const ClassDef* cls = FindClass(class_name);
  return cls != nullptr && obj->cls->IsSubclassOf(cls);
}

const std::vector<const ClassDef*>* DbSnapshot::SubclassesOf(
    const ClassDef* c) const {
  auto it = schema_->subclasses.find(c);
  return it == schema_->subclasses.end() ? nullptr : &it->second;
}

const std::vector<const RelationshipDef*>* DbSnapshot::SubrelsOf(
    const RelationshipDef* d) const {
  auto it = schema_->subrels.find(d);
  return it == schema_->subrels.end() ? nullptr : &it->second;
}

std::vector<Oid> DbSnapshot::Extent(const std::string& class_name,
                                    bool include_subclasses) const {
  const ClassDef* cls = FindClass(class_name);
  if (cls == nullptr) return {};
  std::vector<Oid> out;
  std::deque<const ClassDef*> work{cls};
  while (!work.empty()) {
    const ClassDef* c = work.front();
    work.pop_front();
    auto it = extents_.find(c);
    if (it != extents_.end()) {
      out.insert(out.end(), it->second->begin(), it->second->end());
    }
    if (include_subclasses) {
      if (const auto* subs = SubclassesOf(c)) {
        for (const ClassDef* sub : *subs) work.push_back(sub);
      }
    }
  }
  return out;
}

Result<Value> DbSnapshot::GetLinkAttribute(Oid oid,
                                           const std::string& name) const {
  const Link* link = GetLink(oid);
  if (link == nullptr) {
    return Status::NotFound("no link @" + std::to_string(oid));
  }
  auto it = link->attrs.find(name);
  if (it == link->attrs.end()) {
    return Status::NotFound("relationship '" + link->def->name() +
                            "' has no attribute '" + name + "'");
  }
  return it->second;
}

std::vector<Oid> DbSnapshot::LinkExtent(const std::string& rel_name,
                                        bool include_subrelationships) const {
  const RelationshipDef* def = FindRelationship(rel_name);
  if (def == nullptr) return {};
  std::vector<Oid> out;
  std::deque<const RelationshipDef*> work{def};
  while (!work.empty()) {
    const RelationshipDef* d = work.front();
    work.pop_front();
    auto it = link_extents_.find(d);
    if (it != link_extents_.end()) {
      out.insert(out.end(), it->second->begin(), it->second->end());
    }
    if (include_subrelationships) {
      if (const auto* subs = SubrelsOf(d)) {
        for (const RelationshipDef* sub : *subs) work.push_back(sub);
      }
    }
  }
  return out;
}

const std::vector<Oid>& DbSnapshot::LinksInContext(Oid context) const {
  static const std::vector<Oid> kEmpty;
  auto it = context_index_.find(context);
  return it == context_index_.end() ? kEmpty : *it->second;
}

std::vector<Oid> DbSnapshot::IncidentLinks(Oid oid, Direction dir,
                                           const RelationshipDef* def,
                                           Oid context) const {
  const Object* obj = GetObject(oid);
  if (obj == nullptr) return {};
  std::vector<Oid> out;
  auto consider = [&](const std::vector<Oid>& side) {
    for (Oid lid : side) {
      const Link* link = GetLink(lid);
      if (link == nullptr) continue;
      if (def != nullptr && !link->def->IsSubrelationshipOf(def)) continue;
      if (context != kNullOid && link->context != context) continue;
      out.push_back(lid);
    }
  };
  bool want_out = dir != Direction::kIn;
  bool want_in = dir != Direction::kOut;
  if (def != nullptr && !def->semantics().directed) {
    want_out = want_in = true;
  }
  if (want_out) consider(obj->out_links);
  if (want_in) consider(obj->in_links);
  return out;
}

std::vector<Oid> DbSnapshot::Neighbors(Oid oid, const std::string& rel_name,
                                       Direction dir, Oid context) const {
  const RelationshipDef* def = FindRelationship(rel_name);
  if (def == nullptr) return {};
  std::vector<Oid> out;
  for (Oid lid : IncidentLinks(oid, dir, def, context)) {
    const Link* link = GetLink(lid);
    out.push_back(link->source == oid ? link->target : link->source);
  }
  return out;
}

Result<std::vector<Oid>> DbSnapshot::Traverse(Oid start,
                                              const std::string& rel_name,
                                              std::uint32_t min_depth,
                                              std::uint32_t max_depth,
                                              Direction dir,
                                              Oid context) const {
  const RelationshipDef* def = FindRelationship(rel_name);
  if (def == nullptr) {
    return Status::NotFound("unknown relationship '" + rel_name + "'");
  }
  if (GetObject(start) == nullptr) {
    return Status::NotFound("no object @" + std::to_string(start));
  }
  if (max_depth != 0 && min_depth > max_depth) {
    return Status::InvalidArgument("min_depth exceeds max_depth");
  }
  std::vector<Oid> result;
  std::unordered_set<Oid> visited{start};
  std::deque<std::pair<Oid, std::uint32_t>> frontier{{start, 0}};
  if (min_depth == 0) result.push_back(start);
  while (!frontier.empty()) {
    auto [oid, depth] = frontier.front();
    frontier.pop_front();
    if (max_depth != 0 && depth == max_depth) continue;
    for (Oid next : Neighbors(oid, rel_name, dir, context)) {
      if (!visited.insert(next).second) continue;
      std::uint32_t d = depth + 1;
      if (d >= min_depth) result.push_back(next);
      frontier.emplace_back(next, d);
    }
  }
  return result;
}

Oid DbSnapshot::CanonicalOf(Oid oid) const {
  Oid cur = oid;
  for (;;) {
    auto it = synonym_parent_->find(cur);
    if (it == synonym_parent_->end()) return cur;
    cur = it->second;
  }
}

bool DbSnapshot::AreSynonyms(Oid a, Oid b) const {
  return CanonicalOf(a) == CanonicalOf(b);
}

std::vector<Oid> DbSnapshot::SynonymSet(Oid oid) const {
  Oid root = CanonicalOf(oid);
  std::vector<Oid> out;
  if (GetObject(root) != nullptr) out.push_back(root);
  for (const auto& [child, parent] : *synonym_parent_) {
    (void)parent;
    if (child != root && CanonicalOf(child) == root &&
        GetObject(child) != nullptr) {
      out.push_back(child);
    }
  }
  return out;
}

void SnapshotHandle::Release() {
  if (db_ != nullptr && snap_ != nullptr) {
    Database* db = db_;
    const std::uint64_t epoch = snap_->epoch();
    db_ = nullptr;
    snap_.reset();  // may free this pin's versions before the unpin books it
    db->ReleasePin(epoch);
  } else {
    db_ = nullptr;
    snap_.reset();
  }
}

}  // namespace prometheus
