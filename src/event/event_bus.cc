#include "event/event_bus.h"

#include <algorithm>
#include <array>

#include "obs/metrics.h"

namespace prometheus {

namespace {

/// One counter per EventKind; the kind becomes a Prometheus label:
/// events_published_total{kind="AfterCommit"}. The table is built once
/// under the magic-static guard, so lookups are race-free.
obs::Counter* KindCounter(EventKind kind) {
  static constexpr int kKinds =
      static_cast<int>(EventKind::kAfterDefineRelationship) + 1;
  static const std::array<obs::Counter*, kKinds> counters = [] {
    std::array<obs::Counter*, kKinds> c{};
    for (int i = 0; i < kKinds; ++i) {
      c[i] = obs::Registry().GetCounter(
          std::string("events_published_total{kind=\"") +
              EventKindName(static_cast<EventKind>(i)) + "\"}",
          "Events published on the bus, by kind");
    }
    return c;
  }();
  int i = static_cast<int>(kind);
  if (i < 0 || i >= kKinds) i = 0;
  return counters[i];
}

obs::Counter* VetoCounter() {
  static obs::Counter* c = obs::Registry().GetCounter(
      "events_vetoed_total", "Before-events vetoed by a listener");
  return c;
}

}  // namespace

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kBeforeCreateObject:
      return "BeforeCreateObject";
    case EventKind::kAfterCreateObject:
      return "AfterCreateObject";
    case EventKind::kBeforeDeleteObject:
      return "BeforeDeleteObject";
    case EventKind::kAfterDeleteObject:
      return "AfterDeleteObject";
    case EventKind::kBeforeSetAttribute:
      return "BeforeSetAttribute";
    case EventKind::kAfterSetAttribute:
      return "AfterSetAttribute";
    case EventKind::kBeforeCreateLink:
      return "BeforeCreateLink";
    case EventKind::kAfterCreateLink:
      return "AfterCreateLink";
    case EventKind::kBeforeDeleteLink:
      return "BeforeDeleteLink";
    case EventKind::kAfterDeleteLink:
      return "AfterDeleteLink";
    case EventKind::kBeforeSetLinkAttribute:
      return "BeforeSetLinkAttribute";
    case EventKind::kAfterSetLinkAttribute:
      return "AfterSetLinkAttribute";
    case EventKind::kTransactionBegin:
      return "TransactionBegin";
    case EventKind::kBeforeCommit:
      return "BeforeCommit";
    case EventKind::kAfterCommit:
      return "AfterCommit";
    case EventKind::kAfterAbort:
      return "AfterAbort";
    case EventKind::kAfterDeclareSynonym:
      return "AfterDeclareSynonym";
    case EventKind::kAfterDefineClass:
      return "AfterDefineClass";
    case EventKind::kAfterDefineTemplate:
      return "AfterDefineTemplate";
    case EventKind::kAfterDefineRelationship:
      return "AfterDefineRelationship";
  }
  return "Unknown";
}

bool IsBeforeEvent(EventKind kind) {
  switch (kind) {
    case EventKind::kBeforeCreateObject:
    case EventKind::kBeforeDeleteObject:
    case EventKind::kBeforeSetAttribute:
    case EventKind::kBeforeCreateLink:
    case EventKind::kBeforeDeleteLink:
    case EventKind::kBeforeSetLinkAttribute:
    case EventKind::kBeforeCommit:
      return true;
    default:
      return false;
  }
}

ListenerId EventBus::Subscribe(Listener listener, int priority) {
  ListenerId id = next_id_++;
  Entry entry{id, priority, std::move(listener)};
  auto pos = std::find_if(
      entries_.begin(), entries_.end(),
      [priority](const Entry& e) { return e.priority < priority; });
  entries_.insert(pos, std::move(entry));
  return id;
}

void EventBus::Unsubscribe(ListenerId id) {
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [id](const Entry& e) { return e.id == id; }),
                 entries_.end());
}

Status EventBus::Publish(const Event& event) {
  ++published_count_;
  if (obs::MetricsEnabled()) KindCounter(event.kind)->Increment();
  const bool vetoable = IsBeforeEvent(event.kind);
  // Listeners may subscribe/unsubscribe while handling an event (the rule
  // engine does when rules create rules), so iterate over a snapshot of ids.
  std::vector<ListenerId> ids;
  ids.reserve(entries_.size());
  for (const Entry& e : entries_) ids.push_back(e.id);
  Status first_violation;
  for (ListenerId id : ids) {
    auto it = std::find_if(entries_.begin(), entries_.end(),
                           [id](const Entry& e) { return e.id == id; });
    if (it == entries_.end()) continue;  // removed mid-delivery
    Status st = it->listener(event);
    if (!st.ok()) {
      if (vetoable) {
        VetoCounter()->Increment();
        return st;  // before events short-circuit
      }
      if (first_violation.ok()) first_violation = st;
    }
  }
  // After events deliver to every listener; the first violation is still
  // surfaced so invariant rules can trigger an undo or a commit failure.
  return first_violation;
}

}  // namespace prometheus
