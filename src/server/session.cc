#include "server/session.h"

#include <utility>

#include "server/server.h"

namespace prometheus::server {

std::future<Response> Session::Submit(Request req) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (closed_.load(std::memory_order_acquire)) {
    std::promise<Response> promise;
    Response resp;
    resp.code = ResponseCode::kShutdown;
    resp.status = Status::FailedPrecondition("session is closed");
    promise.set_value(std::move(resp));
    return promise.get_future();
  }
  return server_->Enqueue(std::move(req));
}

Response Session::Call(Request req) { return Submit(std::move(req)).get(); }

std::shared_ptr<Session> SessionManager::Open() {
  std::lock_guard<std::mutex> lock(mu_);
  const SessionId id = next_id_++;
  auto session = std::shared_ptr<Session>(new Session(server_, id));
  sessions_.emplace(id, session);
  opened_.fetch_add(1, std::memory_order_relaxed);
  return session;
}

void SessionManager::Close(SessionId id) {
  std::shared_ptr<Session> victim;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) return;
    victim = std::move(it->second);
    sessions_.erase(it);
  }
  victim->closed_.store(true, std::memory_order_release);
}

void SessionManager::CloseAll() {
  std::unordered_map<SessionId, std::shared_ptr<Session>> victims;
  {
    std::lock_guard<std::mutex> lock(mu_);
    victims.swap(sessions_);
  }
  for (auto& [id, session] : victims) {
    session->closed_.store(true, std::memory_order_release);
  }
}

std::size_t SessionManager::active() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

}  // namespace prometheus::server
