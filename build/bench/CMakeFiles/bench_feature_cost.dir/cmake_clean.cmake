file(REMOVE_RECURSE
  "CMakeFiles/bench_feature_cost.dir/bench_feature_cost.cc.o"
  "CMakeFiles/bench_feature_cost.dir/bench_feature_cost.cc.o.d"
  "bench_feature_cost"
  "bench_feature_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_feature_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
