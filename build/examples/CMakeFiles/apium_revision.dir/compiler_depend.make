# Empty compiler generated dependencies file for apium_revision.
# This may be replaced when dependencies are built.
