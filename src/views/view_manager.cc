#include "views/view_manager.h"

#include <algorithm>

#include "query/parser.h"

namespace prometheus {

namespace {

/// Read view for evaluation paths: the thread's pinned snapshot when one
/// is installed (a server worker evaluating a view for a query), else the
/// live database. Maintenance (OnEvent) runs on the writer thread, which
/// installs no view, so incremental updates always see live state.
const ReadView& EvalView(const Database* db) {
  const ReadView* v = CurrentReadView();
  return v != nullptr ? *v : static_cast<const ReadView&>(*db);
}

}  // namespace

ViewManager::ViewManager(Database* db) : db_(db), engine_(db) {
  listener_ = db_->bus().Subscribe(
      [this](const Event& e) {
        OnEvent(e);
        return Status::Ok();
      },
      /*priority=*/45);
}

ViewManager::~ViewManager() { db_->bus().Unsubscribe(listener_); }

Status ViewManager::Define(const ViewDef& def) {
  return DefineInternal(def, /*materialized=*/false);
}

Status ViewManager::DefineMaterialized(const ViewDef& def) {
  return DefineInternal(def, /*materialized=*/true);
}

Status ViewManager::DefineInternal(const ViewDef& def, bool materialized) {
  if (def.name.empty()) {
    return Status::InvalidArgument("view name must not be empty");
  }
  if (Has(def.name)) {
    return Status::InvalidArgument("view '" + def.name +
                                   "' already defined");
  }
  if (def.class_name.empty() && def.context == kNullOid) {
    return Status::InvalidArgument(
        "view '" + def.name + "' must name a class or a classification");
  }
  if (!def.class_name.empty() &&
      db_->FindClass(def.class_name) == nullptr) {
    return Status::NotFound("unknown class '" + def.class_name + "'");
  }
  auto view = std::make_unique<CompiledView>();
  view->def = def;
  view->materialized = materialized;
  if (!def.predicate.empty()) {
    auto parsed = pool::ParseExpression(def.predicate);
    if (!parsed.ok()) {
      return Status::ParseError("view '" + def.name + "' predicate: " +
                                parsed.status().message());
    }
    view->predicate = std::move(parsed).value();
  }
  if (materialized) {
    PROMETHEUS_ASSIGN_OR_RETURN(std::vector<Oid> candidates,
                                Candidates(*view));
    for (Oid oid : candidates) {
      PROMETHEUS_ASSIGN_OR_RETURN(bool pass, Satisfies(*view, oid));
      if (pass) view->members.insert(oid);
    }
  }
  views_.push_back(std::move(view));
  return Status::Ok();
}

Status ViewManager::Drop(const std::string& name) {
  auto it = std::find_if(views_.begin(), views_.end(),
                         [&](const std::unique_ptr<CompiledView>& v) {
                           return v->def.name == name;
                         });
  if (it == views_.end()) {
    return Status::NotFound("no view '" + name + "'");
  }
  views_.erase(it);
  return Status::Ok();
}

bool ViewManager::Has(const std::string& name) const {
  return Find(name) != nullptr;
}

std::vector<std::string> ViewManager::names() const {
  std::vector<std::string> out;
  out.reserve(views_.size());
  for (const auto& v : views_) out.push_back(v->def.name);
  return out;
}

const ViewManager::CompiledView* ViewManager::Find(
    const std::string& name) const {
  for (const auto& v : views_) {
    if (v->def.name == name) return v.get();
  }
  return nullptr;
}

ViewManager::CompiledView* ViewManager::FindMutable(const std::string& name) {
  for (auto& v : views_) {
    if (v->def.name == name) return v.get();
  }
  return nullptr;
}

Result<bool> ViewManager::Satisfies(const CompiledView& view, Oid oid) const {
  if (!view.def.class_name.empty() &&
      !EvalView(db_).IsInstanceOf(oid, view.def.class_name)) {
    return false;
  }
  if (view.predicate != nullptr) {
    pool::Environment env{{"self", Value::Ref(oid)}};
    PROMETHEUS_ASSIGN_OR_RETURN(Value v, engine_.Eval(*view.predicate, env));
    return v.type() == ValueType::kBool && v.AsBool();
  }
  return true;
}

bool ViewManager::IsMember(const CompiledView& view, Oid oid) const {
  const ReadView& rv = EvalView(db_);
  if (rv.GetObject(oid) == nullptr) return false;
  if (view.def.context != kNullOid) {
    // Context views require current participation in the classification.
    bool participates = !rv.IncidentLinks(oid, Direction::kBoth, nullptr,
                                          view.def.context)
                             .empty();
    if (!participates) return false;
  }
  auto pass = Satisfies(view, oid);
  return pass.ok() && pass.value();
}

void ViewManager::RefreshMembership(CompiledView* view, Oid oid) {
  bool member = IsMember(*view, oid);
  bool present = view->members.count(oid) > 0;
  if (member == present) return;
  if (member) {
    view->members.insert(oid);
  } else {
    view->members.erase(oid);
  }
  ++maintenance_updates_;
}

void ViewManager::OnEvent(const Event& event) {
  bool any_materialized = false;
  for (const auto& v : views_) {
    if (v->materialized) {
      any_materialized = true;
      break;
    }
  }
  if (!any_materialized) return;
  switch (event.kind) {
    case EventKind::kAfterCreateObject:
    case EventKind::kAfterDeleteObject:
    case EventKind::kAfterSetAttribute:
      for (auto& v : views_) {
        if (v->materialized) RefreshMembership(v.get(), event.subject);
      }
      break;
    case EventKind::kAfterCreateLink:
    case EventKind::kAfterDeleteLink: {
      for (auto& v : views_) {
        if (!v->materialized) continue;
        if (v->def.context != kNullOid && v->def.context != event.context) {
          continue;
        }
        RefreshMembership(v.get(), event.source);
        RefreshMembership(v.get(), event.target);
      }
      break;
    }
    default:
      break;
  }
}

Result<std::vector<Oid>> ViewManager::Candidates(
    const CompiledView& view) const {
  const ReadView& rv = EvalView(db_);
  std::vector<Oid> candidates;
  if (view.def.context != kNullOid) {
    std::unordered_set<Oid> seen;
    for (Oid lid : rv.LinksInContext(view.def.context)) {
      const Link* l = rv.GetLink(lid);
      if (l == nullptr) continue;
      if (seen.insert(l->source).second) candidates.push_back(l->source);
      if (seen.insert(l->target).second) candidates.push_back(l->target);
    }
  } else {
    candidates = rv.Extent(view.def.class_name);
  }
  return candidates;
}

Result<std::vector<Oid>> ViewManager::Evaluate(
    const std::string& name) const {
  const CompiledView* view = Find(name);
  if (view == nullptr) {
    return Status::NotFound("no view '" + name + "'");
  }
  if (view->materialized) {
    std::vector<Oid> out(view->members.begin(), view->members.end());
    std::sort(out.begin(), out.end());
    return out;
  }
  PROMETHEUS_ASSIGN_OR_RETURN(std::vector<Oid> candidates,
                              Candidates(*view));
  std::vector<Oid> out;
  for (Oid oid : candidates) {
    PROMETHEUS_ASSIGN_OR_RETURN(bool pass, Satisfies(*view, oid));
    if (pass) out.push_back(oid);
  }
  return out;
}

Result<std::vector<Oid>> ViewManager::EvaluateEdges(
    const std::string& name) const {
  const CompiledView* view = Find(name);
  if (view == nullptr) {
    return Status::NotFound("no view '" + name + "'");
  }
  if (view->def.context == kNullOid) {
    return Status::FailedPrecondition("view '" + name +
                                      "' has no classification context");
  }
  const ReadView& rv = EvalView(db_);
  std::vector<Oid> out;
  for (Oid lid : rv.LinksInContext(view->def.context)) {
    const Link* l = rv.GetLink(lid);
    if (l == nullptr) continue;
    PROMETHEUS_ASSIGN_OR_RETURN(bool src_ok, Satisfies(*view, l->source));
    if (!src_ok) continue;
    PROMETHEUS_ASSIGN_OR_RETURN(bool dst_ok, Satisfies(*view, l->target));
    if (dst_ok) out.push_back(lid);
  }
  return out;
}

}  // namespace prometheus
