// E14 — concurrent query serving (the src/server/ service layer standing in
// for the thesis' omitted §6.1.7 front-end). Builds the OO7 small module,
// wraps it in a `server::Server`, and drives it with a multi-threaded
// in-process load generator:
//
//   1. read-only sweep: 8 client threads issuing POOL range-scan queries,
//      worker pool swept over 1/2/4/8 threads — read throughput should
//      scale with workers (shared-lock readers) up to the core count;
//   2. mixed load: 7 reader clients + 1 writer client (SetAttribute
//      mutations under the exclusive lock) at 4 workers.
//
// E16 — overload protection & graceful degradation:
//
//   a. overload: 1 worker behind a 16-slot queue, 8 clients with 2ms
//      deadlines and mixed priorities — reports the reject / timeout /
//      shed rates and how they skew by priority class;
//   b. degraded read-only mode: a fault-injected DurableStore breaks mid-
//      run, the server degrades, and read throughput plus the mutation
//      fast-fail latency are measured while degraded; a checkpoint then
//      re-arms the store.
//
// E17 — remote telemetry plane (src/net/ HTTP front-end):
//
//   a. scrape cost: GET /metrics over keep-alive HTTP while 8 in-process
//      reader clients keep the workers busy — the scrape path takes no
//      database lock, so its p99 should stay in single-digit milliseconds
//      (< 5 ms target) regardless of query load;
//   b. remote overhead: the same POOL query issued through POST /query
//      (keep-alive, one connection) vs the in-process client, reporting
//      the per-request cost the HTTP envelope adds.
//
// E18 — journal-shipping replication (src/replication/):
//
//   a. read offload: aggregate read throughput over the fleet with 0, 1
//      and 2 caught-up followers — replicas add read capacity without
//      touching the leader's exclusive lock;
//   b. catch-up: a write burst on the leader, then the time until both
//      followers report caught-up again (records/s shipping rate);
//   c. failover: the leader is killed, the most-advanced follower is
//      promoted, and the time from kill to the first successful write on
//      the promoted store is the measured recovery window.
//
// Reports throughput and p50/p95/p99 latency per sweep and writes the
// machine-readable BENCH_server.json next to the binary's working dir.
//
// Usage: bench_server [requests_per_client]   (default 150)

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "net/http_client.h"
#include "net/http_server.h"
#include "obs/wait_profiler.h"
#include "oo7/oo7.h"
#include "replication/follower.h"
#include "replication/source.h"
#include "server/client.h"
#include "server/server.h"
#include "storage/fault.h"
#include "storage/recovery.h"

namespace {

using prometheus::Database;
using prometheus::Oid;
using prometheus::Status;
using prometheus::Value;
using prometheus::ValueType;
using prometheus::bench::JsonWriter;
using prometheus::bench::LatencyStats;
using prometheus::bench::SummarizeLatencies;
using prometheus::oo7::Config;
using prometheus::oo7::PrometheusOo7;
using prometheus::server::Client;
using prometheus::server::Priority;
using prometheus::server::Request;
using prometheus::server::Response;
using prometheus::server::ResponseCode;
using prometheus::server::Server;
using prometheus::storage::DurableStore;
using prometheus::storage::FaultInjectionEnv;
using prometheus::storage::FaultPolicy;

using Clock = std::chrono::steady_clock;

constexpr int kClientThreads = 8;
constexpr int kWorkerSweep[] = {1, 2, 4, 8};

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Q2-style selective range scan over the atomic-part extent — enough work
/// per request (~1000-object scan with predicate evaluation) that locking
/// and dispatch overhead are a small fraction.
std::string ReadQuery(std::mt19937& rng) {
  std::uniform_int_distribution<int> lo_dist(0, 1800);
  const int lo = lo_dist(rng);
  const int hi = lo + 200;
  return "select a.id from AtomicPart a where a.build_date >= " +
         std::to_string(lo) + " and a.build_date <= " + std::to_string(hi);
}

struct SweepResult {
  int workers = 0;
  int reader_clients = 0;
  int writer_clients = 0;
  std::size_t requests = 0;
  std::size_t failed = 0;
  double wall_ms = 0;
  double throughput_rps = 0;
  LatencyStats read_lat;
  LatencyStats write_lat;
  std::uint64_t rejected = 0;
};

/// Drives `server` with `readers` query clients and `writers` mutation
/// clients, each issuing `requests_per_client` blocking calls.
SweepResult RunLoad(Server& server, const std::vector<Oid>& parts, int workers,
                    int readers, int writers, int requests_per_client) {
  SweepResult result;
  result.workers = workers;
  result.reader_clients = readers;
  result.writer_clients = writers;

  std::vector<std::vector<double>> read_lats(
      static_cast<std::size_t>(readers));
  std::vector<std::vector<double>> write_lats(
      static_cast<std::size_t>(writers));
  std::atomic<std::size_t> failed{0};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(readers + writers));

  const Clock::time_point wall_start = Clock::now();
  for (int c = 0; c < readers; ++c) {
    threads.emplace_back([&, c] {
      Client client(&server);
      std::mt19937 rng(1000u + static_cast<unsigned>(c));
      auto& lats = read_lats[static_cast<std::size_t>(c)];
      lats.reserve(static_cast<std::size_t>(requests_per_client));
      for (int i = 0; i < requests_per_client; ++i) {
        const std::string q = ReadQuery(rng);
        const Clock::time_point t0 = Clock::now();
        auto r = client.Query(q);
        lats.push_back(MillisSince(t0));
        if (!r.ok()) failed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int w = 0; w < writers; ++w) {
    threads.emplace_back([&, w] {
      Client client(&server);
      std::mt19937 rng(9000u + static_cast<unsigned>(w));
      std::uniform_int_distribution<std::size_t> pick(0, parts.size() - 1);
      auto& lats = write_lats[static_cast<std::size_t>(w)];
      lats.reserve(static_cast<std::size_t>(requests_per_client));
      for (int i = 0; i < requests_per_client; ++i) {
        const Oid oid = parts[pick(rng)];
        const Clock::time_point t0 = Clock::now();
        auto st = client.SetAttribute(oid, "x", Value::Int(i));
        lats.push_back(MillisSince(t0));
        if (!st.ok()) failed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  result.wall_ms = MillisSince(wall_start);

  std::vector<double> all_reads;
  for (auto& v : read_lats) {
    all_reads.insert(all_reads.end(), v.begin(), v.end());
  }
  std::vector<double> all_writes;
  for (auto& v : write_lats) {
    all_writes.insert(all_writes.end(), v.begin(), v.end());
  }
  result.requests = all_reads.size() + all_writes.size();
  result.failed = failed.load();
  result.throughput_rps =
      result.wall_ms > 0
          ? static_cast<double>(result.requests) / (result.wall_ms / 1000.0)
          : 0;
  result.read_lat = SummarizeLatencies(all_reads);
  result.write_lat = SummarizeLatencies(all_writes);
  result.rejected = server.stats().rejected;
  return result;
}

void PrintRow(const SweepResult& r, const char* label) {
  std::printf(
      "  %-12s w=%d  %6zu req  %8.1f rps   p50 %7.3f  p95 %7.3f  p99 %7.3f "
      "ms%s\n",
      label, r.workers, r.requests, r.throughput_rps, r.read_lat.p50,
      r.read_lat.p95, r.read_lat.p99, r.failed != 0 ? "  [FAILURES]" : "");
}

void EmitSweepJson(JsonWriter& json, const SweepResult& r) {
  json.BeginObject();
  json.Key("workers").Int(r.workers);
  json.Key("reader_clients").Int(r.reader_clients);
  json.Key("writer_clients").Int(r.writer_clients);
  json.Key("requests").Int(static_cast<long long>(r.requests));
  json.Key("failed").Int(static_cast<long long>(r.failed));
  json.Key("rejected").Int(static_cast<long long>(r.rejected));
  json.Key("wall_ms").Number(r.wall_ms);
  json.Key("throughput_rps").Number(r.throughput_rps);
  json.Key("read_p50_ms").Number(r.read_lat.p50);
  json.Key("read_p95_ms").Number(r.read_lat.p95);
  json.Key("read_p99_ms").Number(r.read_lat.p99);
  json.Key("read_max_ms").Number(r.read_lat.max);
  json.Key("write_p50_ms").Number(r.write_lat.p50);
  json.Key("write_p95_ms").Number(r.write_lat.p95);
  json.Key("write_p99_ms").Number(r.write_lat.p99);
  json.EndObject();
}

// ------------------------------------------------------------------- E21

struct MvccChurnResult {
  SweepResult sweep;
  std::uint64_t writer_txns = 0;  ///< 400-write transactions committed
  double writer_txn_p50_ms = 0;
  /// Delta of guard_wait_micros{mode="shared"} over the phase. MVCC readers
  /// pin a snapshot at dequeue instead of taking the shared guard, so this
  /// should stay at (or within noise of) zero even while the writer loops.
  std::uint64_t guard_shared_waits = 0;
  double guard_shared_wait_micros = 0;
};

/// `readers` query clients at full tilt while ONE writer loops 400-write
/// transactions (Begin, 400x SetAttribute, Commit) back to back — the
/// stalled-writer scenario MVCC snapshot reads exist for. Pre-MVCC, every
/// reader queued behind the exclusive guard for the length of each
/// transaction; now readers execute against their pinned snapshot and the
/// writer's hold time should not show up in read latency at all.
MvccChurnResult RunMvccChurn(Server& server, const std::vector<Oid>& parts,
                             int workers, int readers,
                             int requests_per_client) {
  MvccChurnResult out;
  const auto shared_before =
      prometheus::obs::GuardInstruments::Get().shared_wait->snapshot();

  std::vector<std::vector<double>> read_lats(
      static_cast<std::size_t>(readers));
  std::atomic<std::size_t> failed{0};
  std::atomic<bool> readers_done{false};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(readers));

  std::vector<double> txn_lats;
  std::atomic<std::uint64_t> txns{0};
  std::thread writer([&] {
    Client client(&server);
    std::mt19937 rng(7700u);
    std::uniform_int_distribution<std::size_t> pick(0, parts.size() - 1);
    while (!readers_done.load(std::memory_order_acquire)) {
      const Clock::time_point t0 = Clock::now();
      const Status st = client.Mutate([&](Database& db) {
        PROMETHEUS_RETURN_IF_ERROR(db.Begin());
        for (int i = 0; i < 400; ++i) {
          Status s = db.SetAttribute(parts[pick(rng)], "x", Value::Int(i));
          if (!s.ok()) {
            (void)db.Abort();
            return s;
          }
        }
        return db.Commit();
      });
      txn_lats.push_back(MillisSince(t0));
      if (st.ok()) txns.fetch_add(1, std::memory_order_relaxed);
    }
  });

  const Clock::time_point wall_start = Clock::now();
  for (int c = 0; c < readers; ++c) {
    threads.emplace_back([&, c] {
      Client client(&server);
      std::mt19937 rng(2100u + static_cast<unsigned>(c));
      auto& lats = read_lats[static_cast<std::size_t>(c)];
      lats.reserve(static_cast<std::size_t>(requests_per_client));
      for (int i = 0; i < requests_per_client; ++i) {
        const std::string q = ReadQuery(rng);
        const Clock::time_point t0 = Clock::now();
        auto r = client.Query(q);
        lats.push_back(MillisSince(t0));
        if (!r.ok()) failed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  out.sweep.wall_ms = MillisSince(wall_start);
  readers_done.store(true, std::memory_order_release);
  writer.join();

  out.sweep.workers = workers;
  out.sweep.reader_clients = readers;
  out.sweep.writer_clients = 1;
  std::vector<double> all_reads;
  for (auto& v : read_lats) {
    all_reads.insert(all_reads.end(), v.begin(), v.end());
  }
  out.sweep.requests = all_reads.size();
  out.sweep.failed = failed.load();
  out.sweep.throughput_rps =
      out.sweep.wall_ms > 0
          ? static_cast<double>(out.sweep.requests) /
                (out.sweep.wall_ms / 1000.0)
          : 0;
  out.sweep.read_lat = SummarizeLatencies(all_reads);
  out.sweep.write_lat = SummarizeLatencies(txn_lats);
  out.sweep.rejected = server.stats().rejected;

  out.writer_txns = txns.load();
  out.writer_txn_p50_ms = out.sweep.write_lat.p50;
  const auto shared_after =
      prometheus::obs::GuardInstruments::Get().shared_wait->snapshot();
  out.guard_shared_waits = shared_after.count - shared_before.count;
  out.guard_shared_wait_micros = shared_after.sum - shared_before.sum;
  return out;
}

// ------------------------------------------------------------------- E16

struct OverloadResult {
  std::size_t requests = 0;
  std::size_t ok = 0;
  std::size_t rejected = 0;
  std::size_t timed_out = 0;
  std::size_t ok_by_priority[3] = {0, 0, 0};
  std::size_t refused_by_priority[3] = {0, 0, 0};
  double wall_ms = 0;
};

/// 8 clients with tight deadlines and mixed priorities against 1 worker
/// behind a tiny queue: most requests cannot be served in time, and the
/// point of the exercise is that refusal is cheap, immediate, and skewed
/// toward the low-priority class.
OverloadResult RunOverload(Server& server, int clients,
                           int requests_per_client) {
  OverloadResult result;
  std::atomic<std::size_t> ok{0}, rejected{0}, timed_out{0};
  std::atomic<std::size_t> ok_pri[3] = {{0}, {0}, {0}};
  std::atomic<std::size_t> refused_pri[3] = {{0}, {0}, {0}};
  std::vector<std::thread> threads;
  const Clock::time_point wall_start = Clock::now();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Client client(&server);
      std::mt19937 rng(4000u + static_cast<unsigned>(c));
      for (int i = 0; i < requests_per_client; ++i) {
        const int pri = (c + i) % 3;
        Request req = Request::Query(ReadQuery(rng))
                          .WithTimeout(std::chrono::milliseconds(2))
                          .WithPriority(static_cast<Priority>(pri));
        Response r = client.Call(std::move(req));
        switch (r.code) {
          case ResponseCode::kOk:
            ok.fetch_add(1, std::memory_order_relaxed);
            ok_pri[pri].fetch_add(1, std::memory_order_relaxed);
            break;
          case ResponseCode::kRejected:
            rejected.fetch_add(1, std::memory_order_relaxed);
            refused_pri[pri].fetch_add(1, std::memory_order_relaxed);
            break;
          case ResponseCode::kTimedOut:
            timed_out.fetch_add(1, std::memory_order_relaxed);
            refused_pri[pri].fetch_add(1, std::memory_order_relaxed);
            break;
          default:
            break;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  result.wall_ms = MillisSince(wall_start);
  result.requests =
      static_cast<std::size_t>(clients) *
      static_cast<std::size_t>(requests_per_client);
  result.ok = ok.load();
  result.rejected = rejected.load();
  result.timed_out = timed_out.load();
  for (int p = 0; p < 3; ++p) {
    result.ok_by_priority[p] = ok_pri[p].load();
    result.refused_by_priority[p] = refused_pri[p].load();
  }
  return result;
}

struct DegradedResult {
  double healthy_read_rps = 0;
  double degraded_read_rps = 0;
  LatencyStats fastfail_lat;  ///< kUnavailable mutation round-trip, ms
  std::size_t unavailable = 0;
  bool rearmed = false;
};

/// Read throughput with `clients` query threads over the Item extent.
double MeasureReadRps(Server& server, int clients, int requests_per_client) {
  std::atomic<std::size_t> done{0};
  std::vector<std::thread> threads;
  const Clock::time_point start = Clock::now();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Client client(&server);
      std::mt19937 rng(7000u + static_cast<unsigned>(c));
      std::uniform_int_distribution<int> lo_dist(0, 800);
      for (int i = 0; i < requests_per_client; ++i) {
        const int lo = lo_dist(rng);
        auto r = client.Query("select i.n from Item i where i.n >= " +
                              std::to_string(lo) + " and i.n <= " +
                              std::to_string(lo + 100));
        if (r.ok()) done.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall_ms = MillisSince(start);
  return wall_ms > 0 ? static_cast<double>(done.load()) / (wall_ms / 1000.0)
                     : 0;
}

DegradedResult RunDegraded(const std::string& dir, int clients,
                           int requests_per_client) {
  DegradedResult result;
  std::filesystem::remove_all(dir);
  FaultInjectionEnv env;
  DurableStore::Options store_options;
  store_options.env = &env;
  store_options.bootstrap = [](Database* db) {
    prometheus::AttributeDef n;
    n.name = "n";
    n.type = ValueType::kInt;
    PROMETHEUS_RETURN_IF_ERROR(db->DefineClass("Item", {}, {n}).status());
    for (int i = 0; i < 1000; ++i) {
      PROMETHEUS_RETURN_IF_ERROR(
          db->CreateObject("Item", {{"n", Value::Int(i)}}).status());
    }
    return Status::Ok();
  };
  auto store = DurableStore::Open(dir, store_options);
  if (!store.ok()) {
    std::fprintf(stderr, "E16b: store open failed: %s\n",
                 store.status().ToString().c_str());
    return result;
  }

  Server::Options options;
  options.worker_threads = 4;
  options.queue_capacity = 4096;
  options.store = store.value().get();
  options.cache.enabled = false;  // comparable with pre-cache E16b numbers
  Server server(&store.value()->db(), options);
  Client client(&server);

  result.healthy_read_rps =
      MeasureReadRps(server, clients, requests_per_client);

  // Break durability (serialized with journal appends by running inside a
  // mutation), then trip degraded mode with one doomed write.
  FaultPolicy broken;
  broken.fail_after_appends = 0;
  (void)client.Mutate([&env, broken](Database&) {
    env.SetPolicy(broken);
    return Status::Ok();
  });
  (void)client.SetAttribute(store.value()->db().Extent("Item").front(), "n",
                            Value::Int(-1));
  if (!server.degraded()) {
    std::fprintf(stderr, "E16b: server failed to degrade\n");
    return result;
  }

  result.degraded_read_rps =
      MeasureReadRps(server, clients, requests_per_client);

  // Mutation fast-fail latency while degraded: refusals happen at
  // admission, so the round trip should cost microseconds, not a queue
  // traversal.
  std::vector<double> fastfail;
  const Oid item = store.value()->db().Extent("Item").front();
  for (int i = 0; i < 200; ++i) {
    const Clock::time_point t0 = Clock::now();
    Response r = client.Call(Request::SetAttribute(item, "n", Value::Int(i)));
    fastfail.push_back(MillisSince(t0));
    if (r.code == ResponseCode::kUnavailable) ++result.unavailable;
  }
  result.fastfail_lat = SummarizeLatencies(fastfail);

  // Heal the filesystem and re-arm via the operator path.
  env.SetPolicy(FaultPolicy{});
  result.rearmed = client.Checkpoint().ok() && !server.degraded() &&
                   client.SetAttribute(item, "n", Value::Int(0)).ok();
  server.Shutdown();
  store.value().reset();
  std::filesystem::remove_all(dir);
  return result;
}

// ------------------------------------------------------------------- E17

struct TelemetryResult {
  LatencyStats scrape_lat;        ///< GET /metrics under load, ms
  std::size_t scrape_failures = 0;
  std::size_t scrape_bytes = 0;   ///< last payload size
  LatencyStats remote_query_lat;  ///< POST /query (keep-alive), ms
  LatencyStats local_query_lat;   ///< same queries, in-process client
  std::size_t remote_failures = 0;
};

/// Scrape + remote-query cost against a front-end mounted on `server`,
/// with `readers` in-process clients keeping the workers busy throughout.
TelemetryResult RunTelemetry(Server& server, int readers, int scrapes,
                             int queries) {
  using prometheus::net::HttpConnection;
  using prometheus::net::HttpFrontEnd;

  TelemetryResult result;
  HttpFrontEnd::Options net_options;
  net_options.port = 0;  // ephemeral
  HttpFrontEnd front(&server, net_options);
  if (!front.Start().ok()) {
    std::fprintf(stderr, "E17: front-end failed to start\n");
    return result;
  }

  // Background read pressure for the whole measurement window.
  std::atomic<bool> stop{false};
  std::vector<std::thread> load;
  for (int c = 0; c < readers; ++c) {
    load.emplace_back([&server, &stop, c] {
      Client client(&server);
      std::mt19937 rng(2000u + static_cast<unsigned>(c));
      while (!stop.load(std::memory_order_relaxed)) {
        (void)client.Query(ReadQuery(rng));
      }
    });
  }

  // E17a: keep-alive scrapes, as a Prometheus server would issue them.
  auto scrape_conn = HttpConnection::Connect("127.0.0.1", front.port());
  if (scrape_conn.ok()) {
    std::vector<double> lats;
    lats.reserve(static_cast<std::size_t>(scrapes));
    for (int i = 0; i < scrapes; ++i) {
      const Clock::time_point t0 = Clock::now();
      auto resp = scrape_conn.value()->RoundTrip("GET", "/metrics");
      lats.push_back(MillisSince(t0));
      if (!resp.ok() || resp.value().status_code != 200) {
        ++result.scrape_failures;
      } else {
        result.scrape_bytes = resp.value().body.size();
      }
    }
    result.scrape_lat = SummarizeLatencies(lats);
  } else {
    result.scrape_failures = static_cast<std::size_t>(scrapes);
  }

  // E17b: identical queries remote (POST /query, keep-alive) vs local.
  auto query_conn = HttpConnection::Connect("127.0.0.1", front.port());
  {
    std::vector<double> remote, local;
    remote.reserve(static_cast<std::size_t>(queries));
    local.reserve(static_cast<std::size_t>(queries));
    Client client(&server);
    std::mt19937 remote_rng(5000), local_rng(5000);  // same query stream
    for (int i = 0; i < queries; ++i) {
      const std::string q = ReadQuery(remote_rng);
      const Clock::time_point t0 = Clock::now();
      bool ok = false;
      if (query_conn.ok()) {
        auto resp = query_conn.value()->RoundTrip("POST", "/query", q);
        ok = resp.ok() && resp.value().status_code == 200;
      }
      remote.push_back(MillisSince(t0));
      if (!ok) ++result.remote_failures;
    }
    for (int i = 0; i < queries; ++i) {
      const std::string q = ReadQuery(local_rng);
      const Clock::time_point t0 = Clock::now();
      (void)client.Query(q);
      local.push_back(MillisSince(t0));
    }
    result.remote_query_lat = SummarizeLatencies(remote);
    result.local_query_lat = SummarizeLatencies(local);
  }

  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : load) t.join();
  front.Stop();
  return result;
}

// ------------------------------------------------------------------- E18

struct ReplicationBench {
  double read_rps[3] = {0, 0, 0};  ///< fleet throughput, 0/1/2 replicas
  std::size_t catchup_writes = 0;
  double catchup_ms = 0;
  double ship_records_per_sec = 0;
  std::uint64_t residual_lag_records = 0;
  double failover_ms = 0;
  bool failover_ok = false;
};

/// Fleet read throughput: `clients` query threads spread round-robin over
/// `nodes`, each thread with its own session on its node.
double MeasureFleetReadRps(const std::vector<Server*>& nodes, int clients,
                           int requests_per_client) {
  std::atomic<std::size_t> done{0};
  std::vector<std::thread> threads;
  const Clock::time_point start = Clock::now();
  for (int c = 0; c < clients; ++c) {
    Server* node = nodes[static_cast<std::size_t>(c) % nodes.size()];
    threads.emplace_back([&, node, c] {
      Client client(node);
      std::mt19937 rng(7000u + static_cast<unsigned>(c));
      std::uniform_int_distribution<int> lo_dist(0, 800);
      for (int i = 0; i < requests_per_client; ++i) {
        const int lo = lo_dist(rng);
        auto r = client.Query("select i.n from Item i where i.n >= " +
                              std::to_string(lo) + " and i.n <= " +
                              std::to_string(lo + 100));
        if (r.ok()) done.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall_ms = MillisSince(start);
  return wall_ms > 0 ? static_cast<double>(done.load()) / (wall_ms / 1000.0)
                     : 0;
}

ReplicationBench RunReplication(const std::string& base, int clients,
                                int requests_per_client) {
  using prometheus::net::HttpFrontEnd;
  using prometheus::replication::Follower;
  using prometheus::replication::ReplicationSource;

  ReplicationBench result;
  std::filesystem::remove_all(base);
  std::filesystem::create_directories(base);

  DurableStore::Options store_options;
  store_options.bootstrap = [](Database* db) {
    prometheus::AttributeDef n;
    n.name = "n";
    n.type = ValueType::kInt;
    PROMETHEUS_RETURN_IF_ERROR(db->DefineClass("Item", {}, {n}).status());
    for (int i = 0; i < 1000; ++i) {
      PROMETHEUS_RETURN_IF_ERROR(
          db->CreateObject("Item", {{"n", Value::Int(i)}}).status());
    }
    return Status::Ok();
  };
  auto store = DurableStore::Open(base + "/leader", store_options);
  if (!store.ok()) {
    std::fprintf(stderr, "E18: store open failed: %s\n",
                 store.status().ToString().c_str());
    return result;
  }

  Server::Options options;
  options.worker_threads = 4;
  options.queue_capacity = 4096;
  options.store = store.value().get();
  options.cache.enabled = false;  // comparable with pre-cache E18 numbers
  auto server = std::make_unique<Server>(&store.value()->db(), options);
  auto source = std::make_unique<ReplicationSource>(store.value().get());
  HttpFrontEnd::Options net_options;
  net_options.port = 0;  // ephemeral
  net_options.aux_handler = source->AuxHandler();
  auto front = std::make_unique<HttpFrontEnd>(server.get(), net_options);
  if (!front->Start().ok()) {
    std::fprintf(stderr, "E18: front-end failed to start\n");
    return result;
  }

  std::unique_ptr<Follower> followers[2];
  auto start_follower = [&](int i) {
    Follower::Options fo;
    fo.dir = base + "/f" + std::to_string(i + 1);
    fo.leader_port = front->port();
    fo.serve_http = false;
    fo.poll_interval_ms = 2;
    auto f = Follower::Start(std::move(fo));
    if (!f.ok()) {
      std::fprintf(stderr, "E18: follower %d failed: %s\n", i + 1,
                   f.status().ToString().c_str());
      return false;
    }
    followers[i] = std::move(f).value();
    return followers[i]->WaitCaughtUp(10000);
  };

  // E18a: fleet read throughput as replicas join.
  std::vector<Server*> nodes = {server.get()};
  result.read_rps[0] =
      MeasureFleetReadRps(nodes, clients, requests_per_client);
  for (int i = 0; i < 2; ++i) {
    if (!start_follower(i)) return result;
    nodes.push_back(&followers[i]->server());
    result.read_rps[i + 1] =
        MeasureFleetReadRps(nodes, clients, requests_per_client);
  }

  // E18b: write burst on the leader, then time until both replicas report
  // caught-up again (from the start of the burst — the replicas ship
  // concurrently with the writes, not after them).
  {
    Client writer(server.get());
    const std::vector<Oid> items = store.value()->db().Extent("Item");
    result.catchup_writes = static_cast<std::size_t>(clients) *
                            static_cast<std::size_t>(requests_per_client);
    const Clock::time_point t0 = Clock::now();
    for (std::size_t i = 0; i < result.catchup_writes; ++i) {
      (void)writer.SetAttribute(items[i % items.size()], "n",
                                Value::Int(static_cast<std::int64_t>(i)));
    }
    const bool caught = followers[0]->WaitCaughtUp(30000) &&
                        followers[1]->WaitCaughtUp(30000);
    result.catchup_ms = MillisSince(t0);
    if (!caught) {
      std::fprintf(stderr, "E18: catch-up timed out\n  f1=%s\n  f2=%s\n",
                   followers[0]->ProgressJson().c_str(),
                   followers[1]->ProgressJson().c_str());
    }
    if (caught && result.catchup_ms > 0) {
      result.ship_records_per_sec =
          static_cast<double>(result.catchup_writes) /
          (result.catchup_ms / 1000.0);
    }
    result.residual_lag_records =
        std::max(followers[0]->progress().lag_records,
                 followers[1]->progress().lag_records);
  }

  // E18c: kill the leader, promote the most-advanced replica, and time the
  // window from kill to the first committed write on the promoted store.
  {
    const Clock::time_point t0 = Clock::now();
    front->Stop();
    server->Shutdown();
    front.reset();
    source.reset();
    server.reset();
    store.value().reset();

    const Follower::Progress p0 = followers[0]->progress();
    const Follower::Progress p1 = followers[1]->progress();
    const int newest = (p1.journal_seq > p0.journal_seq ||
                        (p1.journal_seq == p0.journal_seq &&
                         p1.offset > p0.offset))
                           ? 1
                           : 0;
    followers[1 - newest]->Stop();
    auto promoted = followers[newest]->Promote();
    if (promoted.ok()) {
      followers[newest].reset();
      auto new_store = std::move(promoted).value();
      Server::Options o2;
      o2.worker_threads = 4;
      o2.store = new_store.get();
      Server new_server(&new_store->db(), o2);
      Client new_client(&new_server);
      const Oid item = new_store->db().Extent("Item").front();
      result.failover_ok =
          new_client.SetAttribute(item, "n", Value::Int(-1)).ok();
      result.failover_ms = MillisSince(t0);
      new_server.Shutdown();
    } else {
      std::fprintf(stderr, "E18: promote failed: %s\n",
                   promoted.status().ToString().c_str());
    }
    followers[0].reset();
    followers[1].reset();
  }
  std::filesystem::remove_all(base);
  return result;
}

}  // namespace

// ------------------------------------------------------------------- E19

/// A fixed hot set of Q2-style range scans. The fleet draws from it with a
/// Zipf-like skew (weight 1/rank), the shape of a production dashboard
/// workload: a few queries dominate, a long tail keeps the cache churning.
std::vector<std::string> HotQuerySet(int n) {
  std::vector<std::string> queries;
  queries.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const int lo = (i * 37) % 1800;
    const int hi = lo + 200;
    queries.push_back(
        "select a.id from AtomicPart a where a.build_date >= " +
        std::to_string(lo) + " and a.build_date <= " + std::to_string(hi));
  }
  return queries;
}

struct CacheFleetResult {
  SweepResult sweep;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  double hit_rate_percent = 0;
};

/// Zipf-skewed readers (plus optional writers churning the epoch) against
/// one server; reports the load-side numbers and the cache's own counters.
CacheFleetResult RunCachedFleet(Server& server,
                                const std::vector<std::string>& queries,
                                const std::vector<Oid>& parts, int readers,
                                int writers, int requests_per_client) {
  CacheFleetResult result;
  result.sweep.workers = server.worker_threads();
  result.sweep.reader_clients = readers;
  result.sweep.writer_clients = writers;

  std::vector<double> weights;
  weights.reserve(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    weights.push_back(1.0 / static_cast<double>(i + 1));
  }

  std::vector<std::vector<double>> read_lats(
      static_cast<std::size_t>(readers));
  std::atomic<std::size_t> failed{0};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(readers + writers));

  const Clock::time_point wall_start = Clock::now();
  for (int c = 0; c < readers; ++c) {
    threads.emplace_back([&, c] {
      Client client(&server);
      std::mt19937 rng(4000u + static_cast<unsigned>(c));
      std::discrete_distribution<std::size_t> pick(weights.begin(),
                                                   weights.end());
      auto& lats = read_lats[static_cast<std::size_t>(c)];
      lats.reserve(static_cast<std::size_t>(requests_per_client));
      for (int i = 0; i < requests_per_client; ++i) {
        const std::string& q = queries[pick(rng)];
        const Clock::time_point t0 = Clock::now();
        auto r = client.Query(q);
        lats.push_back(MillisSince(t0));
        if (!r.ok()) failed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int w = 0; w < writers; ++w) {
    threads.emplace_back([&, w] {
      Client client(&server);
      std::mt19937 rng(8000u + static_cast<unsigned>(w));
      std::uniform_int_distribution<std::size_t> pick(0, parts.size() - 1);
      for (int i = 0; i < requests_per_client; ++i) {
        const Oid oid = parts[pick(rng)];
        if (!client.SetAttribute(oid, "x", Value::Int(i)).ok()) {
          failed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  result.sweep.wall_ms = MillisSince(wall_start);

  std::vector<double> all_reads;
  for (auto& v : read_lats) {
    all_reads.insert(all_reads.end(), v.begin(), v.end());
  }
  result.sweep.requests =
      all_reads.size() +
      static_cast<std::size_t>(writers) *
          static_cast<std::size_t>(requests_per_client);
  result.sweep.failed = failed.load();
  result.sweep.throughput_rps =
      result.sweep.wall_ms > 0
          ? static_cast<double>(result.sweep.requests) /
                (result.sweep.wall_ms / 1000.0)
          : 0;
  result.sweep.read_lat = SummarizeLatencies(all_reads);

  const auto cache_stats = server.query_cache().results().stats();
  result.hits = cache_stats.hits;
  result.misses = cache_stats.misses;
  result.hit_rate_percent = cache_stats.hit_rate_percent;
  return result;
}

int main(int argc, char** argv) {
  const int requests_per_client = argc > 1 ? std::atoi(argv[1]) : 150;
  const unsigned cores = std::thread::hardware_concurrency();

  Config config;  // OO7 small module: 50 composites, 1000 atomic parts
  std::printf("bench_server: OO7 small module (%d atomic parts), %d client "
              "threads, %d requests/client, %u hardware threads\n",
              config.total_atomic_parts(), kClientThreads,
              requests_per_client, cores);

  JsonWriter json;
  json.BeginObject();
  json.Key("bench").String("server");
  json.Key("hardware_concurrency").Int(cores);
  json.Key("atomic_parts").Int(config.total_atomic_parts());
  json.Key("requests_per_client").Int(requests_per_client);

  // ---- read-only sweep over worker counts ------------------------------
  prometheus::bench::PrintTableHeader(
      "E14a: read-only query serving (8 clients, workers swept)",
      "  phase        workers  requests  throughput   latency");
  json.Key("read_sweep").BeginArray();
  double rps_at_1 = 0;
  double rps_at_4 = 0;
  for (int workers : kWorkerSweep) {
    PrometheusOo7 oo7(config);  // fresh, identical database per sweep
    Server::Options options;
    options.worker_threads = workers;
    options.queue_capacity = 4096;
    options.cache.enabled = false;  // E19 measures the cache; E14 never did
    Server server(&oo7.db(), options);
    SweepResult r = RunLoad(server, {}, workers, kClientThreads,
                            /*writers=*/0, requests_per_client);
    server.Shutdown();
    PrintRow(r, "read-only");
    EmitSweepJson(json, r);
    if (workers == 1) rps_at_1 = r.throughput_rps;
    if (workers == 4) rps_at_4 = r.throughput_rps;
  }
  json.EndArray();
  const double scaling = rps_at_1 > 0 ? rps_at_4 / rps_at_1 : 0;
  json.Key("scaling_4v1").Number(scaling);
  std::printf("  read scaling 4 workers vs 1: %.2fx", scaling);
  if (cores < 4) {
    std::printf("  (only %u hardware thread%s — scaling is bounded by the "
                "host, expect ~1x)",
                cores, cores == 1 ? "" : "s");
  }
  std::printf("\n");

  // ---- mixed read/write load ------------------------------------------
  prometheus::bench::PrintTableHeader(
      "E14b: mixed load (7 readers + 1 writer, 4 workers)",
      "  phase        workers  requests  throughput   read latency");
  json.Key("mixed").BeginArray();
  {
    PrometheusOo7 oo7(config);
    const std::vector<Oid> parts = oo7.db().Extent("AtomicPart");
    Server::Options options;
    options.worker_threads = 4;
    options.queue_capacity = 4096;
    options.cache.enabled = false;
    Server server(&oo7.db(), options);
    SweepResult r = RunLoad(server, parts, 4, kClientThreads - 1,
                            /*writers=*/1, requests_per_client);
    server.Shutdown();
    PrintRow(r, "mixed");
    std::printf("               write latency: p50 %7.3f  p95 %7.3f  p99 "
                "%7.3f ms\n",
                r.write_lat.p50, r.write_lat.p95, r.write_lat.p99);
    EmitSweepJson(json, r);
  }
  json.EndArray();

  // ---- E16a: overload (deadlines + priorities vs a saturated worker) ---
  prometheus::bench::PrintTableHeader(
      "E16a: overload shedding (8 clients, 2ms deadlines, 1 worker, "
      "16-slot queue)",
      "  outcome            count    rate");
  json.Key("overload").BeginObject();
  {
    PrometheusOo7 oo7(config);
    Server::Options options;
    options.worker_threads = 1;
    options.queue_capacity = 16;
    options.cache.enabled = false;
    Server server(&oo7.db(), options);
    OverloadResult r =
        RunOverload(server, kClientThreads, requests_per_client);
    server.Shutdown();
    const double n = static_cast<double>(r.requests);
    std::printf("  served            %6zu  %5.1f%%\n", r.ok,
                100.0 * static_cast<double>(r.ok) / n);
    std::printf("  rejected          %6zu  %5.1f%%\n", r.rejected,
                100.0 * static_cast<double>(r.rejected) / n);
    std::printf("  timed out         %6zu  %5.1f%%\n", r.timed_out,
                100.0 * static_cast<double>(r.timed_out) / n);
    std::printf("  served by priority  low %zu / normal %zu / high %zu "
                "(shedding favours important work)\n",
                r.ok_by_priority[0], r.ok_by_priority[1],
                r.ok_by_priority[2]);
    json.Key("requests").Int(static_cast<long long>(r.requests));
    json.Key("served").Int(static_cast<long long>(r.ok));
    json.Key("rejected").Int(static_cast<long long>(r.rejected));
    json.Key("timed_out").Int(static_cast<long long>(r.timed_out));
    json.Key("wall_ms").Number(r.wall_ms);
    json.Key("served_low").Int(static_cast<long long>(r.ok_by_priority[0]));
    json.Key("served_normal")
        .Int(static_cast<long long>(r.ok_by_priority[1]));
    json.Key("served_high").Int(static_cast<long long>(r.ok_by_priority[2]));
  }
  json.EndObject();

  // ---- E16b: degraded read-only mode ----------------------------------
  prometheus::bench::PrintTableHeader(
      "E16b: degraded read-only mode (fault-injected store, 8 readers)",
      "  metric                         value");
  json.Key("degraded").BeginObject();
  {
    DegradedResult r = RunDegraded("bench_e16_store", kClientThreads,
                                   requests_per_client);
    std::printf("  healthy read throughput     %10.1f rps\n",
                r.healthy_read_rps);
    std::printf("  degraded read throughput    %10.1f rps  (%.0f%% of "
                "healthy)\n",
                r.degraded_read_rps,
                r.healthy_read_rps > 0
                    ? 100.0 * r.degraded_read_rps / r.healthy_read_rps
                    : 0);
    std::printf("  mutation fast-fail p50      %10.4f ms  (%zu/200 "
                "kUnavailable)\n",
                r.fastfail_lat.p50, r.unavailable);
    std::printf("  checkpoint re-armed         %10s\n",
                r.rearmed ? "yes" : "NO");
    json.Key("healthy_read_rps").Number(r.healthy_read_rps);
    json.Key("degraded_read_rps").Number(r.degraded_read_rps);
    json.Key("fastfail_p50_ms").Number(r.fastfail_lat.p50);
    json.Key("fastfail_p99_ms").Number(r.fastfail_lat.p99);
    json.Key("unavailable").Int(static_cast<long long>(r.unavailable));
    json.Key("rearmed").Int(r.rearmed ? 1 : 0);
  }
  json.EndObject();

  // ---- E17: remote telemetry plane ------------------------------------
  prometheus::bench::PrintTableHeader(
      "E17: remote telemetry plane (keep-alive HTTP, 8 readers as load)",
      "  metric                         value");
  json.Key("e17").BeginObject();
  {
    PrometheusOo7 oo7(config);
    Server::Options options;
    options.worker_threads = 4;
    options.queue_capacity = 4096;
    options.cache.enabled = false;
    Server server(&oo7.db(), options);
    const int scrapes = std::max(50, requests_per_client);
    const int queries = std::max(50, requests_per_client);
    TelemetryResult r =
        RunTelemetry(server, kClientThreads, scrapes, queries);
    server.Shutdown();
    std::printf("  /metrics scrape p50         %10.3f ms\n",
                r.scrape_lat.p50);
    std::printf("  /metrics scrape p95         %10.3f ms\n",
                r.scrape_lat.p95);
    std::printf("  /metrics scrape p99         %10.3f ms  (target < 5 ms)"
                "%s\n",
                r.scrape_lat.p99,
                r.scrape_lat.p99 < 5.0 ? "" : "  [OVER TARGET]");
    std::printf("  scrape payload              %10zu bytes, %zu failures\n",
                r.scrape_bytes, r.scrape_failures);
    std::printf("  query p50  remote / local   %10.3f / %.3f ms  "
                "(overhead %+.3f ms)\n",
                r.remote_query_lat.p50, r.local_query_lat.p50,
                r.remote_query_lat.p50 - r.local_query_lat.p50);
    std::printf("  query p99  remote / local   %10.3f / %.3f ms\n",
                r.remote_query_lat.p99, r.local_query_lat.p99);
    json.Key("scrapes").Int(scrapes);
    json.Key("scrape_p50_ms").Number(r.scrape_lat.p50);
    json.Key("scrape_p95_ms").Number(r.scrape_lat.p95);
    json.Key("scrape_p99_ms").Number(r.scrape_lat.p99);
    json.Key("scrape_max_ms").Number(r.scrape_lat.max);
    json.Key("scrape_bytes").Int(static_cast<long long>(r.scrape_bytes));
    json.Key("scrape_failures")
        .Int(static_cast<long long>(r.scrape_failures));
    json.Key("remote_query_p50_ms").Number(r.remote_query_lat.p50);
    json.Key("remote_query_p99_ms").Number(r.remote_query_lat.p99);
    json.Key("local_query_p50_ms").Number(r.local_query_lat.p50);
    json.Key("local_query_p99_ms").Number(r.local_query_lat.p99);
    json.Key("remote_overhead_p50_ms")
        .Number(r.remote_query_lat.p50 - r.local_query_lat.p50);
    json.Key("remote_failures")
        .Int(static_cast<long long>(r.remote_failures));
  }
  json.EndObject();

  // ---- E18: journal-shipping replication ------------------------------
  prometheus::bench::PrintTableHeader(
      "E18: journal-shipping replication (8 clients over the fleet)",
      "  metric                         value");
  json.Key("e18").BeginObject();
  {
    ReplicationBench r = RunReplication("bench_e18_repl", kClientThreads,
                                        requests_per_client);
    std::printf("  fleet read rps, 0 replicas  %10.1f\n", r.read_rps[0]);
    std::printf("  fleet read rps, 1 replica   %10.1f  (%.2fx)\n",
                r.read_rps[1],
                r.read_rps[0] > 0 ? r.read_rps[1] / r.read_rps[0] : 0);
    std::printf("  fleet read rps, 2 replicas  %10.1f  (%.2fx)\n",
                r.read_rps[2],
                r.read_rps[0] > 0 ? r.read_rps[2] / r.read_rps[0] : 0);
    std::printf("  catch-up: %zu writes shipped to both replicas in %.1f ms "
                "(%.0f records/s)\n",
                r.catchup_writes, r.catchup_ms, r.ship_records_per_sec);
    std::printf("  residual lag                %10llu records\n",
                static_cast<unsigned long long>(r.residual_lag_records));
    std::printf("  failover (kill -> writable) %10.1f ms  %s\n",
                r.failover_ms, r.failover_ok ? "" : "[FAILED]");
    json.Key("read_rps_0_replicas").Number(r.read_rps[0]);
    json.Key("read_rps_1_replica").Number(r.read_rps[1]);
    json.Key("read_rps_2_replicas").Number(r.read_rps[2]);
    json.Key("catchup_writes").Int(static_cast<long long>(r.catchup_writes));
    json.Key("catchup_ms").Number(r.catchup_ms);
    json.Key("ship_records_per_sec").Number(r.ship_records_per_sec);
    json.Key("residual_lag_records")
        .Int(static_cast<long long>(r.residual_lag_records));
    json.Key("failover_ms").Number(r.failover_ms);
    json.Key("failover_ok").Int(r.failover_ok ? 1 : 0);
  }
  json.EndObject();

  // ---- E19: query cache under a Zipf hot-query fleet -------------------
  prometheus::bench::PrintTableHeader(
      "E19: result cache, Zipf-skewed hot set (8 readers, 4 workers)",
      "  phase        workers  requests  throughput   latency");
  json.Key("e19").BeginObject();
  {
    const std::vector<std::string> hot = HotQuerySet(64);
    json.Key("hot_set_size").Int(static_cast<int>(hot.size()));
    // Dashboards re-issue the same few queries; double the per-client count
    // so the steady state (not the warm-up misses) dominates the numbers.
    const int fleet_requests = 2 * requests_per_client;
    json.Key("requests_per_client").Int(fleet_requests);

    double rps_off = 0;
    {
      PrometheusOo7 oo7(config);
      Server::Options options;
      options.worker_threads = 4;
      options.queue_capacity = 4096;
      options.cache.enabled = false;
      Server server(&oo7.db(), options);
      CacheFleetResult r = RunCachedFleet(server, hot, {}, kClientThreads,
                                          /*writers=*/0, fleet_requests);
      server.Shutdown();
      PrintRow(r.sweep, "cache off");
      json.Key("cache_off");
      EmitSweepJson(json, r.sweep);
      rps_off = r.sweep.throughput_rps;
    }

    double rps_on = 0;
    {
      PrometheusOo7 oo7(config);
      Server::Options options;
      options.worker_threads = 4;
      options.queue_capacity = 4096;
      Server server(&oo7.db(), options);  // cache on by default
      CacheFleetResult r = RunCachedFleet(server, hot, {}, kClientThreads,
                                          /*writers=*/0, fleet_requests);
      server.Shutdown();
      PrintRow(r.sweep, "cache on");
      std::printf("               result cache: %llu hits / %llu misses "
                  "(%.1f%% hit rate)\n",
                  static_cast<unsigned long long>(r.hits),
                  static_cast<unsigned long long>(r.misses),
                  r.hit_rate_percent);
      json.Key("cache_on");
      EmitSweepJson(json, r.sweep);
      json.Key("cache_on_hits").Int(static_cast<long long>(r.hits));
      json.Key("cache_on_misses").Int(static_cast<long long>(r.misses));
      json.Key("cache_on_hit_rate_percent").Number(r.hit_rate_percent);
      rps_on = r.sweep.throughput_rps;
    }
    const double speedup = rps_off > 0 ? rps_on / rps_off : 0;
    json.Key("speedup").Number(speedup);
    std::printf("  cache speedup (on vs off): %.2fx  (target >= 2x)%s\n",
                speedup, speedup >= 2.0 ? "" : "  [UNDER TARGET]");

    // Writer churn: one mutator bumps the epoch continuously, so every
    // committed write invalidates the whole result tier. The cache must
    // still help (hot entries re-warm between writes) and must never serve
    // stale rows — staleness is asserted by test_cache's stress test; here
    // we report what churn does to the hit rate.
    {
      PrometheusOo7 oo7(config);
      const std::vector<Oid> parts = oo7.db().Extent("AtomicPart");
      Server::Options options;
      options.worker_threads = 4;
      options.queue_capacity = 4096;
      Server server(&oo7.db(), options);
      CacheFleetResult r =
          RunCachedFleet(server, hot, parts, kClientThreads - 1,
                         /*writers=*/1, fleet_requests);
      server.Shutdown();
      PrintRow(r.sweep, "churn");
      std::printf("               result cache: %llu hits / %llu misses "
                  "(%.1f%% hit rate under writer churn)\n",
                  static_cast<unsigned long long>(r.hits),
                  static_cast<unsigned long long>(r.misses),
                  r.hit_rate_percent);
      json.Key("churn");
      EmitSweepJson(json, r.sweep);
      json.Key("churn_hits").Int(static_cast<long long>(r.hits));
      json.Key("churn_misses").Int(static_cast<long long>(r.misses));
      json.Key("churn_hit_rate_percent").Number(r.hit_rate_percent);
    }
  }
  json.EndObject();

  // ---- E21: MVCC snapshot reads under 400-write transaction churn ------
  // Readers pin an immutable snapshot at dequeue and never touch the
  // shared guard, so a writer looping long transactions must not move read
  // latency: target p99 within 20% of the reader-only baseline, and the
  // guard_wait_micros{mode="shared"} histogram flat across the phase. The
  // cache is off in both phases so every request actually executes.
  prometheus::bench::PrintTableHeader(
      "E21: MVCC snapshot reads (8 readers vs one 400-write txn writer, "
      "4 workers, cache off)",
      "  phase        workers  requests  throughput   latency");
  json.Key("e21").BeginObject();
  {
    double baseline_p99 = 0;
    {
      PrometheusOo7 oo7(config);
      Server::Options options;
      options.worker_threads = 4;
      options.queue_capacity = 4096;
      options.cache.enabled = false;
      Server server(&oo7.db(), options);
      SweepResult r = RunLoad(server, {}, 4, kClientThreads,
                              /*writers=*/0, requests_per_client);
      server.Shutdown();
      PrintRow(r, "reader-only");
      json.Key("reader_only");
      EmitSweepJson(json, r);
      baseline_p99 = r.read_lat.p99;
    }
    {
      PrometheusOo7 oo7(config);
      const std::vector<Oid> parts = oo7.db().Extent("AtomicPart");
      Server::Options options;
      options.worker_threads = 4;
      options.queue_capacity = 4096;
      options.cache.enabled = false;
      Server server(&oo7.db(), options);
      MvccChurnResult r =
          RunMvccChurn(server, parts, 4, kClientThreads, requests_per_client);
      server.Shutdown();
      PrintRow(r.sweep, "txn-churn");
      std::printf("               writer: %llu committed 400-write txns, "
                  "p50 %.3f ms/txn\n",
                  static_cast<unsigned long long>(r.writer_txns),
                  r.writer_txn_p50_ms);
      std::printf("               guard shared-mode waits during phase: %llu "
                  "(%.0f us total; MVCC target: 0)\n",
                  static_cast<unsigned long long>(r.guard_shared_waits),
                  r.guard_shared_wait_micros);
      json.Key("churn");
      EmitSweepJson(json, r.sweep);
      json.Key("writer_txns").Int(static_cast<long long>(r.writer_txns));
      json.Key("writer_writes_per_txn").Int(400);
      json.Key("writer_txn_p50_ms").Number(r.writer_txn_p50_ms);
      json.Key("guard_shared_waits")
          .Int(static_cast<long long>(r.guard_shared_waits));
      json.Key("guard_shared_wait_micros").Number(r.guard_shared_wait_micros);
      const double ratio =
          baseline_p99 > 0 ? r.sweep.read_lat.p99 / baseline_p99 : 0;
      json.Key("read_p99_ratio").Number(ratio);
      json.Key("scaling_4v1").Number(scaling);  // E14a read sweep, same path
      json.Key("host_bounded").Bool(cores < 4);
      std::printf("  reader p99 under txn churn vs reader-only: %.2fx  "
                  "(target <= 1.2x)%s\n",
                  ratio, ratio <= 1.2 ? "" : "  [OVER TARGET]");
      if (cores < 4) {
        std::printf("  (only %u hardware thread%s — churn and baseline share "
                    "the core%s; ratio is host-bounded)\n",
                    cores, cores == 1 ? "" : "s", cores == 1 ? "" : "s");
      }
    }
  }
  json.EndObject();
  json.EndObject();

  const std::string out = "BENCH_server.json";
  if (!prometheus::bench::WriteTextFile(out, json.str() + "\n")) {
    std::fprintf(stderr, "failed to write %s\n", out.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", out.c_str());
  return 0;
}
