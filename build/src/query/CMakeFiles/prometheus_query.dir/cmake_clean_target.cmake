file(REMOVE_RECURSE
  "libprometheus_query.a"
)
