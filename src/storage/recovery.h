#ifndef PROMETHEUS_STORAGE_RECOVERY_H_
#define PROMETHEUS_STORAGE_RECOVERY_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/database.h"
#include "storage/fault.h"
#include "storage/journal.h"

namespace prometheus::storage {

/// Crash-safe persistence manager: owns a database directory holding
/// generation-numbered snapshots and journals,
///
///   snapshot-000002.pdb   full state as of generation 2
///   journal-000003.log    mutations since snapshot 2 (v2, checksummed)
///
/// and maintains the invariant that at every instant — including halfway
/// through any write — the directory recovers to a consistent prefix of the
/// committed history:
///
///  - `Open(dir)` loads the newest snapshot that validates, replays every
///    journal after it (recovering torn tails), truncates the live journal
///    to its last intact record and reopens it in append mode;
///  - `Checkpoint()` writes the next snapshot atomically (temp + fsync +
///    rename + directory fsync), rotates to a fresh continuation journal
///    and prunes generations that are no longer needed. A crash anywhere in
///    the protocol leaves the previous snapshot/journal pair authoritative.
///
/// Thread model: one store per directory. The journal *append path* is
/// thread-safe — mutations serialised by the database's epoch guard
/// (`Database::WriteGuard`) append safely while any thread calls `Flush`,
/// `Sync` or `status()` (the journal locks internally, so frames are never
/// torn). `Open` and `Checkpoint` still require exclusive access: take the
/// write guard (or quiesce the server) around a checkpoint.
class DurableStore {
 public:
  struct Options {
    /// Filesystem to write through (default `Env::Default()`); tests pass a
    /// `FaultInjectionEnv` to crash the store at chosen byte counts.
    Env* env = nullptr;
    /// Run once on a brand-new (empty-directory) store, before the first
    /// journal is created: define the schema here so the journal's schema
    /// prologue captures it. Not run when recovering existing state.
    std::function<Status(Database*)> bootstrap;
  };

  /// How `Open` reassembled the state — for logging and tests.
  struct RecoveryInfo {
    /// Snapshot file the state was loaded from (empty when none existed).
    std::string snapshot_file;
    /// Snapshot files that failed to validate and were skipped.
    std::vector<std::string> skipped;
    /// Journal files replayed, in order.
    std::vector<std::string> replayed;
    /// Mutation records applied across all replayed journals.
    std::uint64_t replayed_records = 0;
    /// Records/bytes dropped from torn or uncommitted journal tails.
    std::uint64_t dropped_records = 0;
    std::uint64_t dropped_bytes = 0;
    /// True when any replayed journal had a torn tail.
    bool torn_tail = false;
  };

  /// Opens (creating if necessary) the store at `dir` and recovers its
  /// state. Never partial: on any error the directory is left untouched
  /// apart from deleted `*.tmp` staging files.
  static Result<std::unique_ptr<DurableStore>> Open(const std::string& dir,
                                                    Options options);
  static Result<std::unique_ptr<DurableStore>> Open(const std::string& dir);

  /// Closes the journal cleanly (best effort).
  ~DurableStore();

  DurableStore(const DurableStore&) = delete;
  DurableStore& operator=(const DurableStore&) = delete;

  /// The recovered database. Mutations are journalled automatically.
  Database& db() { return *db_; }
  const Database& db() const { return *db_; }

  const RecoveryInfo& recovery_info() const { return info_; }

  /// Current snapshot generation (0 until the first checkpoint).
  std::uint64_t generation() const { return snapshot_seq_; }

  /// Point-in-time durability counters: the live journal's I/O totals plus
  /// this store's checkpoint/recovery history. Safe to call from any thread
  /// that may also be appending (journal counters are atomics).
  struct Stats {
    std::uint64_t journal_records = 0;  ///< live journal's mutation records
    std::uint64_t journal_bytes = 0;    ///< live journal's framed bytes
    std::uint64_t journal_syncs = 0;    ///< live journal's fsync barriers
    std::uint64_t generation = 0;       ///< loaded snapshot generation
    std::uint64_t checkpoints = 0;      ///< successful Checkpoint() calls
    std::uint64_t replayed_records = 0; ///< records replayed by Open()
    std::uint64_t dropped_records = 0;  ///< records lost to torn tails
    bool torn_tail = false;             ///< recovery saw a torn tail
  };
  Stats stats() const;

  /// Writes an atomic snapshot of the current state, rotates the journal
  /// and prunes superseded generations. On failure the previous
  /// snapshot/journal pair remains authoritative and is reported intact by
  /// the next `Open`. On success any latched durability failure is cleared
  /// (`status()` returns Ok again): the snapshot supersedes whatever the
  /// broken journal failed to record — this is the operator's re-arm path
  /// out of the server's degraded read-only mode.
  Status Checkpoint();

  /// Journal flush / fsync; both return the sticky durability status.
  Status Flush();
  Status Sync();

  /// Sticky durability status: Ok while every mutation reached the journal.
  Status status() const;

 private:
  DurableStore(std::string dir, Env* env);

  Status OpenJournalFresh();

  std::string dir_;
  Env* env_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<Journal> journal_;
  std::uint64_t snapshot_seq_ = 0;  ///< generation of the loaded snapshot
  std::uint64_t journal_seq_ = 0;   ///< generation of the live journal
  std::uint64_t checkpoints_ = 0;   ///< successful Checkpoint() calls
  RecoveryInfo info_;
  Status sticky_;  ///< store-level failures (e.g. journal rotation failed)
};

}  // namespace prometheus::storage

#endif  // PROMETHEUS_STORAGE_RECOVERY_H_
