#include "taxonomy/report.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

namespace prometheus::taxonomy {

namespace {

std::string StringAttrOr(const Database& db, Oid oid, const char* attr,
                         const std::string& fallback) {
  auto v = db.GetAttribute(oid, attr);
  if (v.ok() && v.value().type() == ValueType::kString &&
      !v.value().AsString().empty()) {
    return v.value().AsString();
  }
  return fallback;
}

void RenderNode(const TaxonomyDatabase& tdb, Oid classification, Oid node,
                int depth, std::unordered_set<Oid>* on_path,
                std::ostringstream* out) {
  const Database& db = tdb.db();
  std::string indent(static_cast<std::size_t>(depth) * 2, ' ');
  if (db.IsInstanceOf(node, kSpecimenClass)) {
    *out << indent << "* specimen " << StringAttrOr(db, node, "collector", "?")
         << " " << StringAttrOr(db, node, "field_number", "") << " ["
         << StringAttrOr(db, node, "herbarium", "?") << "]\n";
    return;
  }
  std::string rank = StringAttrOr(db, node, "rank", "?");
  std::string working = StringAttrOr(db, node, "working_name", "(unnamed)");
  *out << indent << rank << " " << working;
  Oid name = tdb.CalculatedNameOf(node);
  const char* label = " = ";
  if (name == kNullOid) {
    name = tdb.AscribedNameOf(node);
    label = " (ascribed: ";
  }
  if (name != kNullOid) {
    auto full = tdb.FullName(name);
    if (full.ok()) {
      *out << label << full.value();
      if (label[1] == '(') *out << ")";
    }
  }
  *out << "\n";
  if (!on_path->insert(node).second) {
    *out << indent << "  (cycle)\n";
    return;
  }
  std::vector<Oid> children =
      tdb.classifications().Children(classification, node);
  std::sort(children.begin(), children.end());
  for (Oid child : children) {
    RenderNode(tdb, classification, child, depth + 1, on_path, out);
  }
  on_path->erase(node);
}

}  // namespace

Result<std::string> RenderClassificationTree(const TaxonomyDatabase& tdb,
                                             Oid classification) {
  const Database& db = tdb.db();
  if (!tdb.classifications().IsClassification(classification)) {
    return Status::NotFound("@" + std::to_string(classification) +
                            " is not a classification");
  }
  std::ostringstream out;
  out << "Classification \"" << StringAttrOr(db, classification, "name", "?")
      << "\" by " << StringAttrOr(db, classification, "author", "?");
  auto year = db.GetAttribute(classification, "year");
  if (year.ok() && year.value().type() == ValueType::kInt &&
      year.value().AsInt() != 0) {
    out << " (" << year.value().AsInt() << ")";
  }
  out << "\n";
  std::vector<Oid> roots = tdb.classifications().Roots(classification);
  if (roots.empty()) {
    out << "  (empty)\n";
  }
  std::unordered_set<Oid> on_path;
  for (Oid root : roots) {
    RenderNode(tdb, classification, root, 1, &on_path, &out);
  }
  return out.str();
}

Result<std::string> RenderNameDossier(const TaxonomyDatabase& tdb,
                                      Oid name) {
  const Database& db = tdb.db();
  if (!db.IsInstanceOf(name, kNameClass)) {
    return Status::NotFound("@" + std::to_string(name) + " is not a name");
  }
  std::ostringstream out;
  PROMETHEUS_ASSIGN_OR_RETURN(std::string full, tdb.FullName(name));
  out << full << "\n";
  out << "  rank:        " << StringAttrOr(db, name, "rank", "?") << "\n";
  out << "  status:      " << StringAttrOr(db, name, "status", "?") << "\n";
  std::string publication = StringAttrOr(db, name, "publication", "");
  auto year = db.GetAttribute(name, "year");
  out << "  published:   ";
  if (year.ok() && year.value().type() == ValueType::kInt &&
      year.value().AsInt() != 0) {
    out << year.value().AsInt();
  }
  if (!publication.empty()) out << ", " << publication;
  out << "\n";
  // Placement chain up the nomenclatural hierarchy.
  Oid genus = tdb.PlacementOf(name);
  if (genus != kNullOid) {
    out << "  placed in:   ";
    auto genus_full = tdb.FullName(genus);
    out << (genus_full.ok() ? genus_full.value() : "?") << "\n";
  }
  // Types.
  std::vector<Oid> types = tdb.TypesOf(name);
  if (!types.empty()) {
    out << "  types:\n";
    for (Oid type : types) {
      // Find the kind recorded on the link.
      std::string kind = "?";
      for (const char* rel :
           {kTypifiedBySpecimenRel, kTypifiedByNameRel}) {
        for (Oid lid : db.IncidentLinks(name, Direction::kOut,
                                        db.FindRelationship(rel))) {
          const Link* link = db.GetLink(lid);
          if (link->target != type) continue;
          auto k = link->attrs.find("type_kind");
          if (k != link->attrs.end() &&
              k->second.type() == ValueType::kString) {
            kind = k->second.AsString();
          }
        }
      }
      out << "    " << kind << ": ";
      if (db.IsInstanceOf(type, kSpecimenClass)) {
        out << "specimen " << StringAttrOr(db, type, "collector", "?") << " "
            << StringAttrOr(db, type, "field_number", "");
      } else {
        auto type_full = tdb.FullName(type);
        out << (type_full.ok() ? type_full.value() : "?");
      }
      out << "\n";
    }
  }
  std::vector<Oid> typifies = tdb.NamesTypifiedBy(name);
  if (!typifies.empty()) {
    out << "  typifies:\n";
    for (Oid higher : typifies) {
      auto higher_full = tdb.FullName(higher);
      out << "    " << (higher_full.ok() ? higher_full.value() : "?")
          << "\n";
    }
  }
  return out.str();
}

Result<std::string> RenderSynonymyReport(const TaxonomyDatabase& tdb,
                                         Oid classification_a,
                                         Oid classification_b) {
  const Database& db = tdb.db();
  if (!tdb.classifications().IsClassification(classification_a) ||
      !tdb.classifications().IsClassification(classification_b)) {
    return Status::NotFound("both arguments must be classifications");
  }
  std::ostringstream out;
  out << "Synonymy: \""
      << StringAttrOr(db, classification_a, "name", "?") << "\" vs \""
      << StringAttrOr(db, classification_b, "name", "?") << "\"\n";
  auto label = [&](Oid taxon) {
    if (taxon == kNullOid) return std::string("(no counterpart)");
    std::string working = StringAttrOr(db, taxon, "working_name", "");
    if (!working.empty()) return working;
    return "@" + std::to_string(taxon);
  };
  for (const auto& entry :
       tdb.classifications().Align(classification_a, classification_b)) {
    const char* kind =
        entry.kind == SynonymyKind::kFull
            ? "full synonym of"
            : entry.kind == SynonymyKind::kProParte ? "pro parte synonym of"
                                                    : "no overlap with";
    out << "  " << label(entry.taxon_a) << "  " << kind << "  "
        << label(entry.taxon_b);
    if (entry.taxon_b != kNullOid) {
      std::ostringstream sim;
      sim.precision(2);
      sim << std::fixed << entry.similarity;
      out << "  (similarity " << sim.str() << ")";
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace prometheus::taxonomy
