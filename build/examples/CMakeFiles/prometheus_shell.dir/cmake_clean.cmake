file(REMOVE_RECURSE
  "CMakeFiles/prometheus_shell.dir/prometheus_shell.cpp.o"
  "CMakeFiles/prometheus_shell.dir/prometheus_shell.cpp.o.d"
  "prometheus_shell"
  "prometheus_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prometheus_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
