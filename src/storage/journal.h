#ifndef PROMETHEUS_STORAGE_JOURNAL_H_
#define PROMETHEUS_STORAGE_JOURNAL_H_

#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/database.h"

namespace prometheus::storage {

/// Append-only operation journal: the incremental persistence mechanism
/// complementing snapshots (together they play the role of the thesis'
/// underlying storage system).
///
/// A journal file starts with the schema records of the database at open
/// time, followed by one record per committed mutation, captured through
/// the event layer:
///  - mutations outside a transaction are appended immediately;
///  - mutations inside a transaction are buffered and flushed at commit —
///    an aborted transaction leaves no trace (its compensating events are
///    buffered and discarded too);
///  - schema changes after opening are not journalled (define classes
///    before opening, as the thesis' prototype fixes its schema at start).
///
/// `Replay` reconstructs the database state by applying the records to an
/// empty database (semantic checks are suspended during replay: the
/// journal is already-validated history).
class Journal {
 public:
  /// Opens `path` (truncating), writes the schema prologue and subscribes
  /// to `db`'s event bus. `db` must outlive the journal.
  static Result<std::unique_ptr<Journal>> Open(Database* db,
                                               const std::string& path);

  /// Unsubscribes and closes the file (appending the END record).
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Forces buffered committed records to the file.
  Status Flush();

  /// Number of records written so far (excluding the schema prologue).
  std::uint64_t record_count() const { return record_count_; }

  /// Rebuilds a database from a journal file. `db` must be empty.
  static Status Replay(Database* db, const std::string& path);
  static Status Replay(Database* db, std::istream& in);

 private:
  Journal(Database* db, std::ofstream out);

  void OnEvent(const Event& event);
  void Emit(std::string record);

  Database* db_;
  std::ofstream out_;
  ListenerId listener_ = 0;
  bool in_transaction_ = false;
  std::vector<std::string> pending_;  ///< records of the open transaction
  std::uint64_t record_count_ = 0;
};

}  // namespace prometheus::storage

#endif  // PROMETHEUS_STORAGE_JOURNAL_H_
