#ifndef PROMETHEUS_COMMON_STATUS_H_
#define PROMETHEUS_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace prometheus {

/// Outcome of a database operation.
///
/// Prometheus does not throw exceptions across library boundaries; every
/// fallible operation returns a `Status` (or a `Result<T>`, see result.h).
/// The codes mirror the error classes the thesis' rule layer distinguishes:
/// user errors (invalid argument, not found), integrity violations raised by
/// the constraint machinery of chapter 4/5, and aborted transactions.
class Status {
 public:
  /// Error categories.
  enum class Code {
    kOk = 0,
    /// A name or oid does not designate anything in the database.
    kNotFound,
    /// The caller supplied an argument the model rejects (bad type, bad
    /// cardinality specification, duplicate name, ...).
    kInvalidArgument,
    /// A relationship semantic (exclusivity, sharability, constancy,
    /// cardinality, lifetime dependency) or a user rule vetoed the operation.
    kConstraintViolation,
    /// The enclosing transaction was aborted (by a rule or by the user).
    kAborted,
    /// POOL / PCL source text failed to parse.
    kParseError,
    /// POOL / PCL expression is type-incorrect for the schema.
    kTypeError,
    /// I/O failure in the storage substrate.
    kIoError,
    /// The operation is not valid in the current state (e.g. nested
    /// transaction, mutating a committed classification).
    kFailedPrecondition,
    /// The request's deadline passed before (or while) it executed.
    kDeadlineExceeded,
    /// The service cannot take this operation right now — e.g. mutations
    /// while the store is in degraded read-only mode. Retrying without an
    /// operator action (checkpoint/rotate) will not help.
    kUnavailable,
  };

  /// Constructs an OK status.
  Status() : code_(Code::kOk) {}

  /// Factory helpers, one per code.
  static Status Ok() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status ConstraintViolation(std::string msg) {
    return Status(Code::kConstraintViolation, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(Code::kAborted, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(Code::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(Code::kTypeError, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(Code::kIoError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(Code::kFailedPrecondition, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(Code::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(Code::kUnavailable, std::move(msg));
  }

  /// True when the operation succeeded.
  bool ok() const { return code_ == Code::kOk; }

  /// The error category.
  Code code() const { return code_; }

  /// Human-readable error description; empty when ok().
  const std::string& message() const { return message_; }

  /// "OK" or "<code>: <message>", for logs and test failure output.
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

/// Returns the canonical name of a status code ("NotFound", ...).
const char* StatusCodeName(Status::Code code);

}  // namespace prometheus

#endif  // PROMETHEUS_COMMON_STATUS_H_
