// The virtual system catalog (sys.*): introspection rows materialized as
// first-class POOL structs. Covers the full query surface over every
// registered class (projection, predicates, joins, the OQL range form,
// PROFILE), the consistency rules the design leans on — one materialization
// per top-level query, result-cache exclusion so rows are always live, the
// lock-free extent heat counters — and the TSan stress: catalog readers
// racing a churning writer and DDL must never observe a torn row.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "index/index_manager.h"
#include "query/query_engine.h"
#include "query/system_catalog.h"
#include "server/client.h"
#include "server/server.h"

namespace {

using prometheus::AttributeDef;
using prometheus::Database;
using prometheus::IndexManager;
using prometheus::Oid;
using prometheus::Status;
using prometheus::Value;
using prometheus::ValueType;
using prometheus::pool::QueryEngine;
using prometheus::pool::QueryTouchesCatalog;
using prometheus::pool::ResultSet;
using prometheus::pool::SystemCatalog;
using prometheus::server::CacheOp;
using prometheus::server::Client;
using prometheus::server::Request;
using prometheus::server::Response;
using prometheus::server::Server;

AttributeDef Attr(std::string name, ValueType type) {
  AttributeDef def;
  def.name = std::move(name);
  def.type = type;
  return def;
}

std::unique_ptr<Database> MakePartsDb() {
  auto db = std::make_unique<Database>();
  EXPECT_TRUE(db->DefineClass("Part", {},
                              {Attr("name", ValueType::kString),
                               Attr("a", ValueType::kInt)})
                  .ok());
  return db;
}

// ------------------------------------------------------- name detection

TEST(SystemCatalogTest, IsCatalogNameRequiresSysPrefixAndMember) {
  EXPECT_TRUE(SystemCatalog::IsCatalogName("sys.metrics"));
  EXPECT_TRUE(SystemCatalog::IsCatalogName("sys.x"));
  EXPECT_FALSE(SystemCatalog::IsCatalogName("sys."));
  EXPECT_FALSE(SystemCatalog::IsCatalogName("sys"));
  EXPECT_FALSE(SystemCatalog::IsCatalogName("system.metrics"));
  EXPECT_FALSE(SystemCatalog::IsCatalogName("Taxon"));
}

TEST(SystemCatalogTest, QueryTouchesCatalogScansOutsideStrings) {
  EXPECT_TRUE(QueryTouchesCatalog("select m from sys.metrics m"));
  EXPECT_TRUE(QueryTouchesCatalog("SELECT M FROM SYS.METRICS M"));
  EXPECT_TRUE(QueryTouchesCatalog(
      "select t, s from Taxon t, sys.storage s where s.class = 'Taxon'"));
  // "sys." inside a string literal is data, not a catalog range.
  EXPECT_FALSE(
      QueryTouchesCatalog("select t from Taxon t where t.name = 'sys.x'"));
  // A longer identifier ending in "sys." is not the namespace.
  EXPECT_FALSE(QueryTouchesCatalog("select x from foosys.bar x"));
  EXPECT_FALSE(QueryTouchesCatalog("select t from Taxon t"));
}

// ------------------------------------------------------- basic queries

TEST(CatalogQueryTest, EveryRegisteredClassAnswersSelect) {
  auto db = MakePartsDb();
  Server server(db.get());
  Client client(&server);
  for (const SystemCatalog::ClassInfo& info :
       server.system_catalog().ListClasses()) {
    auto r = client.Query("select x from " + info.name + " x");
    ASSERT_TRUE(r.ok()) << info.name << ": " << r.status().ToString();
    for (const auto& row : r.value().rows) {
      ASSERT_EQ(row.size(), 1u);
      ASSERT_EQ(row[0].type(), ValueType::kStruct) << info.name;
      // Every row carries exactly the advertised attributes, in order.
      const Value::Struct& fields = row[0].AsStruct();
      ASSERT_EQ(fields.size(), info.attributes.size()) << info.name;
      for (std::size_t i = 0; i < fields.size(); ++i) {
        EXPECT_EQ(fields[i].first, info.attributes[i]) << info.name;
      }
    }
  }
}

TEST(CatalogQueryTest, SysCatalogListsEveryClassIncludingItself) {
  auto db = MakePartsDb();
  Server server(db.get());
  Client client(&server);
  auto r = client.Query("select c.class from sys.catalog c");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::set<std::string> names;
  for (const auto& row : r.value().rows) names.insert(row[0].AsString());
  for (const char* expected :
       {"sys.catalog", "sys.metrics", "sys.requests", "sys.contention",
        "sys.cache", "sys.replication", "sys.snapshots", "sys.classes",
        "sys.storage"}) {
    EXPECT_EQ(names.count(expected), 1u) << expected;
  }
}

TEST(CatalogQueryTest, MetricsRowsProjectAndFilter) {
  auto db = MakePartsDb();
  Server server(db.get());
  Client client(&server);
  ASSERT_TRUE(client.Query("select p from Part p").ok());

  auto r = client.Query(
      "select m.value from sys.metrics m "
      "where m.name = 'server_requests_total'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().rows.size(), 1u);
  EXPECT_GE(r.value().rows[0][0].AsInt(), 1);

  // Histograms project their summary fields; counters leave them null.
  auto h = client.Query(
      "select m.count from sys.metrics m "
      "where m.kind = 'histogram' and m.count > 0 limit 1");
  ASSERT_TRUE(h.ok()) << h.status().ToString();
}

TEST(CatalogQueryTest, RequestsReflectTheFlightRecorder) {
  auto db = MakePartsDb();
  Server server(db.get());
  Client client(&server);
  ASSERT_TRUE(client.Query("select p from Part p").ok());
  ASSERT_TRUE(client.CreateObject("Part", {{"a", Value::Int(1)}}).ok());

  auto r = client.Query(
      "select q.type, q.ok from sys.requests q where q.executed = true");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_GE(r.value().rows.size(), 2u);
  std::set<std::string> types;
  for (const auto& row : r.value().rows) {
    types.insert(row[0].AsString());
    EXPECT_TRUE(row[1].AsBool());
  }
  EXPECT_EQ(types.count("query"), 1u);
  EXPECT_EQ(types.count("mutation"), 1u);
}

TEST(CatalogQueryTest, SnapshotsRowIsSane) {
  auto db = MakePartsDb();
  Server server(db.get());
  Client client(&server);
  ASSERT_TRUE(client.CreateObject("Part", {{"a", Value::Int(1)}}).ok());
  auto r = client.Query(
      "select s.epoch, s.pinned_snapshots from sys.snapshots s");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().rows.size(), 1u);
  EXPECT_GE(r.value().rows[0][0].AsInt(), 1);  // the create bumped the epoch
  // The catalog query itself holds the one pin.
  EXPECT_GE(r.value().rows[0][1].AsInt(), 1);
}

TEST(CatalogQueryTest, ReplicationIsEmptyOnAStandaloneServer) {
  auto db = MakePartsDb();
  Server server(db.get());
  Client client(&server);
  auto r = client.Query("select l from sys.replication l");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.value().rows.empty());
}

// ---------------------------------------------- joins & language surface

TEST(CatalogQueryTest, JoinsAcrossCatalogClasses) {
  auto db = MakePartsDb();
  Server server(db.get());
  Client client(&server);
  // Every class in the schema has a storage row, joined by name.
  auto r = client.Query(
      "select c.name, s.rows from sys.classes c, sys.storage s "
      "where s.class = c.name order by c.name");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().rows.size(), 1u);
  EXPECT_EQ(r.value().rows[0][0].AsString(), "Part");
  EXPECT_EQ(r.value().rows[0][1].AsInt(), 0);
}

TEST(CatalogQueryTest, JoinsCatalogAgainstRealExtents) {
  auto db = MakePartsDb();
  {
    Database::WriteGuard guard(*db);
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(db->CreateObject("Part", {{"a", Value::Int(i)}}).ok());
    }
  }
  Server server(db.get());
  Client client(&server);
  // A real range and a catalog range in one query: each Part pairs with
  // its class's storage row.
  auto r = client.Query(
      "select p.a, s.rows from Part p, sys.storage s "
      "where s.class = 'Part' order by p.a");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().rows.size(), 3u);
  for (const auto& row : r.value().rows) {
    EXPECT_EQ(row[1].AsInt(), 3);
  }
}

TEST(CatalogQueryTest, OqlRangeFormAndAggregates) {
  auto db = MakePartsDb();
  Server server(db.get());
  Client client(&server);
  auto r = client.Query("select m.name from m in sys.metrics limit 5");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().rows.size(), 5u);
  // Grouped aggregation over catalog rows.
  auto agg = client.Query(
      "select m.kind, count(m) as n from sys.metrics m "
      "group by m.kind order by m.kind");
  ASSERT_TRUE(agg.ok()) << agg.status().ToString();
  ASSERT_GE(agg.value().rows.size(), 2u);  // counters and gauges at least
  for (const auto& row : agg.value().rows) {
    EXPECT_GT(row[1].AsInt(), 0) << row[0].ToString();
  }
}

TEST(CatalogQueryTest, SelfJoinSeesOneMaterialization) {
  auto db = MakePartsDb();
  Server server(db.get());
  Client client(&server);
  // Seed the recorder, then self-join. Both ranges reuse one
  // materialization, so the diagonal has exactly one row per entry.
  ASSERT_TRUE(client.Query("select p from Part p").ok());
  auto single = client.Query("select q.request_id from sys.requests q");
  ASSERT_TRUE(single.ok());
  const std::size_t n = single.value().rows.size();
  ASSERT_GE(n, 1u);
  auto diag = client.Query(
      "select a.request_id from sys.requests a, sys.requests b "
      "where a.request_id = b.request_id");
  ASSERT_TRUE(diag.ok()) << diag.status().ToString();
  // One more request (the single-range query) completed in between.
  EXPECT_EQ(diag.value().rows.size(), n + 1);
}

TEST(CatalogQueryTest, ProfileShowsCatalogMaterialization) {
  auto db = MakePartsDb();
  Server server(db.get());
  Client client(&server);
  Response r = client.Call(
      Request::Query("profile select m.name from sys.metrics m limit 3"));
  ASSERT_TRUE(r.ok()) << r.status.ToString();
  EXPECT_NE(r.text.find("catalog materialization of sys.metrics"),
            std::string::npos)
      << r.text;
}

// --------------------------------------------------------------- errors

TEST(CatalogQueryTest, UnknownCatalogClassIsNotFound) {
  auto db = MakePartsDb();
  Server server(db.get());
  Client client(&server);
  auto r = client.Query("select x from sys.nope x");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kNotFound);
  EXPECT_NE(r.status().message().find("no system catalog class"),
            std::string::npos)
      << r.status().ToString();
}

TEST(CatalogQueryTest, UnknownStructFieldIsNotFound) {
  auto db = MakePartsDb();
  Server server(db.get());
  Client client(&server);
  auto r = client.Query("select m.nom from sys.metrics m");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kNotFound);
  EXPECT_NE(r.status().message().find("struct has no field"),
            std::string::npos)
      << r.status().ToString();
}

TEST(CatalogQueryTest, EngineWithoutCatalogRejectsSysRanges) {
  // The parser reserves the namespace unconditionally; an engine with no
  // catalog attached (the bare library, importers) answers NotFound
  // rather than falling through to extent resolution.
  auto db = MakePartsDb();
  QueryEngine engine(db.get());
  auto r = engine.Execute("select m from sys.metrics m");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kNotFound);
  EXPECT_NE(r.status().message().find("no system catalog class"),
            std::string::npos);
}

// ------------------------------------------------- result-cache exclusion

TEST(CatalogCacheTest, CatalogQueriesBypassTheResultCache) {
  auto db = MakePartsDb();
  Server server(db.get());
  Client client(&server);
  const std::string q = "select s.rows from sys.storage s";

  Response first = client.Call(Request::Query(q));
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.cache_checked);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_EQ(first.result.rows[0][0].AsInt(), 0);

  // No write happened, yet the repeat is not served from cache — and it
  // sees the live state after a mutation, proving rows are never pinned.
  ASSERT_TRUE(client.CreateObject("Part", {{"a", Value::Int(1)}}).ok());
  Response second = client.Call(Request::Query(q));
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second.cache_checked);
  EXPECT_FALSE(second.cache_hit);
  EXPECT_EQ(second.result.rows[0][0].AsInt(), 1);

  // Ordinary queries on the same server still use the cache.
  ASSERT_TRUE(client.Call(Request::Query("select p from Part p")).ok());
  Response hit = client.Call(Request::Query("select p from Part p"));
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit.cache_checked);
  EXPECT_TRUE(hit.cache_hit);
}

TEST(CatalogCacheTest, SysCacheMatchesCacheControlFieldForField) {
  auto db = MakePartsDb();
  Server server(db.get());
  Client client(&server);
  // Warm both tiers so the counters are non-trivial.
  ASSERT_TRUE(client.Query("select p from Part p").ok());
  ASSERT_TRUE(client.Query("select p from Part p").ok());

  Response control = client.Call(Request::CacheControl(CacheOp::kStats));
  ASSERT_TRUE(control.ok());
  auto rows = client.Query("select c.field, c.value from sys.cache c");
  ASSERT_TRUE(rows.ok());

  // Identical row sets: both surfaces render QueryCacheStats::Fields().
  ASSERT_EQ(control.result.rows.size(), rows.value().rows.size());
  for (std::size_t i = 0; i < rows.value().rows.size(); ++i) {
    EXPECT_EQ(control.result.rows[i][0].AsString(),
              rows.value().rows[i][0].AsString());
    const std::string field = rows.value().rows[i][0].AsString();
    // Counters may move between the two requests (the sys.cache query
    // itself is planned, bumping plan_entries); the stable fields match
    // exactly.
    if (field == "enabled" || field == "result_entries" ||
        field == "schema_generation") {
      EXPECT_EQ(control.result.rows[i][1].AsString(),
                rows.value().rows[i][1].AsString())
          << field;
    }
  }
}

// ----------------------------------------------------------- extent heat

TEST(CatalogHeatTest, StorageDistinguishesHotFromColdClasses) {
  // ExtentHeat is process-global and cumulative, so this test owns two
  // class names no other test uses.
  auto db = std::make_unique<Database>();
  ASSERT_TRUE(
      db->DefineClass("CatHot", {}, {Attr("name", ValueType::kString)}).ok());
  ASSERT_TRUE(
      db->DefineClass("CatCold", {}, {Attr("name", ValueType::kString)})
          .ok());
  {
    Database::WriteGuard guard(*db);
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(
          db->CreateObject("CatHot", {{"name", Value::String("h")}}).ok());
      ASSERT_TRUE(
          db->CreateObject("CatCold", {{"name", Value::String("c")}}).ok());
    }
  }
  IndexManager indexes(db.get());
  ASSERT_TRUE(indexes.CreateIndex("CatHot", "name").ok());
  Server::Options options;
  options.indexes = &indexes;
  // Result caching off: every repeat must actually execute, so the scan
  // counters see the full skew rather than one warming scan.
  options.cache.enabled = false;
  Server server(db.get(), options);
  Client client(&server);

  // Skewed workload: scan the hot class repeatedly, touch the cold one
  // once; the indexed predicate also lands index hits on the hot class.
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(client.Query("select h from CatHot h").ok());
  }
  ASSERT_TRUE(
      client.Query("select h from CatHot h where h.name = 'h'").ok());
  ASSERT_TRUE(client.Query("select c from CatCold c").ok());

  auto r = client.Query(
      "select s.class, s.rows, s.indexes, s.scans, s.index_hits, "
      "s.rows_scanned from sys.storage s order by s.class");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().rows.size(), 2u);
  const auto& cold = r.value().rows[0];
  const auto& hot = r.value().rows[1];
  ASSERT_EQ(cold[0].AsString(), "CatCold");
  ASSERT_EQ(hot[0].AsString(), "CatHot");

  EXPECT_EQ(hot[1].AsInt(), 4);
  EXPECT_EQ(cold[1].AsInt(), 4);
  // Index coverage is reported per class.
  ASSERT_EQ(hot[2].AsList().size(), 1u);
  EXPECT_EQ(hot[2].AsList()[0].AsString(), "name");
  EXPECT_TRUE(cold[2].AsList().empty());
  // The skew is visible: 20 hot scans vs 1 cold, 80 vs 4 rows, and the
  // indexed predicate never scanned.
  EXPECT_GE(hot[3].AsInt(), 20);
  EXPECT_EQ(cold[3].AsInt(), 1);
  EXPECT_GE(hot[4].AsInt(), 1);
  EXPECT_EQ(cold[4].AsInt(), 0);
  EXPECT_GT(hot[5].AsInt(), cold[5].AsInt());

  // approx_bytes accounts for the attribute payloads.
  auto bytes = client.Query(
      "select s.approx_bytes from sys.storage s where s.class = 'CatHot'");
  ASSERT_TRUE(bytes.ok());
  EXPECT_GT(bytes.value().rows[0][0].AsInt(), 0);
}

// --------------------------------------------------------------- stress

// Catalog reads race a churning writer and live DDL. The materialized
// rows must be internally consistent — every struct carries its full
// field list, strings are intact, per-query row sets are stable — and
// nothing may crash or (under TSan) race.
TEST(CatalogStressTest, ReadersRaceWriterAndDdlWithoutTearing) {
  auto db = MakePartsDb();
  Server::Options options;
  options.worker_threads = 4;
  options.queue_capacity = 4096;
  Server server(db.get(), options);

  std::atomic<bool> done{false};
  std::atomic<int> catalog_reads{0};

  std::thread writer([&] {
    Client client(&server);
    for (int i = 0; i < 300; ++i) {
      ASSERT_TRUE(
          client
              .CreateObject("Part", {{"name", Value::String(
                                                  "p" + std::to_string(i))},
                                     {"a", Value::Int(i)}})
              .ok());
    }
    done.store(true, std::memory_order_release);
  });

  std::thread ddl([&] {
    Client client(&server);
    int n = 0;
    while (!done.load(std::memory_order_acquire)) {
      const std::string name = "CatChurn" + std::to_string(n++);
      ASSERT_TRUE(client
                      .Call(Request::Custom([name](Database& d) {
                        return d
                            .DefineClass(name, {},
                                         {Attr("x", ValueType::kInt)})
                            .status();
                      }))
                      .ok());
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      Client client(&server);
      const char* queries[] = {
          "select m.name, m.kind from sys.metrics m",
          "select q.request_id, q.type, q.detail from sys.requests q",
          "select s.class, s.rows, s.scans from sys.storage s",
      };
      while (!done.load(std::memory_order_acquire)) {
        auto r = client.Query(queries[t % 3]);
        ASSERT_TRUE(r.ok()) << r.status().ToString();
        for (const auto& row : r.value().rows) {
          // Never torn: the projected fields exist and the leading
          // string cell is non-empty for every one of these classes.
          ASSERT_GE(row.size(), 2u);
          if (row[0].type() == ValueType::kString) {
            ASSERT_FALSE(row[0].AsString().empty());
          }
        }
        // Joining the schema listing against storage rows mid-DDL: every
        // class surfaced by one range has a partner in the other (both
        // sides come from the same materialization cut).
        auto join = client.Query(
            "select c.name from sys.classes c, sys.storage s "
            "where s.class = c.name");
        ASSERT_TRUE(join.ok()) << join.status().ToString();
        auto classes = client.Query("select c.name from sys.classes c");
        ASSERT_TRUE(classes.ok());
        // The join ran first; DDL can only have added classes since.
        ASSERT_LE(join.value().rows.size(), classes.value().rows.size());
        catalog_reads.fetch_add(1);
      }
    });
  }

  writer.join();
  ddl.join();
  for (std::thread& t : readers) t.join();
  EXPECT_GT(catalog_reads.load(), 0);

  // Quiescent cross-check: sys.storage agrees with the database.
  Client client(&server);
  auto r = client.Query(
      "select s.rows from sys.storage s where s.class = 'Part'");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().rows[0][0].AsInt(), 300);
}

}  // namespace
