#ifndef PROMETHEUS_SERVER_SERVER_H_
#define PROMETHEUS_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>

#include "cache/query_cache.h"
#include "core/database.h"
#include "event/event_bus.h"
#include "index/index_manager.h"
#include "obs/flight_recorder.h"
#include "obs/slow_query_log.h"
#include "query/query_engine.h"
#include "server/executor.h"
#include "server/request.h"
#include "server/session.h"
#include "storage/recovery.h"

namespace prometheus::server {

/// The query-serving subsystem: turns an embedded `Database` into a
/// concurrently usable service (the stand-in for the thesis' omitted
/// Prometheus service layer, §6.1.7).
///
/// Concurrency protocol (MVCC snapshot reads; see `Database`):
///  - **kQuery** requests pin an immutable `DbSnapshot` at dequeue
///    (`Database::AcquireSnapshot`) and execute against it with **no**
///    shared lock — any number run in parallel, each sees one consistent
///    cut for its whole evaluation (the paper's single-user query
///    semantics per request), and none ever blocks behind a writer. A
///    writer stalled in journal_sync degrades write latency only; the
///    read fleet keeps serving the last published snapshot.
///  - **kMutation** requests execute under `Database::WriteGuard` —
///    exclusive among writers, so the journal (when a `DurableStore`
///    wraps the database) observes a serial mutation history. Commit
///    publishes the next snapshot before the epoch becomes observable.
///
/// Overload protection: a bounded priority-tiered work queue with adaptive
/// admission control (see executor.h / admission.h), per-request deadlines
/// enforced at admission, at dequeue and cooperatively inside query
/// execution (`ResponseCode::kTimedOut`), and graceful drain-on-shutdown.
/// Every admitted request resolves its future exactly once.
///
/// Graceful degradation: when an attached `DurableStore` reports a sticky
/// durability failure, the server enters **degraded read-only mode** —
/// queries keep executing, mutations fail fast with
/// `ResponseCode::kUnavailable` (they never reach the write path), and a
/// `Request::Checkpoint()` that succeeds re-arms the store and lifts the
/// mode. `Request::Health()` reports the state without taking any lock.
class Server {
 public:
  struct Options {
    /// Worker threads executing requests.
    int worker_threads = 4;
    /// Bounded queue depth; submissions beyond it are rejected.
    std::size_t queue_capacity = 256;
    /// Optional index layer consulted by query execution. Must outlive the
    /// server. Index maintenance happens via the database's event bus on
    /// the mutating worker, i.e. under the write guard.
    IndexManager* indexes = nullptr;
    /// Queries slower than this are recorded in the slow-query log with
    /// their plan (or full trace when profiled). Negative = disabled (the
    /// default): the fast path then never reads the clock for it.
    double slow_query_micros = -1;
    /// Writer-starvation watchdog: a mutation whose exclusive-guard
    /// acquisition wait reaches this many microseconds leaves a
    /// `[writer-wait]` entry in the slow-query log (readers don't hold the
    /// guard under MVCC, so a long wait means a stalled *writer* ahead of
    /// this one). The `guard_writer_longest_wait_micros` gauge tracks the
    /// high-water mark regardless. Negative = disabled (the default).
    double writer_wait_warn_micros = -1;
    /// Slow-query log ring capacity.
    std::size_t slow_query_capacity = 128;
    /// Flight-recorder ring capacity: the last N completed request traces
    /// (`GET /debug/requests`, shell `.recent`). 0 disables recording.
    std::size_t flight_recorder_capacity = 128;
    /// Optional durability manager wrapping `db`. Must outlive the server
    /// and must be the store whose `db()` the server serves. Enables
    /// degraded read-only mode and the kCheckpoint mutation.
    storage::DurableStore* store = nullptr;
    /// Adaptive admission policy (watermarks, wait prediction).
    AdmissionOptions admission;
    /// Permanent read-only role (a replication follower): every mutation —
    /// including kCheckpoint — answers `kUnavailable` without reaching the
    /// write path. Unlike degraded mode there is no re-arm; only
    /// `Follower::Promote()` (which builds a fresh writable server) exits
    /// the role.
    bool read_only = false;
    /// Optional replication status probe rendered into kHealth/ToJson
    /// (lag, connection state). Must be lock-light and thread-safe; on a
    /// follower the `Follower` installs it.
    std::function<std::string()> replication_probe;
    /// Optional structured companion to `replication_probe`: the rows the
    /// `sys.replication` catalog class materializes (one struct Value per
    /// replication link). Same thread-safety contract; on a follower the
    /// `Follower` installs it. A leader (or standalone server) without one
    /// serves an empty `sys.replication` extent.
    std::function<std::vector<Value>()> replication_rows;
    /// Query-cache configuration (plan + result tiers), on by default.
    /// Result-cache hits resolve at Enqueue on the submitting thread —
    /// they skip the queue, the workers and the epoch guard entirely, and
    /// stay correct through lock-free epoch validation (any committed
    /// write invalidates). Hits keep serving in degraded read-only mode
    /// and on a read-only follower. Set `cache.enabled = false` for an
    /// uncached server (benchmark baselines).
    cache::QueryCacheConfig cache;
  };

  /// `db` must outlive the server. While the server runs, all access to
  /// `db` must flow through sessions — direct reads or writes from other
  /// threads race the workers (the epoch guard's debug assertions catch
  /// exactly this). Single-threaded setup before construction and after
  /// `Shutdown` needs no locking.
  Server(Database* db, Options options);
  explicit Server(Database* db) : Server(db, Options{}) {}

  /// Shuts down (draining) if the caller did not.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Opens a logical client session (shorthand for `sessions().Open()`).
  std::shared_ptr<Session> Connect() { return sessions_.Open(); }

  SessionManager& sessions() { return sessions_; }

  /// Stops admission, closes every session and joins the workers. With
  /// `drain` queued requests execute first (expired ones still shed as
  /// kTimedOut); without, each queued request resolves with
  /// `ResponseCode::kShutdown`. Idempotent.
  void Shutdown(bool drain = true);

  bool stopped() const { return stopped_.load(std::memory_order_acquire); }

  /// True while the attached store's durability is broken and mutations
  /// are refused (queries still serve).
  bool degraded() const { return degraded_.load(std::memory_order_acquire); }

  struct Stats {
    std::uint64_t accepted = 0;     ///< admitted to the queue
    std::uint64_t rejected = 0;     ///< refused by admission / shutdown
    std::uint64_t queries = 0;      ///< kQuery requests executed
    std::uint64_t mutations = 0;    ///< kMutation requests executed
    std::uint64_t errors = 0;       ///< executed with a non-OK status
    std::uint64_t timed_out = 0;    ///< resolved kTimedOut (any stage)
    std::uint64_t shed = 0;         ///< evicted by priority under overload
    std::uint64_t unavailable = 0;  ///< mutations refused while degraded
  };
  Stats stats() const;

  /// Point-in-time overload/degradation summary — what kHealth renders.
  /// Lock-free with respect to the database: never queues behind a writer.
  struct Health {
    std::uint64_t server_epoch = 0;  ///< see Server::server_epoch()
    bool degraded = false;
    bool read_only = false;       ///< permanent follower role
    std::string replication;      ///< probe's JSON object ("" when none)
    Status store_status;          ///< last observed store status
    std::size_t queue_depth = 0;
    std::size_t queue_capacity = 0;
    int workers = 0;
    double estimated_wait_micros = 0;  ///< admission's queue-wait estimate
    Stats stats;
    std::size_t sessions_active = 0;

    std::string ToJson() const;
  };
  Health health() const;

  /// The two-tier query cache (see cache/query_cache.h). Thread-safe;
  /// `query_cache().StatsJson()` / `Clear()` are what kCacheControl runs.
  cache::QueryCache& query_cache() { return query_cache_; }

  /// The virtual `sys.*` system catalog this server registered over its
  /// own internals (see query/system_catalog.h). Immutable after
  /// construction; the shell's `.sys` renders its listing.
  const pool::SystemCatalog& system_catalog() const { return catalog_; }

  /// Queries that exceeded Options::slow_query_micros (empty when disabled).
  const obs::SlowQueryLog& slow_query_log() const { return slow_log_; }

  /// The last N completed request traces (see Options).
  const obs::FlightRecorder& flight_recorder() const {
    return flight_recorder_;
  }
  /// Mutable access for transport layers that record non-worker events —
  /// the HTTP plane records traced GET/aux requests (e.g. a follower's
  /// /repl/* fetches) and a follower records its own leader fetches, so
  /// one trace id stitches a request's path across the fleet.
  obs::FlightRecorder& flight_recorder() { return flight_recorder_; }

  /// Wall-clock microseconds at server construction — a value that is
  /// monotonic *across restarts*, unlike the in-memory counters it
  /// accompanies. A remote scraper seeing counters go backwards while
  /// `server_epoch` held steady is looking at a counter reset; a changed
  /// epoch means a different server instance.
  std::uint64_t server_epoch() const { return server_epoch_; }

  Database& db() { return *db_; }
  int worker_threads() const { return executor_.threads(); }

 private:
  friend class Session;

  /// Session-side entry: assigns a RequestId, enqueues, and guarantees the
  /// returned future resolves with exactly one Response on every path.
  std::future<Response> Enqueue(Request req);

  /// Runs on a worker thread. `queue_wait_micros` is the time the request
  /// spent queued (admission to worker pickup), recorded in the flight
  /// recorder alongside the execution outcome.
  Response Execute(RequestId id, const Request& req, double queue_wait_micros);
  /// `queue_wait_micros` rides along so slow-query-log entries carry the
  /// full wait breakdown, not just execution time.
  Response ExecuteQuery(RequestId id, const Request& req,
                        double queue_wait_micros);
  Response ExecuteMutation(RequestId id, const Request& req);
  Response ExecuteStats(RequestId id, const Request& req);
  Response ExecuteHealth(RequestId id, const Request& req);
  Response ExecuteCacheControl(RequestId id, const Request& req);

  /// Enqueue-side fast path: answers a kQuery from the result cache when a
  /// valid entry exists. Returns true with `*out` resolved on a hit.
  bool TryServeFromCache(RequestId id, const Request& req, Response* out);

  /// Re-reads the store's sticky status (caller must hold the write guard)
  /// and enters degraded mode when it went bad. Exit happens only in the
  /// kCheckpoint success path.
  void ObserveStoreStatus();

  /// Records a disposition (executed or shed) in the flight recorder.
  void RecordFlight(RequestId id, const Request& req, const Response& resp,
                    double queue_wait_micros, double total_micros);

  /// Registers every `sys.*` class over this server's internals. Runs in
  /// the constructor (single-threaded); the providers themselves are
  /// called from query workers and must stay lock-light.
  void RegisterSystemCatalog();

  Database* db_;
  cache::QueryCache query_cache_;
  pool::SystemCatalog catalog_;
  pool::QueryEngine engine_;
  obs::SlowQueryLog slow_log_;
  obs::FlightRecorder flight_recorder_;
  ThreadPoolExecutor executor_;
  SessionManager sessions_;
  storage::DurableStore* store_;
  IndexManager* indexes_;
  const bool read_only_;
  const double writer_wait_warn_micros_;
  const std::function<std::string()> replication_probe_;
  const std::function<std::vector<Value>()> replication_rows_;
  const std::uint64_t server_epoch_;
  /// DDL listener bumping the plan cache's schema generation. Subscribed
  /// during (single-threaded) construction, unsubscribed in the destructor
  /// after Shutdown joined the workers — the bus itself is not thread-safe
  /// for registration, but the listener body is one relaxed atomic add, so
  /// publishing under the write guard is fine.
  ListenerId ddl_listener_ = 0;
  std::atomic<RequestId> next_request_id_{1};
  std::atomic<bool> stopped_{false};
  std::atomic<bool> degraded_{false};
  /// Cache of the store's status as last observed under the write guard.
  /// kHealth reads this copy — `DurableStore::status()` itself is not safe
  /// to call concurrently with a checkpoint swapping the journal.
  mutable std::mutex store_status_mu_;
  Status store_status_;
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> queries_{0};
  std::atomic<std::uint64_t> mutations_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> timed_out_{0};
  std::atomic<std::uint64_t> unavailable_{0};
};

}  // namespace prometheus::server

#endif  // PROMETHEUS_SERVER_SERVER_H_
