#include <gtest/gtest.h>

#include "rules/pcl.h"
#include "rules/rule_engine.h"

namespace prometheus {
namespace {

AttributeDef Attr(std::string name, ValueType type) {
  AttributeDef a;
  a.name = std::move(name);
  a.type = type;
  return a;
}

class RuleFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db.DefineClass("Taxon", {},
                               {Attr("name", ValueType::kString),
                                Attr("rank", ValueType::kString),
                                Attr("year", ValueType::kInt)})
                    .ok());
    ASSERT_TRUE(db.DefineRelationship("placed_in", "Taxon", "Taxon", {},
                                      {Attr("note", ValueType::kString)})
                    .ok());
    rules = std::make_unique<RuleEngine>(&db);
  }

  Oid NewTaxon(const std::string& name, const std::string& rank = "Genus",
               std::int64_t year = 1753) {
    auto r = db.CreateObject("Taxon", {{"name", Value::String(name)},
                                       {"rank", Value::String(rank)},
                                       {"year", Value::Int(year)}});
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.value_or(kNullOid);
  }

  Database db;
  std::unique_ptr<RuleEngine> rules;
};

TEST_F(RuleFixture, InvariantVetoesBadCreation) {
  ASSERT_TRUE(
      rules->AddInvariant("year_positive", "Taxon", "self.year > 0",
                          "publication year must be positive")
          .ok());
  EXPECT_TRUE(db.CreateObject("Taxon", {{"year", Value::Int(1753)}}).ok());
  auto bad = db.CreateObject("Taxon", {{"year", Value::Int(-5)}});
  EXPECT_EQ(bad.status().code(), Status::Code::kConstraintViolation);
  // The implicit micro-transaction undid the creation.
  EXPECT_EQ(db.Extent("Taxon").size(), 1u);
}

TEST_F(RuleFixture, InvariantVetoesBadUpdate) {
  Oid t = NewTaxon("Apium");
  ASSERT_TRUE(
      rules->AddInvariant("year_positive", "Taxon", "self.year > 0",
                          "publication year must be positive")
          .ok());
  EXPECT_EQ(db.SetAttribute(t, "year", Value::Int(0)).code(),
            Status::Code::kConstraintViolation);
  EXPECT_TRUE(db.GetAttribute(t, "year").value().Equals(Value::Int(1753)));
  EXPECT_TRUE(db.SetAttribute(t, "year", Value::Int(1800)).ok());
}

TEST_F(RuleFixture, ConditionOfApplicability) {
  // Genus-level names must be capitalised; the rule does not apply to
  // other ranks (thesis 5.2.1.2: condition of applicability).
  RuleSpec spec;
  spec.name = "genus_capitalised";
  spec.events = {{EventKind::kAfterCreateObject, "Taxon"},
                 {EventKind::kAfterSetAttribute, "Taxon"}};
  spec.applicability = "self.rank = 'Genus'";
  spec.condition = "self.name != lower(self.name)";
  spec.message = "genus names start with a capital";
  ASSERT_TRUE(rules->AddRule(spec).ok());
  EXPECT_TRUE(db.CreateObject("Taxon", {{"name", Value::String("apium")},
                                        {"rank", Value::String("Species")}})
                  .ok());
  EXPECT_EQ(db.CreateObject("Taxon", {{"name", Value::String("apium")},
                                      {"rank", Value::String("Genus")}})
                .status()
                .code(),
            Status::Code::kConstraintViolation);
  EXPECT_TRUE(db.CreateObject("Taxon", {{"name", Value::String("Apium")},
                                        {"rank", Value::String("Genus")}})
                  .ok());
}

TEST_F(RuleFixture, WarnRulesRecordWithoutBlocking) {
  ASSERT_TRUE(rules
                  ->AddInvariant("soft", "Taxon", "self.year >= 1753",
                                 "pre-Linnaean year", RuleTiming::kImmediate,
                                 RuleAction::kWarn)
                  .ok());
  Oid t = NewTaxon("Old", "Genus", 1700);
  EXPECT_NE(db.GetObject(t), nullptr);
  ASSERT_EQ(rules->warnings().size(), 1u);
  EXPECT_EQ(rules->warnings()[0].rule_name, "soft");
  EXPECT_EQ(rules->warnings()[0].subject, t);
}

TEST_F(RuleFixture, InteractiveRuleConsultsHandler) {
  ASSERT_TRUE(rules
                  ->AddInvariant("ask", "Taxon", "self.year >= 1753",
                                 "pre-Linnaean year", RuleTiming::kImmediate,
                                 RuleAction::kInteractive)
                  .ok());
  // Without a handler interactive rules abort.
  EXPECT_EQ(db.CreateObject("Taxon", {{"year", Value::Int(1700)}})
                .status()
                .code(),
            Status::Code::kConstraintViolation);
  // Handler allows: operation proceeds, violation logged as a warning.
  rules->set_interactive_handler([](const RuleViolation&) { return true; });
  EXPECT_TRUE(db.CreateObject("Taxon", {{"year", Value::Int(1700)}}).ok());
  EXPECT_EQ(rules->warnings().size(), 1u);
  // Handler denies: vetoed.
  rules->set_interactive_handler([](const RuleViolation&) { return false; });
  EXPECT_FALSE(db.CreateObject("Taxon", {{"year", Value::Int(1700)}}).ok());
}

TEST_F(RuleFixture, DeletePrecondition) {
  ASSERT_TRUE(rules
                  ->AddDeletePrecondition(
                      "no_children", "Taxon",
                      "count(children(self, 'placed_in')) = 0",
                      "cannot delete a taxon that still classifies others")
                  .ok());
  Oid parent = NewTaxon("Apium");
  Oid child = NewTaxon("graveolens", "Species");
  ASSERT_TRUE(db.CreateLink("placed_in", parent, child).ok());
  EXPECT_EQ(db.DeleteObject(parent).code(),
            Status::Code::kConstraintViolation);
  EXPECT_NE(db.GetObject(parent), nullptr);
  EXPECT_TRUE(db.DeleteObject(child).ok());
  EXPECT_TRUE(db.DeleteObject(parent).ok());
}

TEST_F(RuleFixture, RelationshipRule) {
  ASSERT_TRUE(rules
                  ->AddRelationshipRule(
                      "no_self_placement", "placed_in",
                      "source != target",
                      "a taxon cannot be placed in itself")
                  .ok());
  Oid a = NewTaxon("A");
  Oid b = NewTaxon("B");
  EXPECT_TRUE(db.CreateLink("placed_in", a, b).ok());
  EXPECT_EQ(db.CreateLink("placed_in", a, a).status().code(),
            Status::Code::kConstraintViolation);
  EXPECT_EQ(db.link_count(), 1u);
}

TEST_F(RuleFixture, DeferredRuleRunsAtCommit) {
  ASSERT_TRUE(rules
                  ->AddInvariant("named", "Taxon", "self.name != ''",
                                 "taxa must eventually be named",
                                 RuleTiming::kDeferred)
                  .ok());
  // Inside a transaction the violation is tolerated until commit.
  ASSERT_TRUE(db.Begin().ok());
  Oid t = db.CreateObject("Taxon").value();  // name is null -> "" fails
  ASSERT_TRUE(db.SetAttribute(t, "name", Value::String("Apium")).ok());
  EXPECT_TRUE(db.Commit().ok());
  EXPECT_NE(db.GetObject(t), nullptr);
}

TEST_F(RuleFixture, DeferredRuleAbortsCommitWhenStillViolated) {
  ASSERT_TRUE(rules
                  ->AddInvariant("named", "Taxon",
                                 "self.name != null and self.name != ''",
                                 "taxa must eventually be named",
                                 RuleTiming::kDeferred)
                  .ok());
  ASSERT_TRUE(db.Begin().ok());
  Oid t = db.CreateObject("Taxon").value();
  Status st = db.Commit();
  EXPECT_EQ(st.code(), Status::Code::kAborted);
  EXPECT_EQ(db.GetObject(t), nullptr);  // transaction rolled back
  EXPECT_FALSE(db.in_transaction());
}

TEST_F(RuleFixture, DeferredRuleSkipsSubjectsDeletedInTransaction) {
  ASSERT_TRUE(rules
                  ->AddInvariant("named", "Taxon",
                                 "self.name != null and self.name != ''",
                                 "must be named", RuleTiming::kDeferred)
                  .ok());
  ASSERT_TRUE(db.Begin().ok());
  Oid t = db.CreateObject("Taxon").value();
  ASSERT_TRUE(db.DeleteObject(t).ok());
  EXPECT_TRUE(db.Commit().ok());  // the dead subject is not re-checked
}

TEST_F(RuleFixture, RulesIgnoreRollbackCompensation) {
  int violations_before = 0;
  ASSERT_TRUE(
      rules->AddInvariant("pos", "Taxon", "self.year > 0", "positive").ok());
  Oid t = NewTaxon("A", "Genus", 10);
  ASSERT_TRUE(db.Begin().ok());
  ASSERT_TRUE(db.SetAttribute(t, "year", Value::Int(20)).ok());
  violations_before = static_cast<int>(rules->violations());
  ASSERT_TRUE(db.Abort().ok());
  // The compensating AfterSetAttribute did not re-run the rule.
  EXPECT_EQ(static_cast<int>(rules->violations()), violations_before);
}

TEST_F(RuleFixture, RuleManagement) {
  auto id = rules->AddInvariant("r", "Taxon", "self.year > 0", "m");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(rules->rule_count(), 1u);
  ASSERT_TRUE(rules->SetRuleEnabled(id.value(), false).ok());
  EXPECT_TRUE(db.CreateObject("Taxon", {{"year", Value::Int(-1)}}).ok());
  ASSERT_TRUE(rules->SetRuleEnabled(id.value(), true).ok());
  EXPECT_FALSE(db.CreateObject("Taxon", {{"year", Value::Int(-1)}}).ok());
  EXPECT_TRUE(rules->RemoveRule(id.value()).ok());
  EXPECT_TRUE(db.CreateObject("Taxon", {{"year", Value::Int(-1)}}).ok());
  EXPECT_EQ(rules->RemoveRule(id.value()).code(), Status::Code::kNotFound);
}

TEST_F(RuleFixture, BadRuleSpecsRejectedAtInstallTime) {
  RuleSpec no_events;
  no_events.name = "x";
  no_events.condition = "true";
  EXPECT_EQ(rules->AddRule(no_events).status().code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(rules->AddInvariant("bad", "Taxon", "self.year >", "m")
                .status()
                .code(),
            Status::Code::kParseError);
  RuleSpec no_cond;
  no_cond.name = "y";
  no_cond.events = {{EventKind::kAfterCreateObject, "Taxon"}};
  EXPECT_EQ(rules->AddRule(no_cond).status().code(),
            Status::Code::kInvalidArgument);
}

TEST_F(RuleFixture, ConditionEvaluationErrorFailsClosed) {
  ASSERT_TRUE(
      rules->AddInvariant("broken", "Taxon", "self.no_such_attr = 1", "m")
          .ok());
  auto r = db.CreateObject("Taxon");
  EXPECT_EQ(r.status().code(), Status::Code::kConstraintViolation);
}

TEST_F(RuleFixture, CompositeEventFiresOnlyWhenAllSelectorsMatch) {
  // Composite rule (5.2.1.1): a taxon creation AND a placement link in the
  // same transaction; the condition then requires a positive year.
  RuleSpec spec;
  spec.name = "created_and_placed";
  spec.composite = true;
  spec.events = {{EventKind::kAfterCreateObject, "Taxon"},
                 {EventKind::kAfterCreateLink, "placed_in"}};
  spec.condition = "false";  // always violated when it fires
  spec.message = "composite fired";
  ASSERT_TRUE(rules->AddRule(spec).ok());

  // Only one selector matches: the rule never fires.
  ASSERT_TRUE(db.Begin().ok());
  NewTaxon("alone");
  EXPECT_TRUE(db.Commit().ok());

  // Both selectors match inside one transaction: the commit aborts.
  Oid a = NewTaxon("A");
  Oid b = NewTaxon("B");
  ASSERT_TRUE(db.Begin().ok());
  NewTaxon("fresh");
  ASSERT_TRUE(db.CreateLink("placed_in", a, b).ok());
  Status st = db.Commit();
  EXPECT_EQ(st.code(), Status::Code::kAborted);
  EXPECT_EQ(db.Neighbors(a, "placed_in").size(), 0u);
}

TEST_F(RuleFixture, CompositeStateResetsBetweenTransactions) {
  RuleSpec spec;
  spec.name = "pair";
  spec.composite = true;
  spec.events = {{EventKind::kAfterCreateObject, "Taxon"},
                 {EventKind::kAfterCreateLink, "placed_in"}};
  spec.condition = "false";
  spec.message = "fired";
  ASSERT_TRUE(rules->AddRule(spec).ok());
  Oid a = NewTaxon("A");
  Oid b = NewTaxon("B");
  // First txn: only a creation. Second txn: only a link. Neither commits
  // the conjunction, so neither aborts.
  ASSERT_TRUE(db.Begin().ok());
  NewTaxon("x");
  EXPECT_TRUE(db.Commit().ok());
  ASSERT_TRUE(db.Begin().ok());
  ASSERT_TRUE(db.CreateLink("placed_in", a, b).ok());
  EXPECT_TRUE(db.Commit().ok());
}

TEST_F(RuleFixture, CompositeConditionSeesLastEventBindings) {
  // The condition is evaluated against the bindings of the last matching
  // event — here the link, so `source`/`target` are available.
  RuleSpec spec;
  spec.name = "no_self_after_create";
  spec.composite = true;
  spec.events = {{EventKind::kAfterCreateObject, "Taxon"},
                 {EventKind::kAfterCreateLink, "placed_in"}};
  spec.condition = "source != target";
  spec.message = "self placement in creating transaction";
  ASSERT_TRUE(rules->AddRule(spec).ok());
  ASSERT_TRUE(db.Begin().ok());
  Oid t = NewTaxon("T");
  ASSERT_TRUE(db.CreateLink("placed_in", t, t).ok());
  EXPECT_EQ(db.Commit().code(), Status::Code::kAborted);
  ASSERT_TRUE(db.Begin().ok());
  Oid u = NewTaxon("U");
  Oid v = NewTaxon("V");
  ASSERT_TRUE(db.CreateLink("placed_in", u, v).ok());
  EXPECT_TRUE(db.Commit().ok());
}

// ---------------------------------------------------------------------- PCL

TEST_F(RuleFixture, PclInvariant) {
  auto ids = InstallPcl(rules.get(),
                        "context Taxon inv year_pos: self.year > 0");
  ASSERT_TRUE(ids.ok()) << ids.status().ToString();
  EXPECT_FALSE(db.CreateObject("Taxon", {{"year", Value::Int(-1)}}).ok());
  EXPECT_TRUE(db.CreateObject("Taxon", {{"year", Value::Int(1)}}).ok());
}

TEST_F(RuleFixture, PclApplicabilitySugar) {
  auto ids = InstallPcl(
      rules.get(),
      "context Taxon inv genus_cap: "
      "if self.rank = 'Genus' then self.name != lower(self.name)");
  ASSERT_TRUE(ids.ok()) << ids.status().ToString();
  EXPECT_TRUE(db.CreateObject("Taxon", {{"name", Value::String("apium")},
                                        {"rank", Value::String("Species")}})
                  .ok());
  EXPECT_FALSE(db.CreateObject("Taxon", {{"name", Value::String("apium")},
                                         {"rank", Value::String("Genus")}})
                   .ok());
}

TEST_F(RuleFixture, PclRelationshipInvariant) {
  auto ids = InstallPcl(rules.get(),
                        "context placed_in relinv no_self: source != target");
  ASSERT_TRUE(ids.ok()) << ids.status().ToString();
  Oid a = NewTaxon("A");
  Oid b = NewTaxon("B");
  EXPECT_TRUE(db.CreateLink("placed_in", a, b).ok());
  EXPECT_FALSE(db.CreateLink("placed_in", b, b).ok());
}

TEST_F(RuleFixture, PclPrecondition) {
  auto ids = InstallPcl(
      rules.get(),
      "context Taxon::delete pre leafless: "
      "count(children(self, 'placed_in')) = 0");
  ASSERT_TRUE(ids.ok()) << ids.status().ToString();
  Oid parent = NewTaxon("P");
  Oid child = NewTaxon("C");
  ASSERT_TRUE(db.CreateLink("placed_in", parent, child).ok());
  EXPECT_FALSE(db.DeleteObject(parent).ok());
  EXPECT_TRUE(db.DeleteObject(child).ok());
  EXPECT_TRUE(db.DeleteObject(parent).ok());
}

TEST_F(RuleFixture, PclRelationshipPrecondition) {
  // pre/post apply to relationship operations too: the compiler selects
  // the link events when the context names a relationship class.
  auto ids = InstallPcl(
      rules.get(),
      "context placed_in::create pre no_self: source != target");
  ASSERT_TRUE(ids.ok()) << ids.status().ToString();
  Oid a = NewTaxon("A");
  Oid b = NewTaxon("B");
  EXPECT_TRUE(db.CreateLink("placed_in", a, b).ok());
  EXPECT_EQ(db.CreateLink("placed_in", a, a).status().code(),
            Status::Code::kConstraintViolation);
  EXPECT_EQ(db.link_count(), 1u);  // vetoed before creation
}

TEST_F(RuleFixture, PclModifiersAndProgram) {
  auto specs = CompilePclProgram(
      "context Taxon warn inv soft: self.year >= 1753;"
      "context Taxon deferred inv named: self.name != null");
  ASSERT_TRUE(specs.ok()) << specs.status().ToString();
  ASSERT_EQ(specs.value().size(), 2u);
  EXPECT_EQ(specs.value()[0].action, RuleAction::kWarn);
  EXPECT_EQ(specs.value()[0].name, "soft");
  EXPECT_EQ(specs.value()[1].timing, RuleTiming::kDeferred);
}

TEST_F(RuleFixture, PclSyntaxErrors) {
  EXPECT_EQ(CompilePcl("Taxon inv x: true").status().code(),
            Status::Code::kParseError);
  EXPECT_EQ(CompilePcl("context Taxon blah x: true").status().code(),
            Status::Code::kParseError);
  EXPECT_EQ(CompilePcl("context Taxon inv x").status().code(),
            Status::Code::kParseError);
  EXPECT_EQ(CompilePcl("context Taxon pre x: true").status().code(),
            Status::Code::kParseError);
  EXPECT_EQ(CompilePcl("context Taxon::explode pre x: true").status().code(),
            Status::Code::kParseError);
  EXPECT_EQ(CompilePcl("context Taxon inv x:").status().code(),
            Status::Code::kParseError);
}

TEST_F(RuleFixture, PclDefaultRuleName) {
  auto spec = CompilePcl("context Taxon inv: self.year > 0");
  ASSERT_TRUE(spec.ok());
  // With no explicit name, a default is derived. (The trailing word before
  // ':' is absent, so the kind-based default applies.)
  EXPECT_FALSE(spec.value().name.empty());
}

}  // namespace
}  // namespace prometheus
