#ifndef PROMETHEUS_STORAGE_FAULT_H_
#define PROMETHEUS_STORAGE_FAULT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace prometheus::storage {

/// A sequential sink for durable bytes. Every byte the journal and the
/// snapshot writers persist goes through this interface, so tests can
/// interpose fault injection (torn writes, failed fsyncs) exactly where a
/// real crash would bite — the style of LevelDB's FaultInjectionTestEnv.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  /// Appends `data` at the end of the file.
  virtual Status Append(std::string_view data) = 0;

  /// Pushes buffered bytes to the OS (no durability guarantee).
  virtual Status Flush() = 0;

  /// Flushes and fsyncs: on return the bytes survive a power loss.
  virtual Status Sync() = 0;

  /// Closes the file; further writes are invalid. Idempotent.
  virtual Status Close() = 0;
};

/// The small slice of a filesystem the durability layer needs. The default
/// implementation is POSIX; `FaultInjectionEnv` wraps any `Env` and injects
/// crashes. All paths are plain file paths; `ListDir` returns entry names
/// (not full paths).
class Env {
 public:
  virtual ~Env() = default;

  /// Opens `path` for writing — truncating when `truncate`, appending at
  /// the end otherwise (creating the file either way).
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) = 0;

  virtual bool FileExists(const std::string& path) = 0;
  virtual Result<std::uint64_t> FileSize(const std::string& path) = 0;
  virtual Status RenameFile(const std::string& from, const std::string& to) = 0;
  virtual Status RemoveFile(const std::string& path) = 0;
  virtual Status TruncateFile(const std::string& path, std::uint64_t size) = 0;
  /// Creates `path` as a directory; succeeds when it already exists.
  virtual Status CreateDir(const std::string& path) = 0;
  virtual Result<std::vector<std::string>> ListDir(const std::string& path) = 0;
  /// fsyncs the directory itself so renames/creations inside it are durable.
  virtual Status SyncDir(const std::string& path) = 0;

  /// The process-wide POSIX environment.
  static Env* Default();
};

/// What to break, and when. All counters are cumulative across every file
/// opened through the owning `FaultInjectionEnv`.
struct FaultPolicy {
  /// Crash after this many successful `Append` calls (-1 = never). The
  /// failing append itself writes nothing (or a torn prefix, see below).
  std::int64_t fail_after_appends = -1;
  /// Crash once this many bytes have been appended (-1 = never).
  std::int64_t fail_after_bytes = -1;
  /// When the crash lands on an append, persist the first half of that
  /// append's payload before failing — a torn write.
  bool torn_writes = true;
  /// Every Sync()/SyncDir() fails (without crashing the env).
  bool fail_sync = false;
  /// Every RenameFile fails (without crashing the env).
  bool fail_rename = false;
};

/// Env decorator that simulates a crash: once the configured fault fires,
/// the env is "dead" — every subsequent write-side operation fails and
/// persists nothing, exactly as if the process had been killed. Recovery is
/// then exercised by reopening the same directory through a healthy env.
class FaultInjectionEnv : public Env {
 public:
  /// Wraps `base` (default: `Env::Default()`); `base` must outlive this.
  explicit FaultInjectionEnv(Env* base = nullptr);

  /// Installs `policy` and revives the env (clears the crashed flag and the
  /// append/byte counters) so one env can drive a whole fault matrix.
  void SetPolicy(FaultPolicy policy);

  /// True once an injected crash has fired.
  bool crashed() const { return crashed_; }
  std::uint64_t appends_seen() const { return appends_seen_; }
  std::uint64_t bytes_written() const { return bytes_written_; }

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override;
  bool FileExists(const std::string& path) override;
  Result<std::uint64_t> FileSize(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  Status TruncateFile(const std::string& path, std::uint64_t size) override;
  Status CreateDir(const std::string& path) override;
  Result<std::vector<std::string>> ListDir(const std::string& path) override;
  Status SyncDir(const std::string& path) override;

 private:
  friend class FaultInjectedFile;

  /// Decides the fate of an append of `size` bytes. Returns the number of
  /// bytes to persist; sets `*fail` when the append must report an error.
  std::size_t JudgeAppend(std::size_t size, bool* fail);

  Env* base_;
  FaultPolicy policy_;
  bool crashed_ = false;
  std::uint64_t appends_seen_ = 0;
  std::uint64_t bytes_written_ = 0;
};

}  // namespace prometheus::storage

#endif  // PROMETHEUS_STORAGE_FAULT_H_
