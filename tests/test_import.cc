#include <gtest/gtest.h>

#include <sstream>

#include "classification/classification.h"
#include "storage/import.h"
#include "storage/snapshot.h"

namespace prometheus::storage {
namespace {

AttributeDef Attr(std::string name, ValueType type) {
  AttributeDef a;
  a.name = std::move(name);
  a.type = type;
  return a;
}

/// A small herbarium database: taxa classified in one classification with
/// a ref attribute, a synonym pair, and a context-free link.
void BuildHerbarium(Database* db, const std::string& tag) {
  ASSERT_TRUE(db->DefineClass("Taxon", {},
                              {Attr("name", ValueType::kString),
                               Attr("accepted", ValueType::kRef)})
                  .ok());
  ASSERT_TRUE(db->DefineClass("Specimen", {},
                              {Attr("sheet", ValueType::kString)})
                  .ok());
  ASSERT_TRUE(db->DefineRelationship("classified_in", "Taxon", "Specimen",
                                     {},
                                     {Attr("motivation", ValueType::kString)})
                  .ok());
  ClassificationManager mgr(db);
  Oid c = mgr.Create("flora " + tag, "curator " + tag, 1990).value();
  Oid taxon =
      db->CreateObject("Taxon", {{"name", Value::String("Apium-" + tag)}})
          .value();
  Oid other =
      db->CreateObject("Taxon", {{"name", Value::String("Helio-" + tag)}})
          .value();
  ASSERT_TRUE(db->SetAttribute(other, "accepted", Value::Ref(taxon)).ok());
  Oid s1 = db->CreateObject(
                 "Specimen", {{"sheet", Value::String(tag + "-1")}})
               .value();
  Oid s2 = db->CreateObject(
                 "Specimen", {{"sheet", Value::String(tag + "-2")}})
               .value();
  ASSERT_TRUE(
      mgr.AddEdge(c, "classified_in", taxon, s1, "matches " + tag).ok());
  ASSERT_TRUE(mgr.AddEdge(c, "classified_in", taxon, s2).ok());
  ASSERT_TRUE(db->DeclareSynonym(s1, s2).ok());
}

TEST(ImportTest, MergesTwoHerbaria) {
  Database a;
  BuildHerbarium(&a, "edinburgh");
  Database b;
  BuildHerbarium(&b, "kew");

  std::stringstream snapshot;
  ASSERT_TRUE(SaveSnapshot(b, snapshot).ok());

  std::size_t objects_before = a.object_count();
  std::size_t links_before = a.link_count();
  auto report = ImportSnapshot(&a, snapshot);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().objects_imported, b.object_count());
  EXPECT_EQ(report.value().links_imported, b.link_count());
  EXPECT_EQ(report.value().classes_defined, 0u);  // schemas identical
  EXPECT_EQ(a.object_count(),
            objects_before + report.value().objects_imported);
  EXPECT_EQ(a.link_count(), links_before + report.value().links_imported);

  // Both floras now coexist as overlapping classifications.
  ClassificationManager mgr(&a);
  EXPECT_EQ(mgr.All().size(), 2u);

  // Imported synonymy survived under new oids.
  EXPECT_EQ(report.value().synonyms_imported, 1u);
}

TEST(ImportTest, RemapsEveryKindOfReference) {
  Database b;
  BuildHerbarium(&b, "kew");
  std::stringstream snapshot;
  ASSERT_TRUE(SaveSnapshot(b, snapshot).ok());

  Database a;
  BuildHerbarium(&a, "edinburgh");
  auto report = ImportSnapshot(&a, snapshot);
  ASSERT_TRUE(report.ok());
  const auto& map = report.value().oid_map;

  for (Oid old_oid : b.Extent("Taxon")) {
    Oid fresh = map.at(old_oid);
    ASSERT_NE(a.GetObject(fresh), nullptr);
    // No imported oid collides with a pre-existing object's identity:
    // fresh oids were allocated by the target database.
    EXPECT_NE(fresh, old_oid);
    // Ref attribute remapped.
    auto accepted = b.GetAttribute(old_oid, "accepted");
    if (accepted.ok() && accepted.value().type() == ValueType::kRef) {
      auto remapped = a.GetAttribute(fresh, "accepted");
      ASSERT_TRUE(remapped.ok());
      EXPECT_EQ(remapped.value().AsRef(),
                map.at(accepted.value().AsRef()));
    }
  }
  // Links: endpoints, context and attributes all remapped.
  for (Oid lid : b.LinkExtent("classified_in")) {
    const Link* old_link = b.GetLink(lid);
    Oid fresh_src = map.at(old_link->source);
    bool found = false;
    for (Oid flid : a.IncidentLinks(fresh_src, Direction::kOut,
                                    a.FindRelationship("classified_in"))) {
      const Link* fresh_link = a.GetLink(flid);
      if (fresh_link->target != map.at(old_link->target)) continue;
      found = true;
      EXPECT_EQ(fresh_link->context, map.at(old_link->context));
      EXPECT_TRUE(fresh_link->attrs.at("motivation")
                      .Equals(old_link->attrs.at("motivation")));
    }
    EXPECT_TRUE(found);
  }
  // Synonymy between the two imported duplicates.
  std::vector<Oid> specimens = b.Extent("Specimen");
  EXPECT_TRUE(a.AreSynonyms(map.at(specimens[0]), map.at(specimens[1])));
  // ...and no accidental synonymy with the pre-existing specimens.
  for (Oid local : a.Extent("Specimen")) {
    bool imported = false;
    for (const auto& [o, f] : map) {
      (void)o;
      if (f == local) imported = true;
    }
    if (!imported) {
      EXPECT_FALSE(a.AreSynonyms(local, map.at(specimens[0])));
    }
  }
}

TEST(ImportTest, DefinesMissingSchema) {
  Database b;
  BuildHerbarium(&b, "kew");
  std::stringstream snapshot;
  ASSERT_TRUE(SaveSnapshot(b, snapshot).ok());

  Database empty_but_used;  // has unrelated schema, not the herbarium one
  ASSERT_TRUE(empty_but_used.DefineClass("Unrelated").ok());
  auto report = ImportSnapshot(&empty_but_used, snapshot);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GE(report.value().classes_defined, 3u);  // Classification, Taxon, Specimen
  EXPECT_EQ(report.value().relationships_defined, 1u);
  EXPECT_EQ(empty_but_used.object_count(), b.object_count());
}

TEST(ImportTest, RejectsConflictingSchema) {
  Database b;
  ASSERT_TRUE(
      b.DefineClass("Taxon", {}, {Attr("name", ValueType::kString)}).ok());
  ASSERT_TRUE(b.CreateObject("Taxon").ok());
  std::stringstream snapshot;
  ASSERT_TRUE(SaveSnapshot(b, snapshot).ok());

  // The target's Taxon.name has a different type.
  Database a;
  ASSERT_TRUE(
      a.DefineClass("Taxon", {}, {Attr("name", ValueType::kInt)}).ok());
  EXPECT_EQ(ImportSnapshot(&a, snapshot).status().code(),
            Status::Code::kInvalidArgument);

  // A relationship relating different classes also conflicts.
  Database c;
  ASSERT_TRUE(c.DefineClass("Taxon", {},
                            {Attr("name", ValueType::kString)})
                  .ok());
  ASSERT_TRUE(c.DefineClass("Other").ok());
  ASSERT_TRUE(c.DefineRelationship("classified_in", "Other", "Taxon").ok());
  Database d;
  BuildHerbarium(&d, "x");
  std::stringstream snap2;
  ASSERT_TRUE(SaveSnapshot(d, snap2).ok());
  EXPECT_EQ(ImportSnapshot(&c, snap2).status().code(),
            Status::Code::kInvalidArgument);
}

TEST(ImportTest, CrossSourceSynonymDetectionAfterMerge) {
  // The chapter-1 scenario: two institutions classified overlapping
  // material; after merging and declaring the duplicate specimens
  // synonymous, specimen-based comparison finds the synonymy.
  Database a;
  BuildHerbarium(&a, "edinburgh");
  Database b;
  BuildHerbarium(&b, "kew");
  std::stringstream snapshot;
  ASSERT_TRUE(SaveSnapshot(b, snapshot).ok());
  auto report = ImportSnapshot(&a, snapshot);
  ASSERT_TRUE(report.ok());

  // Curators recognise the first sheets of both herbaria as duplicates of
  // the same gathering.
  Oid local_s1 = kNullOid;
  for (Oid s : a.Extent("Specimen")) {
    auto sheet = a.GetAttribute(s, "sheet");
    if (sheet.ok() && sheet.value().Equals(Value::String("edinburgh-1"))) {
      local_s1 = s;
    }
  }
  Oid imported_s1 = report.value().oid_map.at(b.Extent("Specimen")[0]);
  ASSERT_TRUE(a.DeclareSynonym(local_s1, imported_s1).ok());

  ClassificationManager mgr(&a);
  std::vector<Oid> classifications = mgr.All();
  ASSERT_EQ(classifications.size(), 2u);
  auto alignment = mgr.Align(classifications[0], classifications[1]);
  bool overlap_found = false;
  for (const auto& entry : alignment) {
    if (entry.kind != SynonymyKind::kNone) overlap_found = true;
  }
  EXPECT_TRUE(overlap_found);
}

}  // namespace
}  // namespace prometheus::storage
