#include "common/value.h"

#include <cmath>
#include <sstream>

namespace prometheus {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return "bool";
    case ValueType::kInt:
      return "int";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
    case ValueType::kRef:
      return "ref";
    case ValueType::kList:
      return "list";
    case ValueType::kStruct:
      return "struct";
  }
  return "unknown";
}

ValueType Value::type() const {
  switch (data_.index()) {
    case 0:
      return ValueType::kNull;
    case 1:
      return ValueType::kBool;
    case 2:
      return ValueType::kInt;
    case 3:
      return ValueType::kDouble;
    case 4:
      return ValueType::kString;
    case 5:
      return ValueType::kRef;
    case 6:
      return ValueType::kList;
    case 7:
      return ValueType::kStruct;
  }
  return ValueType::kNull;
}

const Value* Value::Field(const std::string& name) const {
  if (type() != ValueType::kStruct) return nullptr;
  for (const auto& [key, value] : AsStruct()) {
    if (key == name) return &value;
  }
  return nullptr;
}

bool Value::HasField(const std::string& name) const {
  return Field(name) != nullptr;
}

Result<double> Value::ToNumeric() const {
  switch (type()) {
    case ValueType::kInt:
      return static_cast<double>(AsInt());
    case ValueType::kDouble:
      return AsDouble();
    default:
      return Status::TypeError(std::string("value of type ") +
                               ValueTypeName(type()) + " is not numeric");
  }
}

bool Value::Equals(const Value& other) const {
  ValueType a = type();
  ValueType b = other.type();
  // Numeric cross-type equality.
  if ((a == ValueType::kInt || a == ValueType::kDouble) &&
      (b == ValueType::kInt || b == ValueType::kDouble)) {
    if (a == ValueType::kInt && b == ValueType::kInt)
      return AsInt() == other.AsInt();
    return ToNumeric().value() == other.ToNumeric().value();
  }
  if (a != b) return false;
  switch (a) {
    case ValueType::kNull:
      return true;
    case ValueType::kBool:
      return AsBool() == other.AsBool();
    case ValueType::kString:
      return AsString() == other.AsString();
    case ValueType::kRef:
      return AsRef() == other.AsRef();
    case ValueType::kList: {
      const List& x = AsList();
      const List& y = other.AsList();
      if (x.size() != y.size()) return false;
      for (std::size_t i = 0; i < x.size(); ++i) {
        if (!x[i].Equals(y[i])) return false;
      }
      return true;
    }
    case ValueType::kStruct: {
      const Struct& x = AsStruct();
      const Struct& y = other.AsStruct();
      if (x.size() != y.size()) return false;
      for (std::size_t i = 0; i < x.size(); ++i) {
        if (x[i].first != y[i].first) return false;
        if (!x[i].second.Equals(y[i].second)) return false;
      }
      return true;
    }
    default:
      return false;
  }
}

Result<int> Value::Compare(const Value& other) const {
  ValueType a = type();
  ValueType b = other.type();
  if ((a == ValueType::kInt || a == ValueType::kDouble) &&
      (b == ValueType::kInt || b == ValueType::kDouble)) {
    double x = ToNumeric().value();
    double y = other.ToNumeric().value();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  if (a != b) {
    return Status::TypeError(std::string("cannot compare ") +
                             ValueTypeName(a) + " with " + ValueTypeName(b));
  }
  switch (a) {
    case ValueType::kBool:
      return static_cast<int>(AsBool()) - static_cast<int>(other.AsBool());
    case ValueType::kString: {
      int c = AsString().compare(other.AsString());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    case ValueType::kRef:
      return AsRef() < other.AsRef() ? -1 : (AsRef() > other.AsRef() ? 1 : 0);
    default:
      return Status::TypeError(std::string("values of type ") +
                               ValueTypeName(a) + " are not ordered");
  }
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return AsBool() ? "true" : "false";
    case ValueType::kInt:
      return std::to_string(AsInt());
    case ValueType::kDouble: {
      std::ostringstream os;
      os << AsDouble();
      return os.str();
    }
    case ValueType::kString:
      return "\"" + AsString() + "\"";
    case ValueType::kRef:
      return "@" + std::to_string(AsRef());
    case ValueType::kList: {
      std::string out = "[";
      const List& items = AsList();
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (i != 0) out += ", ";
        out += items[i].ToString();
      }
      out += "]";
      return out;
    }
    case ValueType::kStruct: {
      std::string out = "{";
      const Struct& fields = AsStruct();
      for (std::size_t i = 0; i < fields.size(); ++i) {
        if (i != 0) out += ", ";
        out += fields[i].first;
        out += ": ";
        out += fields[i].second.ToString();
      }
      out += "}";
      return out;
    }
  }
  return "?";
}

std::string Value::IndexKey() const {
  switch (type()) {
    case ValueType::kNull:
      return "n";
    case ValueType::kBool:
      return AsBool() ? "b1" : "b0";
    case ValueType::kInt:
    case ValueType::kDouble: {
      // Numerically equal ints and doubles must share a key.
      double d = ToNumeric().value();
      if (d == std::floor(d) && std::abs(d) < 1e15) {
        return "i" + std::to_string(static_cast<std::int64_t>(d));
      }
      std::ostringstream os;
      os << "d" << d;
      return os.str();
    }
    case ValueType::kString:
      return "s" + AsString();
    case ValueType::kRef:
      return "r" + std::to_string(AsRef());
    case ValueType::kList: {
      std::string out = "l";
      for (const Value& v : AsList()) {
        std::string k = v.IndexKey();
        out += std::to_string(k.size());
        out += ":";
        out += k;
      }
      return out;
    }
    case ValueType::kStruct: {
      std::string out = "t";
      for (const auto& [name, v] : AsStruct()) {
        std::string k = v.IndexKey();
        out += std::to_string(name.size());
        out += ":";
        out += name;
        out += std::to_string(k.size());
        out += ":";
        out += k;
      }
      return out;
    }
  }
  return "?";
}

}  // namespace prometheus
