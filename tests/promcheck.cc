// promcheck: reads a Prometheus text exposition from stdin and validates
// it with the strict conformance parser the test suite uses. Exit 0 when
// clean; exit 1 with the offence on stderr otherwise. The CI smoke job
// pipes a live `curl /metrics` scrape through this, so a conformance
// regression fails the build even if no unit test anticipated it.
//
//   curl -fsS localhost:9464/metrics | ./promcheck
//
// With `--print <sample-name>` it additionally prints that sample's value
// (integral values without a decimal point) after validating, so the
// smoke job can cross-check a scraped counter against another surface —
// e.g. the same counter read through a `sys.metrics` POOL query.
//
//   curl -fsS localhost:9464/metrics | ./promcheck --print server_queries_total

#include <cmath>
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>

#include "prometheus_text_parser.h"

int main(int argc, char** argv) {
  std::string print_name;
  if (argc == 3 && std::string(argv[1]) == "--print") {
    print_name = argv[2];
  } else if (argc != 1) {
    std::cerr << "usage: promcheck [--print <sample-name>] < exposition\n";
    return 2;
  }

  std::ostringstream input;
  input << std::cin.rdbuf();
  const std::string text = input.str();

  prometheus::testing::PromExposition exposition;
  const std::string error =
      prometheus::testing::ParsePrometheusText(text, &exposition);
  if (!error.empty()) {
    std::cerr << "promcheck: " << error << "\n";
    return 1;
  }
  if (!print_name.empty()) {
    const prometheus::testing::PromSample* sample =
        exposition.FindSample(print_name);
    if (sample == nullptr) {
      std::cerr << "promcheck: no sample named '" << print_name << "'\n";
      return 1;
    }
    if (sample->value == std::floor(sample->value) &&
        std::isfinite(sample->value)) {
      std::cout << static_cast<std::int64_t>(sample->value) << "\n";
    } else {
      std::cout << sample->value << "\n";
    }
    return 0;
  }
  std::size_t samples = 0;
  for (const auto& f : exposition.families) samples += f.samples.size();
  std::cout << "promcheck: OK — " << exposition.families.size()
            << " families, " << samples << " samples\n";
  return 0;
}
