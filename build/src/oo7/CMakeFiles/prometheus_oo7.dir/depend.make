# Empty dependencies file for prometheus_oo7.
# This may be replaced when dependencies are built.
