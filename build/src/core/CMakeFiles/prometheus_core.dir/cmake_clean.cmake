file(REMOVE_RECURSE
  "CMakeFiles/prometheus_core.dir/database.cc.o"
  "CMakeFiles/prometheus_core.dir/database.cc.o.d"
  "CMakeFiles/prometheus_core.dir/schema.cc.o"
  "CMakeFiles/prometheus_core.dir/schema.cc.o.d"
  "libprometheus_core.a"
  "libprometheus_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prometheus_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
