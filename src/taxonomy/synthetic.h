#ifndef PROMETHEUS_TAXONOMY_SYNTHETIC_H_
#define PROMETHEUS_TAXONOMY_SYNTHETIC_H_

#include <vector>

#include "common/result.h"
#include "taxonomy/taxonomy_db.h"

namespace prometheus::taxonomy {

/// Parameters of a synthetic flora (substitute for the Royal Botanic
/// Garden Edinburgh datasets the thesis evaluated with; see DESIGN.md's
/// substitution table). Sizes follow the thesis' observation that genera
/// with hundreds of species are common.
struct FloraConfig {
  int families = 2;
  int genera_per_family = 5;
  int species_per_genus = 10;
  int specimens_per_species = 4;
  /// Publication year assigned to the oldest names; later names increment.
  std::int64_t base_year = 1753;
  unsigned seed = 42;
};

/// Handles into a generated flora.
struct Flora {
  Oid classification = kNullOid;
  std::vector<Oid> family_taxa;
  std::vector<Oid> genus_taxa;
  std::vector<Oid> species_taxa;
  std::vector<Oid> specimens;
  std::vector<Oid> names;  ///< published NTs, typified and placed
};

/// Populates `tdb` with a fully classified, typified and named synthetic
/// flora: one classification whose families contain genera contain species
/// circumscribe specimens; every species/genus/family has a published,
/// typified nomenclatural taxon. Deterministic in `config.seed`.
Result<Flora> GenerateFlora(TaxonomyDatabase* tdb, const FloraConfig& config);

/// Builds a second classification over the same specimens by regrouping
/// every genus's species into `groups` new genera (a synthetic revision) —
/// the source of overlapping classifications for the synonym-detection
/// benchmarks. Returns the new classification.
Result<Oid> GenerateRevision(TaxonomyDatabase* tdb, const Flora& flora,
                             int groups, unsigned seed);

}  // namespace prometheus::taxonomy

#endif  // PROMETHEUS_TAXONOMY_SYNTHETIC_H_
