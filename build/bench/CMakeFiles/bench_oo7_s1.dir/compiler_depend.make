# Empty compiler generated dependencies file for bench_oo7_s1.
# This may be replaced when dependencies are built.
