# Empty dependencies file for whatif_and_rules.
# This may be replaced when dependencies are built.
