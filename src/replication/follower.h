#ifndef PROMETHEUS_REPLICATION_FOLLOWER_H_
#define PROMETHEUS_REPLICATION_FOLLOWER_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/result.h"
#include "core/database.h"
#include "net/http_client.h"
#include "net/http_server.h"
#include "replication/applier.h"
#include "server/client.h"
#include "server/server.h"
#include "storage/fault.h"
#include "storage/recovery.h"

namespace prometheus::replication {

/// A journal-shipping read replica.
///
/// The follower keeps a byte-identical prefix mirror of the leader's store
/// directory: it bootstraps by downloading the newest snapshot from
/// `/repl/snapshot`, then tails the live journal from `/repl/journal`,
/// mirroring every committed unit to its own copy of the file and applying
/// it to an in-memory database (see `JournalStreamApplier` for the
/// atomicity rules). Its cursor — (generation, journal seq, byte offset of
/// the last applied committed unit) — is therefore durable *implicitly*:
/// after a crash or restart, replaying the local mirror rebuilds exactly
/// the applied state and the mirror's size is the resume offset.
///
/// Robustness:
///  - the fetch loop reconnects with `RetryPolicy` backoff + full jitter
///    across leader outages; a black-holed leader cannot hang it (the
///    client's connect and I/O deadlines are satellite work of this PR);
///  - torn or CRC-corrupt frames are never applied: the applier rewinds
///    and re-fetches from its boundary; three corrupt fetches at the same
///    boundary escalate to a full rebootstrap;
///  - a 410 (file pruned despite the leader's follower pinning — e.g. the
///    follower was silent past the expiry) or 416 (divergent history)
///    answer triggers a rebootstrap from the leader's newest snapshot,
///    done in place: the database is cleared and reloaded under one write
///    guard while the read-only server keeps serving around it.
///
/// The follower serves read-only POOL queries plus /metrics, /stats and
/// /health behind its own `HttpFrontEnd`; mutations answer `kUnavailable`
/// through the server's read-only role. Replication lag is exported as
/// `replication_lag_records` / `replication_lag_bytes` gauges and embedded
/// in /health via the server's replication probe.
///
/// `Promote()` turns the mirror into a standalone writable leader: the
/// fetch loop and read-only plane stop, and the directory — a valid store
/// by construction — is reopened through `DurableStore::Open`, exercising
/// recovery end to end.
class Follower {
 public:
  struct Options {
    /// Local mirror directory (created if missing).
    std::string dir;
    std::string leader_host = "127.0.0.1";
    int leader_port = 0;
    /// How the leader tracks and pins this follower; defaults to `dir`.
    std::string follower_id;
    /// Serve HTTP (read-only queries + telemetry). Off for tests that only
    /// exercise the replication core.
    bool serve_http = true;
    std::string bind_address = "127.0.0.1";
    int http_port = 0;  ///< 0 picks an ephemeral port
    int worker_threads = 2;
    /// Poll cadence against a caught-up leader.
    int poll_interval_ms = 20;
    /// Connect + I/O deadline for leader fetches.
    int fetch_timeout_ms = 2000;
    /// Bytes requested per fetch (clamped by the leader too).
    std::size_t fetch_limit_bytes = 256 * 1024;
    /// Backoff schedule across disconnects (budget/max_attempts are not
    /// used: a follower retries forever, that is its job).
    server::RetryPolicy retry;
    /// Filesystem for the local mirror (default `Env::Default()`; tests
    /// inject faults here).
    storage::Env* env = nullptr;
  };

  /// Recovers local mirror state, starts the read-only plane and the fetch
  /// loop. Returns immediately; catch-up happens in the background (see
  /// `WaitCaughtUp`).
  static Result<std::unique_ptr<Follower>> Start(Options options);

  ~Follower();

  Follower(const Follower&) = delete;
  Follower& operator=(const Follower&) = delete;

  /// Stops the fetch loop, the HTTP plane and the server. Idempotent.
  void Stop();

  /// Ends replication and reopens the mirror as a writable store (the
  /// caller wraps it in a new writable Server/front-end). The follower is
  /// stopped; only committed units were ever mirrored, so no committed
  /// transaction is lost and recovery finds a consistent store.
  Result<std::unique_ptr<storage::DurableStore>> Promote();

  server::Server& server() { return *server_; }
  Database& db() { return *db_; }
  /// Null when Options::serve_http was false.
  net::HttpFrontEnd* front_end() { return front_.get(); }
  int http_port() const { return front_ ? front_->port() : 0; }

  struct Progress {
    bool connected = false;   ///< a leader fetch succeeded recently
    bool caught_up = false;   ///< at the live journal's current tail
    std::uint64_t generation = 0;
    std::uint64_t journal_seq = 0;     ///< journal being tailed
    std::uint64_t offset = 0;          ///< applied committed boundary
    std::uint64_t records_applied = 0; ///< in the current journal
    std::uint64_t lag_records = 0;     ///< exact when on the live journal
    std::uint64_t lag_bytes = 0;
    std::uint64_t reconnects = 0;
    std::uint64_t rebootstraps = 0;
    std::uint64_t corrupt_frames = 0;
    /// Completed leader fetches. `caught_up` is a verdict *as of* a poll;
    /// WaitCaughtUp uses this counter to insist on a verdict issued after
    /// it started, not one left over from before the caller's last write.
    std::uint64_t polls = 0;
  };
  Progress progress() const;

  /// The JSON object the server's /health embeds as "replication".
  std::string ProgressJson() const;

  /// The same progress as `sys.replication` rows: one struct Value for this
  /// follower's link. Field for field identical to ProgressJson, read from
  /// the same Progress snapshot, so the catalog can never drift from
  /// /health.
  std::vector<Value> ProgressRows() const;

  /// Blocks until the follower is connected and at the leader's live tail
  /// (or `timeout_ms` elapses). False on timeout.
  bool WaitCaughtUp(int timeout_ms);

 private:
  struct Manifest {
    std::uint64_t generation = 0;
    std::uint64_t live_seq = 0;
    std::uint64_t live_records = 0;
    std::map<std::uint64_t, std::uint64_t> snapshots;  ///< seq -> bytes
    std::map<std::uint64_t, std::uint64_t> journals;
  };
  struct FollowerMetrics;

  explicit Follower(Options options);

  /// Rebuilds the database from the local mirror (newest valid snapshot +
  /// journal replays) and positions the applier; surfaces each journal's
  /// ReplayReport through the catch-up counters. Single-threaded (runs
  /// before the server exists).
  Status LocalRecover();

  void FetchLoop();
  /// One connection lifetime: fetch/bootstrap/tail until an error or stop.
  /// Sets `*made_progress` when at least one fetch succeeded.
  Status RunSession(bool* made_progress);
  Result<Manifest> FetchManifest(net::HttpConnection* conn);
  /// Clears the database and rebuilds from the manifest's newest snapshot
  /// (downloaded through `conn`), pruning stale local files.
  Status Bootstrap(net::HttpConnection* conn, const Manifest& manifest);
  Status OpenMirror(std::uint64_t seq, bool truncate);

  /// Trace id for the next leader fetch: "repl-<follower-id>-<n>". Sent as
  /// X-Trace-Id so the leader's flight recorder shows who asked for what;
  /// the follower records its own side via RecordFetchTrace, and the same
  /// id then surfaces in `/debug/requests?id=` on both nodes. Fetch thread
  /// only.
  std::string NextFetchTraceId();
  /// Records a completed leader fetch in this follower's own flight
  /// recorder (no-op when recording is off).
  void RecordFetchTrace(const std::string& trace_id, const std::string& what,
                        std::size_t bytes, double micros);

  /// Sleeps up to `ms`, waking early on Stop(). True when stopping.
  bool StopRequestedWithin(int ms);

  void UpdateProgress(const Progress& p);

  const Options options_;
  storage::Env* env_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<server::Server> server_;
  std::unique_ptr<net::HttpFrontEnd> front_;

  // Fetch-loop state (owned by the fetch thread after Start).
  std::unique_ptr<JournalStreamApplier> applier_;
  std::unique_ptr<storage::WritableFile> mirror_;
  std::uint64_t generation_ = 0;
  std::uint64_t journal_seq_ = 0;
  bool need_bootstrap_ = false;
  std::uint64_t corrupt_boundary_ = 0;
  int corrupt_repeats_ = 0;
  std::uint64_t fetch_trace_seq_ = 0;  ///< fetch thread only

  std::thread fetcher_;
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stop_ = false;
  bool stopped_ = false;  ///< Stop() completed

  mutable std::mutex progress_mu_;
  Progress progress_;
};

}  // namespace prometheus::replication

#endif  // PROMETHEUS_REPLICATION_FOLLOWER_H_
