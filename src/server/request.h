#ifndef PROMETHEUS_SERVER_REQUEST_H_
#define PROMETHEUS_SERVER_REQUEST_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/oid.h"
#include "common/status.h"
#include "common/value.h"
#include "core/database.h"
#include "query/query_engine.h"
#include "server/admission.h"

namespace prometheus::server {

/// Server-assigned, strictly increasing id of an admitted request.
using RequestId = std::uint64_t;

/// Id of a logical client session (see session.h).
using SessionId = std::uint64_t;

/// What a request asks the database to do.
enum class RequestKind : std::uint8_t {
  kPing,      ///< liveness probe; touches nothing, reports the epoch
  kQuery,     ///< POOL text, evaluated under a shared (read) lock
  kMutation,  ///< structured mutation, applied under an exclusive lock
  kStats,     ///< metrics snapshot; reads only the registry, takes no lock
  kHealth,    ///< overload/degradation summary; takes no database lock
  /// Query-cache administration (stats / clear / off / on); touches only
  /// the server's cache, never the database — serves on followers and in
  /// degraded mode alike.
  kCacheControl,
};

/// What a kCacheControl request does. Every op returns the cache stats
/// after it applied, so `.cache clear` shows the emptied state it made.
enum class CacheOp : std::uint8_t {
  kStats,    ///< report both tiers' counters; changes nothing
  kClear,    ///< drop every cached plan and result
  kDisable,  ///< stop lookups and inserts (entries stay resident)
  kEnable,   ///< re-enable both tiers
};

/// Rendering of a kStats response.
enum class StatsFormat : std::uint8_t {
  kJson,            ///< {"counters":{...},"gauges":{...},"histograms":{...}}
  kPrometheusText,  ///< Prometheus text exposition format
};

/// A structured mutation command — the wire-friendly subset of the
/// `Database` API a remote protocol can carry verbatim. `kCustom` wraps a
/// host-side closure for multi-step writes the envelope does not model yet
/// (tests, examples and the load generator use it for transactional
/// updates); a future wire protocol simply won't offer it.
struct MutationOp {
  enum class Kind : std::uint8_t {
    kCreateObject,
    kSetAttribute,
    kDeleteObject,
    kCreateLink,
    kSetLinkAttribute,
    kDeleteLink,
    kCustom,
    /// Operator action: `DurableStore::Checkpoint()` under the exclusive
    /// lock. The one mutation still admitted in degraded read-only mode —
    /// a successful checkpoint re-arms the store.
    kCheckpoint,
  };

  Kind kind = Kind::kCustom;
  std::string type_name;        ///< class / relationship name (kCreate*)
  Oid target = kNullOid;        ///< the object / link being touched
  Oid source = kNullOid;        ///< link source (kCreateLink)
  Oid dest = kNullOid;          ///< link target (kCreateLink)
  Oid context = kNullOid;       ///< classification context (kCreateLink)
  std::string attribute;        ///< attribute name (kSet*)
  Value value;                  ///< new attribute value (kSet*)
  std::vector<AttrInit> inits;  ///< initial attributes (kCreate*)
  /// kCustom body. Runs on a worker under the exclusive lock; its status
  /// becomes the response status. May open transactions.
  std::function<Status(Database&)> custom;
};

/// The uniform request envelope every session submits.
struct Request {
  RequestKind kind = RequestKind::kPing;
  std::string query;    ///< POOL text (kQuery)
  MutationOp mutation;  ///< (kMutation)
  StatsFormat stats_format = StatsFormat::kJson;  ///< (kStats)
  CacheOp cache_op = CacheOp::kStats;             ///< (kCacheControl)

  /// Trace-context id. Empty means "assign one at admission": the server
  /// stamps `<server_epoch>-<request id>` so every request is retrievable
  /// by id from the flight recorder (`/debug/requests?id=...`). Callers —
  /// the HTTP plane's `X-Trace-Id` header, `Client::CallWithRetry`, a
  /// follower's fetch loop — set it to stitch one logical operation's
  /// hops (retries, replica fetches) under a single id.
  std::string trace_id;

  /// Absolute deadline. Expired requests are refused at admission, shed at
  /// dequeue (`ResponseCode::kTimedOut`), and queries abort cooperatively
  /// mid-execution. The default (`kNoDeadline`) costs one branch.
  DeadlineClock::time_point deadline = kNoDeadline;
  /// Scheduling class: under pressure lower classes are shed first and
  /// higher classes dequeue first.
  Priority priority = Priority::kNormal;

  // Fluent qualifiers, chainable off a builder:
  //   Request::Query("...").WithTimeout(std::chrono::milliseconds(50))
  Request& WithDeadline(DeadlineClock::time_point d) {
    deadline = d;
    return *this;
  }
  Request& WithTimeout(std::chrono::microseconds budget) {
    deadline = DeadlineClock::now() + budget;
    return *this;
  }
  Request& WithPriority(Priority p) {
    priority = p;
    return *this;
  }
  Request& WithTraceId(std::string id) {
    trace_id = std::move(id);
    return *this;
  }

  // Builders — the only intended way to make a Request.
  static Request Ping() { return {}; }
  static Request Query(std::string pool_text);
  static Request Stats(StatsFormat format = StatsFormat::kJson);
  static Request Health();
  static Request CreateObject(std::string class_name,
                              std::vector<AttrInit> inits = {});
  static Request SetAttribute(Oid oid, std::string attribute, Value value);
  static Request DeleteObject(Oid oid);
  static Request CreateLink(std::string rel_name, Oid source, Oid dest,
                            Oid context = kNullOid,
                            std::vector<AttrInit> inits = {});
  static Request SetLinkAttribute(Oid oid, std::string attribute, Value value);
  static Request DeleteLink(Oid oid);
  static Request Custom(std::function<Status(Database&)> fn);
  static Request Checkpoint();
  static Request CacheControl(CacheOp op = CacheOp::kStats);
};

/// Per-request wait-state attribution in microseconds (see
/// obs/wait_profiler.h for the state definitions). Filled by the server
/// when timing is on (metrics enabled or the flight recorder recording);
/// all zeros otherwise. `execute_micros` is *pure* execution — guard
/// acquisition and journal time are subtracted out, so the fields sum to
/// (roughly) the worker-side total and a slow request's time is
/// attributable at a glance.
struct WaitBreakdown {
  double queue_micros = 0;        ///< admission -> worker pickup
  double guard_wait_micros = 0;   ///< epoch-guard acquisition (either mode)
  double execute_micros = 0;      ///< execution with named waits subtracted
  double journal_append_micros = 0;  ///< journal file appends
  double journal_sync_micros = 0;    ///< journal fsync barriers
};

/// Transport-level disposition of a request — distinct from the
/// database-level `Status` of executing it. Only `kOk` responses carry an
/// execution outcome; for the other codes `executed` tells whether any
/// side effect can have happened (`kTimedOut` covers both a request shed
/// unexecuted from the queue and a query aborted mid-execution).
enum class ResponseCode : std::uint8_t {
  kOk,          ///< executed; `status` holds the database outcome
  kRejected,    ///< admission refused it (backpressure / shed), never ran
  kShutdown,    ///< the server stopped before the request could run
  kTimedOut,    ///< deadline expired — before execution unless `executed`
  kUnavailable, ///< degraded read-only mode refused a mutation, never ran
};

/// The uniform response envelope. Every *accepted* request produces exactly
/// one Response; rejected and shutdown-dropped requests produce exactly one
/// too (with the corresponding code), so a client can always account for
/// every submission.
struct Response {
  RequestId id = 0;
  ResponseCode code = ResponseCode::kOk;
  Status status;            ///< database-level outcome (kOk responses)
  pool::ResultSet result;   ///< rows (kQuery); stage table (PROFILE)
  Oid oid = kNullOid;       ///< created oid (kCreateObject / kCreateLink)
  std::uint64_t epoch = 0;  ///< database epoch the request executed at
  /// Rendered text payload: the metrics snapshot (kStats), the health
  /// summary (kHealth) or the span tree of a PROFILE query.
  std::string text;
  /// True when the request began executing on a worker. The retry policy
  /// keys off this: a request that never executed is always safe to
  /// resubmit; an executed mutation never is.
  bool executed = false;
  /// kQuery only: true when the server's result cache was consulted for
  /// this request (the HTTP plane then reports `X-Cache`), and whether it
  /// hit. A hit resolved on the submitting thread — no queue, no worker,
  /// no epoch guard — with `epoch` carrying the entry's still-current
  /// materialization epoch.
  bool cache_checked = false;
  bool cache_hit = false;
  /// The request's trace id, echoed back (server-assigned when the caller
  /// left it empty). The HTTP plane returns it as `X-Trace-Id`.
  std::string trace_id;
  /// Wait-state attribution for this request (zeros when timing was off).
  WaitBreakdown waits;

  /// Accepted, executed, and the database reported success.
  bool ok() const { return code == ResponseCode::kOk && status.ok(); }
};

}  // namespace prometheus::server

#endif  // PROMETHEUS_SERVER_REQUEST_H_
