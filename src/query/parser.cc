#include "query/parser.h"

#include <utility>

#include "query/token.h"

namespace prometheus::pool {

namespace {

/// Recursive-descent parser over the token stream. Grammar (5.1.1):
///
///   query    := SELECT [DISTINCT] ('*' | item (',' item)*)
///               FROM range (',' range)*
///               [WHERE expr] [ORDER BY expr [ASC|DESC]] [LIMIT int]
///   item     := expr [AS ident]
///   range    := ident IN source | source [AS] [ident]
///   source   := extent-name | expr
///   expr     := or-precedence expression with NOT/comparisons/LIKE/IN,
///               path steps `.member`, selective downcast `[Class]`,
///               function calls and parenthesised subqueries.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::unique_ptr<SelectQuery>> ParseQueryTop() {
    auto q = ParseSelect();
    if (!q.ok()) return q.status();
    PROMETHEUS_RETURN_IF_ERROR(Expect(TokenKind::kEnd, "end of query"));
    return std::move(q).value();
  }

  Result<std::unique_ptr<Expr>> ParseExprTop() {
    auto e = ParseExpr();
    if (!e.ok()) return e.status();
    PROMETHEUS_RETURN_IF_ERROR(Expect(TokenKind::kEnd, "end of expression"));
    return std::move(e).value();
  }

 private:
  const Token& Cur() const { return tokens_[pos_]; }
  const Token& Peek(std::size_t ahead = 1) const {
    std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }
  bool Accept(TokenKind kind) {
    if (Cur().kind == kind) {
      Advance();
      return true;
    }
    return false;
  }
  Status Expect(TokenKind kind, const std::string& what) {
    if (Cur().kind != kind) {
      return Status::ParseError("expected " + what + " at offset " +
                                std::to_string(Cur().offset));
    }
    Advance();
    return Status::Ok();
  }

  Result<std::unique_ptr<SelectQuery>> ParseSelect() {
    PROMETHEUS_RETURN_IF_ERROR(Expect(TokenKind::kSelect, "'select'"));
    auto q = std::make_unique<SelectQuery>();
    q->distinct = Accept(TokenKind::kDistinct);
    if (Accept(TokenKind::kStar)) {
      q->select_star = true;
    } else {
      do {
        SelectItem item;
        PROMETHEUS_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (Accept(TokenKind::kAs)) {
          if (Cur().kind != TokenKind::kIdentifier) {
            return Status::ParseError("expected alias after 'as'");
          }
          item.alias = Cur().text;
          Advance();
        }
        q->items.push_back(std::move(item));
      } while (Accept(TokenKind::kComma));
    }
    PROMETHEUS_RETURN_IF_ERROR(Expect(TokenKind::kFrom, "'from'"));
    do {
      PROMETHEUS_ASSIGN_OR_RETURN(FromRange range, ParseRange());
      q->from.push_back(std::move(range));
    } while (Accept(TokenKind::kComma));
    if (Accept(TokenKind::kWhere)) {
      PROMETHEUS_ASSIGN_OR_RETURN(q->where, ParseExpr());
    }
    if (Accept(TokenKind::kGroup)) {
      PROMETHEUS_RETURN_IF_ERROR(Expect(TokenKind::kBy, "'by'"));
      do {
        PROMETHEUS_ASSIGN_OR_RETURN(std::unique_ptr<Expr> key, ParseExpr());
        q->group_by.push_back(std::move(key));
      } while (Accept(TokenKind::kComma));
      if (Accept(TokenKind::kHaving)) {
        PROMETHEUS_ASSIGN_OR_RETURN(q->having, ParseExpr());
      }
    }
    if (Accept(TokenKind::kOrder)) {
      PROMETHEUS_RETURN_IF_ERROR(Expect(TokenKind::kBy, "'by'"));
      do {
        SelectQuery::OrderKey key;
        PROMETHEUS_ASSIGN_OR_RETURN(key.expr, ParseExpr());
        if (Accept(TokenKind::kDesc)) {
          key.desc = true;
        } else {
          Accept(TokenKind::kAsc);
        }
        q->order_by.push_back(std::move(key));
      } while (Accept(TokenKind::kComma));
    }
    if (Accept(TokenKind::kLimit)) {
      if (Cur().kind != TokenKind::kInt) {
        return Status::ParseError("expected integer after 'limit'");
      }
      q->limit = Cur().int_value;
      Advance();
    }
    return q;
  }

  Result<FromRange> ParseRange() {
    FromRange range;
    // OQL form: `var in source`.
    if (Cur().kind == TokenKind::kIdentifier &&
        Peek().kind == TokenKind::kIn) {
      range.variable = Cur().text;
      Advance();
      Advance();  // 'in'
      return FinishRangeSource(std::move(range));
    }
    // Form: `source [as] [var]`.
    PROMETHEUS_ASSIGN_OR_RETURN(std::unique_ptr<Expr> src, ParseExpr());
    Accept(TokenKind::kAs);
    if (Cur().kind == TokenKind::kIdentifier) {
      range.variable = Cur().text;
      Advance();
    }
    if (src->kind == ExprKind::kVariable) {
      range.source_name = src->name;
      if (range.variable.empty()) range.variable = src->name;
    } else if (std::string sys = SysCatalogName(*src); !sys.empty()) {
      range.source_name = std::move(sys);
      if (range.variable.empty()) {
        return Status::ParseError(
            "catalog range requires a variable name (e.g. 'sys.metrics m')");
      }
    } else {
      if (range.variable.empty()) {
        return Status::ParseError(
            "expression range requires a variable name");
      }
      range.source_expr = std::move(src);
    }
    return range;
  }

  Result<FromRange> FinishRangeSource(FromRange range) {
    PROMETHEUS_ASSIGN_OR_RETURN(std::unique_ptr<Expr> src, ParseExpr());
    if (src->kind == ExprKind::kVariable) {
      range.source_name = src->name;
    } else if (std::string sys = SysCatalogName(*src); !sys.empty()) {
      range.source_name = std::move(sys);
    } else {
      range.source_expr = std::move(src);
    }
    return range;
  }

  // `sys` is a reserved namespace: a range source of exactly
  // `sys.<member>` names a virtual system-catalog extent, not a path over a
  // variable. Deeper paths (`sys.a.b`) and every other base stay expression
  // ranges, so dependent ranges like `from t.children c` are unaffected.
  static std::string SysCatalogName(const Expr& src) {
    if (src.kind != ExprKind::kPath || src.children.size() != 1) return "";
    const Expr& base = *src.children[0];
    if (base.kind != ExprKind::kVariable || base.name != "sys") return "";
    return "sys." + src.name;
  }

  Result<std::unique_ptr<Expr>> ParseExpr() { return ParseOr(); }

  Result<std::unique_ptr<Expr>> ParseOr() {
    PROMETHEUS_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseAnd());
    while (Accept(TokenKind::kOr)) {
      PROMETHEUS_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseAnd());
      lhs = MakeBinary(BinaryOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<std::unique_ptr<Expr>> ParseAnd() {
    PROMETHEUS_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseNot());
    while (Accept(TokenKind::kAnd)) {
      PROMETHEUS_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseNot());
      lhs = MakeBinary(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<std::unique_ptr<Expr>> ParseNot() {
    if (Accept(TokenKind::kNot)) {
      PROMETHEUS_ASSIGN_OR_RETURN(std::unique_ptr<Expr> operand, ParseNot());
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kUnary;
      e->unary_op = UnaryOp::kNot;
      e->children.push_back(std::move(operand));
      return e;
    }
    return ParseComparison();
  }

  Result<std::unique_ptr<Expr>> ParseComparison() {
    PROMETHEUS_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParseAdditive());
    BinaryOp op;
    bool negate = false;
    switch (Cur().kind) {
      case TokenKind::kEq:
        op = BinaryOp::kEq;
        break;
      case TokenKind::kNe:
        op = BinaryOp::kNe;
        break;
      case TokenKind::kLt:
        op = BinaryOp::kLt;
        break;
      case TokenKind::kLe:
        op = BinaryOp::kLe;
        break;
      case TokenKind::kGt:
        op = BinaryOp::kGt;
        break;
      case TokenKind::kGe:
        op = BinaryOp::kGe;
        break;
      case TokenKind::kLike:
        op = BinaryOp::kLike;
        break;
      case TokenKind::kIn:
        op = BinaryOp::kIn;
        break;
      case TokenKind::kNot:
        // `x not in y` / `x not like y`.
        if (Peek().kind == TokenKind::kIn) {
          op = BinaryOp::kIn;
          negate = true;
          Advance();
        } else if (Peek().kind == TokenKind::kLike) {
          op = BinaryOp::kLike;
          negate = true;
          Advance();
        } else {
          return lhs;
        }
        break;
      default:
        return lhs;
    }
    Advance();
    PROMETHEUS_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParseAdditive());
    std::unique_ptr<Expr> cmp =
        MakeBinary(op, std::move(lhs), std::move(rhs));
    if (negate) {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kUnary;
      e->unary_op = UnaryOp::kNot;
      e->children.push_back(std::move(cmp));
      return e;
    }
    return cmp;
  }

  Result<std::unique_ptr<Expr>> ParseAdditive() {
    PROMETHEUS_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs,
                                ParseMultiplicative());
    for (;;) {
      BinaryOp op;
      if (Cur().kind == TokenKind::kPlus) {
        op = BinaryOp::kAdd;
      } else if (Cur().kind == TokenKind::kMinus) {
        op = BinaryOp::kSub;
      } else {
        return lhs;
      }
      Advance();
      PROMETHEUS_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs,
                                  ParseMultiplicative());
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
    }
  }

  Result<std::unique_ptr<Expr>> ParseMultiplicative() {
    PROMETHEUS_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lhs, ParsePostfix());
    for (;;) {
      BinaryOp op;
      if (Cur().kind == TokenKind::kStar) {
        op = BinaryOp::kMul;
      } else if (Cur().kind == TokenKind::kSlash) {
        op = BinaryOp::kDiv;
      } else if (Cur().kind == TokenKind::kPercent) {
        op = BinaryOp::kMod;
      } else {
        return lhs;
      }
      Advance();
      PROMETHEUS_ASSIGN_OR_RETURN(std::unique_ptr<Expr> rhs, ParsePostfix());
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
    }
  }

  Result<std::unique_ptr<Expr>> ParsePostfix() {
    PROMETHEUS_ASSIGN_OR_RETURN(std::unique_ptr<Expr> base, ParsePrimary());
    for (;;) {
      if (Accept(TokenKind::kDot)) {
        if (Cur().kind != TokenKind::kIdentifier) {
          return Status::ParseError("expected member name after '.'");
        }
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kPath;
        e->name = Cur().text;
        e->children.push_back(std::move(base));
        base = std::move(e);
        Advance();
      } else if (Accept(TokenKind::kLBracket)) {
        if (Cur().kind != TokenKind::kIdentifier) {
          return Status::ParseError("expected class name in downcast");
        }
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kDowncast;
        e->name = Cur().text;
        e->children.push_back(std::move(base));
        base = std::move(e);
        Advance();
        PROMETHEUS_RETURN_IF_ERROR(Expect(TokenKind::kRBracket, "']'"));
      } else {
        return base;
      }
    }
  }

  Result<std::unique_ptr<Expr>> ParsePrimary() {
    auto e = std::make_unique<Expr>();
    switch (Cur().kind) {
      case TokenKind::kInt:
        e->kind = ExprKind::kLiteral;
        e->literal = Value::Int(Cur().int_value);
        Advance();
        return e;
      case TokenKind::kDouble:
        e->kind = ExprKind::kLiteral;
        e->literal = Value::Double(Cur().double_value);
        Advance();
        return e;
      case TokenKind::kString:
        e->kind = ExprKind::kLiteral;
        e->literal = Value::String(Cur().text);
        Advance();
        return e;
      case TokenKind::kTrue:
        e->kind = ExprKind::kLiteral;
        e->literal = Value::Bool(true);
        Advance();
        return e;
      case TokenKind::kFalse:
        e->kind = ExprKind::kLiteral;
        e->literal = Value::Bool(false);
        Advance();
        return e;
      case TokenKind::kNull:
        e->kind = ExprKind::kLiteral;
        e->literal = Value::Null();
        Advance();
        return e;
      case TokenKind::kMinus: {
        Advance();
        PROMETHEUS_ASSIGN_OR_RETURN(std::unique_ptr<Expr> operand,
                                    ParsePostfix());
        e->kind = ExprKind::kUnary;
        e->unary_op = UnaryOp::kNeg;
        e->children.push_back(std::move(operand));
        return e;
      }
      case TokenKind::kIdentifier: {
        std::string name = Cur().text;
        Advance();
        if (Accept(TokenKind::kLParen)) {
          e->kind = ExprKind::kCall;
          e->name = std::move(name);
          if (!Accept(TokenKind::kRParen)) {
            do {
              PROMETHEUS_ASSIGN_OR_RETURN(std::unique_ptr<Expr> arg,
                                          ParseExpr());
              e->children.push_back(std::move(arg));
            } while (Accept(TokenKind::kComma));
            PROMETHEUS_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
          }
          return e;
        }
        e->kind = ExprKind::kVariable;
        e->name = std::move(name);
        return e;
      }
      case TokenKind::kLParen: {
        Advance();
        if (Cur().kind == TokenKind::kSelect) {
          PROMETHEUS_ASSIGN_OR_RETURN(std::unique_ptr<SelectQuery> sub,
                                      ParseSelect());
          PROMETHEUS_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
          e->kind = ExprKind::kSubquery;
          e->subquery = std::move(sub);
          return e;
        }
        PROMETHEUS_ASSIGN_OR_RETURN(std::unique_ptr<Expr> inner, ParseExpr());
        PROMETHEUS_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
        return inner;
      }
      default:
        return Status::ParseError("unexpected token at offset " +
                                  std::to_string(Cur().offset));
    }
  }

  static std::unique_ptr<Expr> MakeBinary(BinaryOp op,
                                          std::unique_ptr<Expr> lhs,
                                          std::unique_ptr<Expr> rhs) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kBinary;
    e->binary_op = op;
    e->children.push_back(std::move(lhs));
    e->children.push_back(std::move(rhs));
    return e;
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<std::unique_ptr<SelectQuery>> ParseQuery(const std::string& source) {
  PROMETHEUS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  return Parser(std::move(tokens)).ParseQueryTop();
}

Result<std::unique_ptr<Expr>> ParseExpression(const std::string& source) {
  PROMETHEUS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  return Parser(std::move(tokens)).ParseExprTop();
}

}  // namespace prometheus::pool
