# Empty dependencies file for prometheus_classification.
# This may be replaced when dependencies are built.
