#include "cache/query_cache.h"

#include <cstdio>

namespace prometheus::cache {

std::vector<std::pair<std::string, std::string>> QueryCacheStats::Fields()
    const {
  char rate[32];
  std::snprintf(rate, sizeof(rate), "%.1f%%", result.hit_rate_percent);
  std::vector<std::pair<std::string, std::string>> out;
  out.emplace_back("enabled", enabled ? "true" : "false");
  out.emplace_back("result_hits", std::to_string(result.hits));
  out.emplace_back("result_misses", std::to_string(result.misses));
  out.emplace_back("result_hit_rate", rate);
  out.emplace_back("result_entries", std::to_string(result.entries));
  out.emplace_back("result_bytes", std::to_string(result.bytes) + "/" +
                                       std::to_string(result.max_bytes));
  out.emplace_back("result_evictions", std::to_string(result.evictions));
  out.emplace_back("result_invalidations",
                   std::to_string(result.invalidations));
  out.emplace_back("result_oversize", std::to_string(result.oversize));
  out.emplace_back("plan_hits", std::to_string(plan.hits));
  out.emplace_back("plan_misses", std::to_string(plan.misses));
  out.emplace_back("plan_entries", std::to_string(plan.entries));
  out.emplace_back("plan_invalidations", std::to_string(plan.invalidations));
  out.emplace_back("schema_generation", std::to_string(plan.schema_generation));
  return out;
}

std::string QueryCache::StatsJson() const {
  const QueryCacheStats s = Stats();
  const PlanCache::Stats& p = s.plan;
  const ResultCache::Stats& r = s.result;
  char rate[32];
  std::snprintf(rate, sizeof(rate), "%.1f", r.hit_rate_percent);
  std::string out = "{";
  out += "\"enabled\":" + std::string(s.enabled ? "true" : "false");
  out += ",\"result\":{";
  out += "\"hits\":" + std::to_string(r.hits);
  out += ",\"misses\":" + std::to_string(r.misses);
  out += ",\"hit_rate_percent\":" + std::string(rate);
  out += ",\"inserts\":" + std::to_string(r.inserts);
  out += ",\"evictions\":" + std::to_string(r.evictions);
  out += ",\"invalidations\":" + std::to_string(r.invalidations);
  out += ",\"oversize\":" + std::to_string(r.oversize);
  out += ",\"entries\":" + std::to_string(r.entries);
  out += ",\"bytes\":" + std::to_string(r.bytes);
  out += ",\"max_bytes\":" + std::to_string(r.max_bytes);
  out += ",\"shards\":" + std::to_string(r.shards);
  out += "},\"plan\":{";
  out += "\"hits\":" + std::to_string(p.hits);
  out += ",\"misses\":" + std::to_string(p.misses);
  out += ",\"inserts\":" + std::to_string(p.inserts);
  out += ",\"evictions\":" + std::to_string(p.evictions);
  out += ",\"invalidations\":" + std::to_string(p.invalidations);
  out += ",\"entries\":" + std::to_string(p.entries);
  out += ",\"schema_generation\":" + std::to_string(p.schema_generation);
  out += "}}";
  return out;
}

}  // namespace prometheus::cache
