#include "server/request.h"

namespace prometheus::server {

Request Request::Query(std::string pool_text) {
  Request r;
  r.kind = RequestKind::kQuery;
  r.query = std::move(pool_text);
  return r;
}

Request Request::Stats(StatsFormat format) {
  Request r;
  r.kind = RequestKind::kStats;
  r.stats_format = format;
  return r;
}

Request Request::Health() {
  Request r;
  r.kind = RequestKind::kHealth;
  // Health probes are how operators look at an overloaded server: let them
  // jump the queue ahead of the load they are diagnosing.
  r.priority = Priority::kHigh;
  return r;
}

Request Request::CreateObject(std::string class_name,
                              std::vector<AttrInit> inits) {
  Request r;
  r.kind = RequestKind::kMutation;
  r.mutation.kind = MutationOp::Kind::kCreateObject;
  r.mutation.type_name = std::move(class_name);
  r.mutation.inits = std::move(inits);
  return r;
}

Request Request::SetAttribute(Oid oid, std::string attribute, Value value) {
  Request r;
  r.kind = RequestKind::kMutation;
  r.mutation.kind = MutationOp::Kind::kSetAttribute;
  r.mutation.target = oid;
  r.mutation.attribute = std::move(attribute);
  r.mutation.value = std::move(value);
  return r;
}

Request Request::DeleteObject(Oid oid) {
  Request r;
  r.kind = RequestKind::kMutation;
  r.mutation.kind = MutationOp::Kind::kDeleteObject;
  r.mutation.target = oid;
  return r;
}

Request Request::CreateLink(std::string rel_name, Oid source, Oid dest,
                            Oid context, std::vector<AttrInit> inits) {
  Request r;
  r.kind = RequestKind::kMutation;
  r.mutation.kind = MutationOp::Kind::kCreateLink;
  r.mutation.type_name = std::move(rel_name);
  r.mutation.source = source;
  r.mutation.dest = dest;
  r.mutation.context = context;
  r.mutation.inits = std::move(inits);
  return r;
}

Request Request::SetLinkAttribute(Oid oid, std::string attribute,
                                  Value value) {
  Request r;
  r.kind = RequestKind::kMutation;
  r.mutation.kind = MutationOp::Kind::kSetLinkAttribute;
  r.mutation.target = oid;
  r.mutation.attribute = std::move(attribute);
  r.mutation.value = std::move(value);
  return r;
}

Request Request::DeleteLink(Oid oid) {
  Request r;
  r.kind = RequestKind::kMutation;
  r.mutation.kind = MutationOp::Kind::kDeleteLink;
  r.mutation.target = oid;
  return r;
}

Request Request::Custom(std::function<Status(Database&)> fn) {
  Request r;
  r.kind = RequestKind::kMutation;
  r.mutation.kind = MutationOp::Kind::kCustom;
  r.mutation.custom = std::move(fn);
  return r;
}

Request Request::Checkpoint() {
  Request r;
  r.kind = RequestKind::kMutation;
  r.mutation.kind = MutationOp::Kind::kCheckpoint;
  // The re-arm path must beat the backlog it is meant to clear.
  r.priority = Priority::kHigh;
  return r;
}

Request Request::CacheControl(CacheOp op) {
  Request r;
  r.kind = RequestKind::kCacheControl;
  r.cache_op = op;
  // Like kHealth: an operator inspecting (or clearing) the cache under
  // load should not queue behind the load itself.
  r.priority = Priority::kHigh;
  return r;
}

}  // namespace prometheus::server
