// prometheus_shell — an interactive POOL console over a Prometheus
// database, standing in for the thesis prototype's interactive front end
// (the HTTP layer of 6.1.7 played this role remotely).
//
// The shell is a client of the src/server/ service layer: every query and
// mutation travels through a `server::Client`, so the console surfaces the
// same overload/degradation vocabulary a remote front end would see —
// rejected, timed-out and read-only-mode outcomes each get a distinct,
// actionable message instead of a generic error.
//
//   ./build/examples/prometheus_shell [snapshot.pdb]
//   ./build/examples/prometheus_shell --store <dir>    (durable mode)
//   ./build/examples/prometheus_shell --listen <port>  (+ HTTP telemetry)
//   ./build/examples/prometheus_shell --listen <port> --serve   (headless)
//
// With --listen the shell also mounts the remote telemetry plane
// (src/net/): GET /metrics /stats /health /slowlog /debug/requests and
// POST /query /profile on the given port, serving concurrently with the
// console. --serve skips the console loop entirely and serves until
// SIGINT/SIGTERM — the mode the CI smoke job and a scrape target use.
//
// Commands:
//   .help                    this text
//   .classes                 list classes
//   .relationships           list relationship classes
//   .extent <name>           count + first members of an extent
//   .rule <pcl statement>    install a PCL constraint
//   .warnings                show rule warnings
//   .save <file> / .load <file>
//   .demo                    load a small demonstration taxonomy
//   .health                  overload/degradation summary (server-side)
//   .recent                  flight recorder: last completed requests
//   .checkpoint              snapshot + journal rotation; re-arms a
//                            degraded store (durable mode)
//   .deadline <ms>           deadline applied to subsequent queries
//                            (0 = none)
//   .quit
// Anything else is run as a POOL query, e.g.:
//   select t.name from Taxon t where t.rank = 'Genus'
// Prefix a query with `profile` to also print its per-stage span tree.

#include <csignal>

#include <chrono>
#include <cstdio>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "index/index_manager.h"
#include "net/http_server.h"
#include "query/query_engine.h"
#include "rules/pcl.h"
#include "rules/rule_engine.h"
#include "server/client.h"
#include "server/server.h"
#include "storage/recovery.h"
#include "storage/snapshot.h"

using namespace prometheus;

namespace {

AttributeDef Attr(std::string name, ValueType type) {
  AttributeDef a;
  a.name = std::move(name);
  a.type = type;
  return a;
}

void PrintResultSet(const pool::ResultSet& rs) {
  // Column widths from headers and cells.
  std::vector<std::size_t> widths;
  for (const std::string& c : rs.columns) widths.push_back(c.size());
  std::vector<std::vector<std::string>> cells;
  for (const auto& row : rs.rows) {
    std::vector<std::string> line;
    for (std::size_t i = 0; i < row.size(); ++i) {
      std::string text = row[i].ToString();
      if (i < widths.size() && text.size() > widths[i]) {
        widths[i] = text.size();
      }
      line.push_back(std::move(text));
    }
    cells.push_back(std::move(line));
  }
  for (std::size_t i = 0; i < rs.columns.size(); ++i) {
    std::printf("%-*s  ", static_cast<int>(widths[i]), rs.columns[i].c_str());
  }
  std::printf("\n");
  for (const auto& line : cells) {
    for (std::size_t i = 0; i < line.size(); ++i) {
      std::printf("%-*s  ", static_cast<int>(widths[i]), line[i].c_str());
    }
    std::printf("\n");
  }
  std::printf("(%zu rows)\n", rs.rows.size());
}

void PrintHealth(const server::Server::Health& h) {
  std::printf("degraded:        %s\n", h.degraded ? "YES (read-only)" : "no");
  if (!h.store_status.ok()) {
    std::printf("store status:    %s\n", h.store_status.ToString().c_str());
  }
  std::printf("queue:           %zu/%zu  (est. wait %.0f us, %d workers)\n",
              h.queue_depth, h.queue_capacity, h.estimated_wait_micros,
              h.workers);
  std::printf("requests:        accepted %llu, rejected %llu, timed out "
              "%llu, shed %llu, unavailable %llu\n",
              static_cast<unsigned long long>(h.stats.accepted),
              static_cast<unsigned long long>(h.stats.rejected),
              static_cast<unsigned long long>(h.stats.timed_out),
              static_cast<unsigned long long>(h.stats.shed),
              static_cast<unsigned long long>(h.stats.unavailable));
  std::printf("sessions:        %zu active\n", h.sessions_active);
}

/// The transport outcomes a remote client would have to handle, each with
/// a shell-appropriate course of action. Returns true when `resp` carried
/// an executed result the caller should go on to print.
bool ExplainTransport(server::Client& client, const server::Response& resp) {
  using server::ResponseCode;
  switch (resp.code) {
    case ResponseCode::kOk:
      return true;
    case ResponseCode::kRejected:
      std::printf("overloaded: %s\n         -> the request never ran; "
                  "retry in a moment (.health shows queue pressure)\n",
                  resp.status.message().c_str());
      return false;
    case ResponseCode::kTimedOut:
      if (resp.executed) {
        std::printf("timed out mid-execution: %s\n         -> the query ran "
                    "past its deadline and was aborted; raise it with "
                    ".deadline <ms>\n",
                    resp.status.message().c_str());
      } else {
        std::printf("timed out in queue: %s\n         -> it never ran; the "
                    "server is saturated (.health) — retry or raise the "
                    "deadline\n",
                    resp.status.message().c_str());
      }
      return false;
    case ResponseCode::kUnavailable:
      std::printf("read-only mode: %s\n         -> queries still serve; "
                  "run .checkpoint to re-arm the store. Current health:\n",
                  resp.status.message().c_str());
      PrintHealth(client.HealthInfo());
      return false;
    case ResponseCode::kShutdown:
      std::printf("server is shutting down\n");
      return false;
  }
  return false;
}

void PrintRecent(const obs::FlightRecorder& recorder) {
  const std::vector<obs::FlightRecorder::Entry> entries = recorder.Snapshot();
  if (!recorder.enabled()) {
    std::printf("flight recorder disabled (capacity 0)\n");
    return;
  }
  for (const auto& e : entries) {
    std::printf("#%-6llu %-9s %-7s %-11s wait %8.0fus  total %8.0fus  %s\n",
                static_cast<unsigned long long>(e.request_id),
                e.type.c_str(), e.priority.c_str(), e.code.c_str(),
                e.queue_wait_micros, e.total_micros, e.detail.c_str());
  }
  std::printf("(%zu of the last %llu recorded requests retained)\n",
              entries.size(),
              static_cast<unsigned long long>(recorder.recorded_total()));
}

volatile std::sig_atomic_t g_stop = 0;
void HandleStopSignal(int) { g_stop = 1; }

Status LoadDemo(Database& db) {
  if (db.FindClass("Taxon") == nullptr) {
    PROMETHEUS_RETURN_IF_ERROR(
        db.DefineClass("Taxon", {},
                       {Attr("name", ValueType::kString),
                        Attr("rank", ValueType::kString),
                        Attr("year", ValueType::kInt)})
            .status());
    PROMETHEUS_RETURN_IF_ERROR(
        db.DefineRelationship("placed_in", "Taxon", "Taxon", {},
                              {Attr("motivation", ValueType::kString)})
            .status());
  }
  auto mk = [&](const char* name, const char* rank, int year) {
    return db.CreateObject("Taxon", {{"name", Value::String(name)},
                                     {"rank", Value::String(rank)},
                                     {"year", Value::Int(year)}})
        .value_or(kNullOid);
  };
  Oid apiaceae = mk("Apiaceae", "Familia", 1789);
  Oid apium = mk("Apium", "Genus", 1753);
  Oid helio = mk("Heliosciadium", "Genus", 1824);
  Oid graveolens = mk("graveolens", "Species", 1753);
  Oid repens = mk("repens", "Species", 1821);
  (void)db.CreateLink("placed_in", apiaceae, apium);
  (void)db.CreateLink("placed_in", apiaceae, helio);
  (void)db.CreateLink("placed_in", apium, graveolens);
  (void)db.CreateLink("placed_in", helio, repens);
  std::printf("demo taxonomy loaded: %zu taxa, %zu placements\n",
              db.object_count(), db.link_count());
  return Status::Ok();
}

}  // namespace

int main(int argc, char** argv) {
  // Two backing modes: a durable store directory (journalled, supports
  // .checkpoint / degraded-mode recovery) or a plain in-memory database
  // optionally seeded from a snapshot file.
  std::unique_ptr<storage::DurableStore> store;
  Database plain_db;
  Database* db = &plain_db;
  int listen_port = -1;     // -1 = no telemetry plane
  bool headless = false;    // --serve: no console, run until a signal
  std::string store_dir, snapshot_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--store" && i + 1 < argc) {
      store_dir = argv[++i];
    } else if (arg == "--listen" && i + 1 < argc) {
      listen_port = std::atoi(argv[++i]);
    } else if (arg == "--serve") {
      headless = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::printf("unknown option %s\n", arg.c_str());
      return 1;
    } else {
      snapshot_path = arg;
    }
  }
  if (headless && listen_port < 0) {
    std::printf("--serve requires --listen <port>\n");
    return 1;
  }
  if (!store_dir.empty()) {
    auto opened = storage::DurableStore::Open(store_dir);
    if (!opened.ok()) {
      std::printf("cannot open store %s: %s\n", store_dir.c_str(),
                  opened.status().ToString().c_str());
      return 1;
    }
    store = std::move(opened).value();
    db = &store->db();
    std::printf("opened store %s: %zu objects, generation %llu\n",
                store_dir.c_str(), db->object_count(),
                static_cast<unsigned long long>(store->generation()));
  } else if (!snapshot_path.empty()) {
    Status st = storage::LoadSnapshot(db, snapshot_path);
    if (!st.ok()) {
      std::printf("cannot load %s: %s\n", snapshot_path.c_str(),
                  st.ToString().c_str());
      return 1;
    }
    std::printf("loaded %s: %zu objects, %zu links\n", snapshot_path.c_str(),
                db->object_count(), db->link_count());
  }
  IndexManager indexes(db);
  RuleEngine rules(db);

  server::Server::Options options;
  options.indexes = &indexes;
  options.store = store.get();
  server::Server server(db, options);
  server::Client client(&server);
  // An engine for .explain only (planning reads the schema, so it runs
  // under the server's lock like everything else).
  pool::QueryEngine engine(db, &indexes);

  // While the server runs, database access flows through it; `with_db`
  // runs a closure under the exclusive lock for the meta commands.
  auto with_db = [&](std::function<Status(Database&)> fn) {
    Status st = client.Mutate(std::move(fn));
    if (!st.ok()) std::printf("%s\n", st.ToString().c_str());
  };

  // The remote telemetry plane, sharing this server with the console.
  std::unique_ptr<net::HttpFrontEnd> front_end;
  if (listen_port >= 0) {
    net::HttpFrontEnd::Options net_options;
    net_options.port = listen_port;
    front_end = std::make_unique<net::HttpFrontEnd>(&server, net_options);
    Status st = front_end->Start();
    if (!st.ok()) {
      std::printf("cannot listen on port %d: %s\n", listen_port,
                  st.ToString().c_str());
      return 1;
    }
    std::printf("telemetry plane on http://127.0.0.1:%d — GET /metrics "
                "/stats /health /slowlog /debug/requests, POST /query "
                "/profile\n",
                front_end->port());
  }

  if (headless) {
    // Scrape-target mode: serve HTTP until SIGINT/SIGTERM.
    std::signal(SIGINT, HandleStopSignal);
    std::signal(SIGTERM, HandleStopSignal);
    while (g_stop == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    std::printf("shutting down\n");
    front_end->Stop();
    server.Shutdown();
    return 0;
  }

  std::chrono::milliseconds deadline_ms{0};  // 0 = no deadline

  std::printf("Prometheus shell — type .help for commands, .quit to exit\n");
  std::string line;
  while (std::printf("pool> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    // Trim.
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.pop_back();
    }
    if (line.empty()) continue;
    if (line[0] == '.') {
      std::istringstream in(line);
      std::string cmd;
      in >> cmd;
      if (cmd == ".quit" || cmd == ".exit") break;
      if (cmd == ".help") {
        std::printf(
            ".classes .relationships .extent <name> .explain <query> "
            ".rule <pcl> .warnings .save <f> .load <f> .demo .health "
            ".recent .checkpoint .deadline <ms> .quit\n"
            "anything else runs as POOL\n");
      } else if (cmd == ".classes") {
        with_db([](Database& db) {
          for (const ClassDef* cls : db.classes()) {
            std::printf("%s%s (%zu attributes)\n", cls->name().c_str(),
                        cls->is_abstract() ? " [abstract]" : "",
                        cls->attributes().size());
          }
          return Status::Ok();
        });
      } else if (cmd == ".relationships") {
        with_db([](Database& db) {
          for (const RelationshipDef* rel : db.relationships()) {
            std::printf("%s: %s -> %s\n", rel->name().c_str(),
                        rel->source_class()->name().c_str(),
                        rel->target_class()->name().c_str());
          }
          return Status::Ok();
        });
      } else if (cmd == ".extent") {
        std::string name;
        in >> name;
        with_db([&name](Database& db) {
          std::vector<Oid> extent = db.FindClass(name) != nullptr
                                        ? db.Extent(name)
                                        : db.LinkExtent(name);
          std::printf("%zu members", extent.size());
          for (std::size_t i = 0; i < extent.size() && i < 10; ++i) {
            std::printf(" @%llu", static_cast<unsigned long long>(extent[i]));
          }
          std::printf("\n");
          return Status::Ok();
        });
      } else if (cmd == ".explain") {
        std::string q = line.substr(9);
        with_db([&](Database&) {
          auto plan = engine.Explain(q);
          std::printf("%s", plan.ok() ? plan.value().c_str()
                                      : (plan.status().ToString() + "\n")
                                            .c_str());
          return Status::Ok();
        });
      } else if (cmd == ".rule") {
        std::string pcl = line.substr(5);
        with_db([&](Database&) {
          auto installed = InstallPcl(&rules, pcl);
          std::printf("%s\n", installed.ok()
                                  ? "rule installed"
                                  : installed.status().ToString().c_str());
          return Status::Ok();
        });
      } else if (cmd == ".warnings") {
        for (const RuleViolation& v : rules.warnings()) {
          std::printf("%s: %s\n", v.rule_name.c_str(), v.message.c_str());
        }
        std::printf("(%zu warnings)\n", rules.warnings().size());
      } else if (cmd == ".save") {
        std::string path;
        in >> path;
        with_db([&path](Database& db) {
          Status st = storage::SaveSnapshot(db, path);
          std::printf("%s\n", st.ToString().c_str());
          return Status::Ok();
        });
      } else if (cmd == ".load") {
        std::string path;
        in >> path;
        with_db([&path](Database& db) {
          Status st = storage::LoadSnapshot(&db, path);
          std::printf("%s\n", st.ToString().c_str());
          return Status::Ok();
        });
      } else if (cmd == ".demo") {
        with_db([](Database& db) { return LoadDemo(db); });
      } else if (cmd == ".health") {
        PrintHealth(client.HealthInfo());
      } else if (cmd == ".recent") {
        PrintRecent(server.flight_recorder());
      } else if (cmd == ".checkpoint") {
        if (store == nullptr) {
          std::printf("no durable store attached — start the shell with "
                      "--store <dir>\n");
        } else {
          Status st = client.Checkpoint();
          if (st.ok()) {
            std::printf("checkpoint written (generation %llu)%s\n",
                        static_cast<unsigned long long>(store->generation()),
                        server.degraded() ? "" : "; store is armed");
          } else {
            std::printf("checkpoint failed: %s\n", st.ToString().c_str());
          }
        }
      } else if (cmd == ".deadline") {
        long long ms = 0;
        in >> ms;
        deadline_ms = std::chrono::milliseconds(ms < 0 ? 0 : ms);
        if (deadline_ms.count() == 0) {
          std::printf("queries run without a deadline\n");
        } else {
          std::printf("queries now carry a %lld ms deadline\n",
                      static_cast<long long>(deadline_ms.count()));
        }
      } else {
        std::printf("unknown command %s\n", cmd.c_str());
      }
      continue;
    }
    // POOL queries travel through the server like any remote client's
    // would — deadline attached, transport outcome explained.
    server::Request req = server::Request::Query(line);
    if (deadline_ms.count() > 0) req.WithTimeout(deadline_ms);
    server::Response resp = client.Call(std::move(req));
    if (!ExplainTransport(client, resp)) continue;
    if (!resp.status.ok()) {
      std::printf("error: %s\n", resp.status.ToString().c_str());
      continue;
    }
    PrintResultSet(resp.result);
    if (!resp.text.empty()) std::printf("%s", resp.text.c_str());
  }
  std::printf("\n");
  if (front_end != nullptr) front_end->Stop();
  return 0;
}
