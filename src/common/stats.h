#ifndef PROMETHEUS_COMMON_STATS_H_
#define PROMETHEUS_COMMON_STATS_H_

// Shared statistics and serialization helpers used by both the benchmark
// harness (bench/bench_util.h) and the observability layer (src/obs).
// Hoisted out of the benches the moment the engine itself needed them —
// one implementation of percentile math and JSON emission, not two.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

namespace prometheus::stats {

// ------------------------------------------------------------ percentiles

/// The `p`-th percentile (0..100) of `samples` by linear interpolation
/// between closest ranks. Copies and sorts; 0 on an empty input.
inline double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  if (p <= 0) return samples.front();
  if (p >= 100) return samples.back();
  const double rank = (p / 100.0) * static_cast<double>(samples.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples.size()) return samples.back();
  return samples[lo] + frac * (samples[lo + 1] - samples[lo]);
}

/// The latency digest every serving benchmark (and the metrics snapshot
/// code) reports.
struct LatencyStats {
  std::size_t count = 0;
  double mean = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
  double max = 0;
};

/// Digests a latency sample set (any unit; typically milliseconds).
inline LatencyStats SummarizeLatencies(const std::vector<double>& samples) {
  LatencyStats stats;
  stats.count = samples.size();
  if (samples.empty()) return stats;
  double sum = 0;
  for (double s : samples) {
    sum += s;
    stats.max = std::max(stats.max, s);
  }
  stats.mean = sum / static_cast<double>(samples.size());
  stats.p50 = Percentile(samples, 50);
  stats.p95 = Percentile(samples, 95);
  stats.p99 = Percentile(samples, 99);
  return stats;
}

// ------------------------------------------------------------------- JSON

/// Minimal JSON emitter for machine-readable output (`BENCH_*.json` files,
/// metrics snapshots): nested objects/arrays with automatic comma
/// placement. No escaping beyond the characters metric and benchmark names
/// actually use.
class JsonWriter {
 public:
  JsonWriter& BeginObject() { return Open('{'); }
  JsonWriter& EndObject() { return CloseWith('}'); }
  JsonWriter& BeginArray() { return Open('['); }
  JsonWriter& EndArray() { return CloseWith(']'); }

  /// Emits `"key":` — must be followed by a value or Begin*.
  JsonWriter& Key(const std::string& key) {
    Comma();
    out_ += '"';
    Escape(key);
    out_ += "\":";
    pending_value_ = true;
    return *this;
  }

  JsonWriter& String(const std::string& v) {
    Comma();
    out_ += '"';
    Escape(v);
    out_ += '"';
    return *this;
  }
  JsonWriter& Number(double v) {
    Comma();
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    out_ += buf;
    return *this;
  }
  JsonWriter& Int(long long v) {
    Comma();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& Uint(unsigned long long v) {
    Comma();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& Bool(bool v) {
    Comma();
    out_ += v ? "true" : "false";
    return *this;
  }

  const std::string& str() const { return out_; }

 private:
  JsonWriter& Open(char c) {
    Comma();
    out_ += c;
    depth_comma_.push_back(false);
    return *this;
  }
  JsonWriter& CloseWith(char c) {
    out_ += c;
    if (!depth_comma_.empty()) depth_comma_.pop_back();
    if (!depth_comma_.empty()) depth_comma_.back() = true;
    return *this;
  }
  void Comma() {
    if (pending_value_) {  // value right after a key: no comma
      pending_value_ = false;
      return;
    }
    if (!depth_comma_.empty()) {
      if (depth_comma_.back()) out_ += ',';
      depth_comma_.back() = true;
    }
  }
  void Escape(const std::string& s) {
    for (char c : s) {
      switch (c) {
        case '"':
          out_ += "\\\"";
          break;
        case '\\':
          out_ += "\\\\";
          break;
        case '\n':
          out_ += "\\n";
          break;
        case '\r':
          out_ += "\\r";
          break;
        case '\t':
          out_ += "\\t";
          break;
        default:
          out_ += c;
      }
    }
  }

  std::string out_;
  std::vector<bool> depth_comma_;
  bool pending_value_ = false;
};

/// Writes `content` to `path` (truncating); true on success.
inline bool WriteTextFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t n = std::fwrite(content.data(), 1, content.size(), f);
  const bool ok = n == content.size() && std::fclose(f) == 0;
  if (n != content.size()) std::fclose(f);
  return ok;
}

}  // namespace prometheus::stats

#endif  // PROMETHEUS_COMMON_STATS_H_
