# Empty compiler generated dependencies file for prometheus_storage.
# This may be replaced when dependencies are built.
