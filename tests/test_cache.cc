// The query cache (src/cache/): plan-tier LRU and schema-generation
// invalidation, result-tier byte-budgeted LRU and epoch validation, the
// server integration (hit/miss envelope flags, kCacheControl, PROFILE of a
// hit), and the staleness stress the subsystem's correctness claim rests
// on — concurrent readers over cached entries must never observe a result
// older than the writes they provably happened after.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cache/plan_cache.h"
#include "cache/query_cache.h"
#include "cache/result_cache.h"
#include "cache/result_size.h"
#include "query/query_engine.h"
#include "server/client.h"
#include "server/server.h"

namespace {

using prometheus::AttributeDef;
using prometheus::Database;
using prometheus::Oid;
using prometheus::Status;
using prometheus::Value;
using prometheus::ValueType;
using prometheus::cache::PlanCache;
using prometheus::cache::PlanEntry;
using prometheus::cache::QueryCache;
using prometheus::cache::QueryCacheConfig;
using prometheus::cache::ResultCache;
using prometheus::pool::ResultSet;
using prometheus::server::CacheOp;
using prometheus::server::Client;
using prometheus::server::Request;
using prometheus::server::Response;
using prometheus::server::ResponseCode;
using prometheus::server::Server;

AttributeDef Attr(std::string name, ValueType type) {
  AttributeDef def;
  def.name = std::move(name);
  def.type = type;
  return def;
}

std::shared_ptr<const ResultSet> MakeRows(std::int64_t v) {
  auto rs = std::make_shared<ResultSet>();
  rs->columns = {"v"};
  rs->rows.push_back({Value::Int(v)});
  return rs;
}

// ------------------------------------------------------------ plan cache

TEST(PlanCacheTest, LookupReturnsInsertedEntryUntilLruEvicts) {
  PlanCache cache(PlanCache::Config{/*max_entries=*/2, /*enabled=*/true});
  cache.Insert("q1", std::make_shared<PlanEntry>());
  cache.Insert("q2", std::make_shared<PlanEntry>());
  EXPECT_NE(cache.Lookup("q1"), nullptr);
  EXPECT_NE(cache.Lookup("q2"), nullptr);
  // q1 was touched least recently... no: Lookup refreshed both; q1 is now
  // the older of the two, so a third insert evicts it.
  cache.Insert("q3", std::make_shared<PlanEntry>());
  EXPECT_EQ(cache.Lookup("q1"), nullptr);
  EXPECT_NE(cache.Lookup("q2"), nullptr);
  EXPECT_NE(cache.Lookup("q3"), nullptr);
  const PlanCache::Stats s = cache.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.entries, 2u);
}

TEST(PlanCacheTest, SchemaChangeInvalidatesLazily) {
  PlanCache cache(PlanCache::Config{});
  cache.Insert("q", std::make_shared<PlanEntry>());
  EXPECT_NE(cache.Lookup("q"), nullptr);
  cache.OnSchemaChange();
  EXPECT_EQ(cache.schema_generation(), 1u);
  // The stale entry is erased by the lookup that discovers it.
  EXPECT_EQ(cache.Lookup("q"), nullptr);
  const PlanCache::Stats s = cache.stats();
  EXPECT_EQ(s.invalidations, 1u);
  EXPECT_EQ(s.entries, 0u);
  // Re-inserted under the new generation, it serves again.
  cache.Insert("q", std::make_shared<PlanEntry>());
  EXPECT_NE(cache.Lookup("q"), nullptr);
}

TEST(PlanCacheTest, DisabledCacheNeverServes) {
  PlanCache cache(PlanCache::Config{/*max_entries=*/8, /*enabled=*/false});
  cache.Insert("q", std::make_shared<PlanEntry>());
  EXPECT_EQ(cache.Lookup("q"), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
}

// ---------------------------------------------------------- result cache

TEST(ResultCacheTest, EpochMismatchInvalidatesEntry) {
  ResultCache cache(ResultCache::Config{});
  cache.Insert("q", /*epoch=*/7, MakeRows(1), /*bytes=*/100);
  std::shared_ptr<const ResultSet> hit = cache.Lookup("q", 7);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->rows[0][0].AsInt(), 1);
  // A bumped epoch (any committed write) makes the entry unservable; the
  // discovering lookup erases it.
  EXPECT_EQ(cache.Lookup("q", 8), nullptr);
  const ResultCache::Stats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.invalidations, 1u);
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.bytes, 0u);
}

TEST(ResultCacheTest, ByteBudgetEvictsLeastRecentlyUsed) {
  ResultCache::Config config;
  config.max_bytes = 300;
  config.shards = 1;  // deterministic: all keys share one budget slice
  config.max_entry_bytes = 300;
  ResultCache cache(config);
  cache.Insert("a", 1, MakeRows(1), 100);
  cache.Insert("b", 1, MakeRows(2), 100);
  cache.Insert("c", 1, MakeRows(3), 100);
  EXPECT_EQ(cache.stats().entries, 3u);
  // Touch "a" so "b" is the LRU victim when "d" overflows the budget.
  EXPECT_NE(cache.Lookup("a", 1), nullptr);
  cache.Insert("d", 1, MakeRows(4), 100);
  EXPECT_EQ(cache.Lookup("b", 1), nullptr);
  EXPECT_NE(cache.Lookup("a", 1), nullptr);
  EXPECT_NE(cache.Lookup("c", 1), nullptr);
  EXPECT_NE(cache.Lookup("d", 1), nullptr);
  const ResultCache::Stats s = cache.stats();
  EXPECT_GE(s.evictions, 1u);
  EXPECT_LE(s.bytes, 300u);
}

TEST(ResultCacheTest, OversizeResultsAreNeverCached) {
  ResultCache::Config config;
  config.max_bytes = 1u << 20;
  config.max_entry_bytes = 64;
  ResultCache cache(config);
  cache.Insert("big", 1, MakeRows(1), 1000);
  EXPECT_EQ(cache.Lookup("big", 1), nullptr);
  EXPECT_EQ(cache.stats().oversize, 1u);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ResultCacheTest, ClearDropsEverything) {
  ResultCache cache(ResultCache::Config{});
  cache.Insert("a", 1, MakeRows(1), 10);
  cache.Insert("b", 1, MakeRows(2), 10);
  cache.Clear();
  EXPECT_EQ(cache.Lookup("a", 1), nullptr);
  EXPECT_EQ(cache.Lookup("b", 1), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);
}

TEST(ResultCacheTest, ApproxResultBytesCountsStringsAndRows) {
  ResultSet rs;
  rs.columns = {"name"};
  rs.rows.push_back({Value::String(std::string(1000, 'x'))});
  EXPECT_GE(prometheus::cache::ApproxResultBytes(rs), 1000u);
}

// ----------------------------------------------------- server integration

std::unique_ptr<Database> MakePartsDb() {
  auto db = std::make_unique<Database>();
  EXPECT_TRUE(db->DefineClass("Part", {},
                              {Attr("name", ValueType::kString),
                               Attr("a", ValueType::kInt)})
                  .ok());
  return db;
}

TEST(ServerCacheTest, SecondIdenticalQueryHitsWithSameRows) {
  auto db = MakePartsDb();
  {
    Database::WriteGuard guard(*db);
    ASSERT_TRUE(db->CreateObject("Part", {{"name", Value::String("bolt")},
                                          {"a", Value::Int(7)}})
                    .ok());
  }
  Server server(db.get());
  auto client = std::make_unique<Client>(&server);
  const std::string q = "select p.a from Part p where p.name = 'bolt'";

  Response first = client->Call(Request::Query(q));
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first.cache_checked);
  EXPECT_FALSE(first.cache_hit);

  Response second = client->Call(Request::Query(q));
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.cache_checked);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_TRUE(second.executed);
  EXPECT_EQ(second.epoch, first.epoch);
  ASSERT_EQ(second.result.rows.size(), 1u);
  EXPECT_EQ(second.result.rows[0][0].AsInt(), 7);

  // A hit is an accepted, executed query in the books.
  const Server::Stats stats = server.stats();
  EXPECT_EQ(stats.queries, 2u);
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_GE(server.query_cache().results().stats().hits, 1u);
}

TEST(ServerCacheTest, CommittedWriteInvalidatesCachedResult) {
  auto db = MakePartsDb();
  Oid oid;
  {
    Database::WriteGuard guard(*db);
    auto created = db->CreateObject("Part", {{"name", Value::String("nut")},
                                             {"a", Value::Int(1)}});
    ASSERT_TRUE(created.ok());
    oid = created.value();
  }
  Server server(db.get());
  auto client = std::make_unique<Client>(&server);
  const std::string q = "select p.a from Part p where p.name = 'nut'";

  ASSERT_TRUE(client->Call(Request::Query(q)).ok());  // warm
  ASSERT_TRUE(client->Call(Request::SetAttribute(oid, "a", Value::Int(2)))
                  .ok());
  Response after = client->Call(Request::Query(q));
  ASSERT_TRUE(after.ok());
  // Never the stale 1: the epoch bump made the cached entry unservable.
  EXPECT_FALSE(after.cache_hit);
  ASSERT_EQ(after.result.rows.size(), 1u);
  EXPECT_EQ(after.result.rows[0][0].AsInt(), 2);
  EXPECT_GE(server.query_cache().results().stats().invalidations, 1u);
}

TEST(ServerCacheTest, SchemaDdlBumpsPlanGeneration) {
  auto db = MakePartsDb();
  Server server(db.get());
  auto client = std::make_unique<Client>(&server);
  const std::string q = "select p.name from Part p";
  ASSERT_TRUE(client->Call(Request::Query(q)).ok());
  const std::uint64_t gen_before =
      server.query_cache().plans().schema_generation();
  ASSERT_TRUE(client
                  ->Call(Request::Custom([](Database& d) {
                    return d
                        .DefineClass("Widget", {},
                                     {Attr("w", ValueType::kInt)})
                        .status();
                  }))
                  .ok());
  EXPECT_GT(server.query_cache().plans().schema_generation(), gen_before);
  // The replanned query still answers correctly.
  Response after = client->Call(Request::Query(q));
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.result.rows.size(), 0u);
}

TEST(ServerCacheTest, CacheControlRoundTrip) {
  auto db = MakePartsDb();
  Server server(db.get());
  auto client = std::make_unique<Client>(&server);
  const std::string q = "select p.name from Part p";
  ASSERT_TRUE(client->Call(Request::Query(q)).ok());
  ASSERT_TRUE(client->Call(Request::Query(q)).cache_hit);

  // stats: a field/value table plus the JSON payload.
  Response stats = client->Call(Request::CacheControl(CacheOp::kStats));
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats.result.columns.size(), 2u);
  EXPECT_NE(stats.text.find("\"result\""), std::string::npos);
  EXPECT_NE(stats.text.find("\"plan\""), std::string::npos);

  // clear: the warmed entry is gone, the next run misses.
  ASSERT_TRUE(client->Call(Request::CacheControl(CacheOp::kClear)).ok());
  EXPECT_EQ(server.query_cache().results().stats().entries, 0u);
  EXPECT_FALSE(client->Call(Request::Query(q)).cache_hit);

  // off: queries stop consulting the cache entirely.
  ASSERT_TRUE(client->Call(Request::CacheControl(CacheOp::kDisable)).ok());
  Response off = client->Call(Request::Query(q));
  ASSERT_TRUE(off.ok());
  EXPECT_FALSE(off.cache_checked);

  // on: the first run re-warms, the second hits again.
  ASSERT_TRUE(client->Call(Request::CacheControl(CacheOp::kEnable)).ok());
  ASSERT_TRUE(client->Call(Request::Query(q)).ok());
  EXPECT_TRUE(client->Call(Request::Query(q)).cache_hit);
}

TEST(ServerCacheTest, ProfiledHitEmitsCacheSpan) {
  auto db = MakePartsDb();
  {
    Database::WriteGuard guard(*db);
    ASSERT_TRUE(db->CreateObject("Part", {{"name", Value::String("pin")},
                                          {"a", Value::Int(3)}})
                    .ok());
  }
  Server server(db.get());
  auto client = std::make_unique<Client>(&server);
  const std::string q = "select p.a from Part p";

  // A profiled miss reports the plan-stage view and a cache span with the
  // miss detail (the engine consulted the plan tier).
  Response miss = client->Call(Request::Query("profile " + q));
  ASSERT_TRUE(miss.ok());
  EXPECT_FALSE(miss.cache_hit);
  EXPECT_NE(miss.text.find("cache"), std::string::npos);

  // The profiled run cached its rows under the stripped key: a *plain* run
  // of the same select hits, and a profiled one collapses to a cache span.
  Response plain = client->Call(Request::Query(q));
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE(plain.cache_hit);
  ASSERT_EQ(plain.result.rows.size(), 1u);
  EXPECT_EQ(plain.result.rows[0][0].AsInt(), 3);

  Response hit = client->Call(Request::Query("profile " + q));
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_NE(hit.text.find("result hit"), std::string::npos);
  // The stage table is the profile rendering; the raw rows came from the
  // shared entry and are reported through the trace's cardinality.
  EXPECT_NE(hit.text.find("rows=1"), std::string::npos);
}

TEST(ServerCacheTest, DisabledServerNeverReportsCacheState) {
  auto db = MakePartsDb();
  Server::Options options;
  options.cache.enabled = false;
  Server server(db.get(), options);
  auto client = std::make_unique<Client>(&server);
  const std::string q = "select p.name from Part p";
  Response r1 = client->Call(Request::Query(q));
  Response r2 = client->Call(Request::Query(q));
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(r1.cache_checked);
  EXPECT_FALSE(r2.cache_checked);
  EXPECT_FALSE(r2.cache_hit);
}

// --------------------------------------------------------------- stress

// The staleness protocol: one writer walks an attribute through a
// monotonically increasing sequence and publishes, *after* each mutation's
// response, the value every later read must at least see. Readers sample
// that floor before submitting, then assert the (often cached) answer is
// no older. A result cache serving by anything weaker than current-epoch
// validation fails this within a few iterations. A DDL thread churns the
// plan tier's schema generation at the same time, and a second hot query
// keeps the result tier busy with genuine hits.
TEST(ServerCacheStressTest, ConcurrentReadersNeverObserveStaleResults) {
  auto db = MakePartsDb();
  Oid oid;
  {
    Database::WriteGuard guard(*db);
    auto created = db->CreateObject("Part", {{"name", Value::String("hot")},
                                             {"a", Value::Int(0)}});
    ASSERT_TRUE(created.ok());
    oid = created.value();
  }
  Server::Options options;
  options.worker_threads = 4;
  options.queue_capacity = 4096;
  Server server(db.get(), options);

  constexpr int kWrites = 200;
  constexpr int kReaders = 4;
  std::atomic<std::int64_t> floor{0};
  std::atomic<bool> writers_done{false};
  std::atomic<int> stale_reads{0};
  std::atomic<int> hits_observed{0};

  std::thread writer([&] {
    Client client(&server);
    for (int i = 1; i <= kWrites; ++i) {
      Response resp =
          client.Call(Request::SetAttribute(oid, "a", Value::Int(i)));
      ASSERT_TRUE(resp.ok());
      // The mutation committed and its epoch bump happened: every read
      // submitted from here on must see at least i.
      floor.store(i, std::memory_order_release);
    }
    writers_done.store(true, std::memory_order_release);
  });

  std::thread ddl([&] {
    Client client(&server);
    int n = 0;
    while (!writers_done.load(std::memory_order_acquire)) {
      const std::string name = "Churn" + std::to_string(n++);
      ASSERT_TRUE(client
                      .Call(Request::Custom([name](Database& d) {
                        return d
                            .DefineClass(name, {},
                                         {Attr("x", ValueType::kInt)})
                            .status();
                      }))
                      .ok());
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      Client client(&server);
      const std::string hot = "select p.a from Part p";
      const std::string steady = "select p.name from Part p";
      while (!writers_done.load(std::memory_order_acquire)) {
        const std::int64_t lower = floor.load(std::memory_order_acquire);
        Response resp = client.Call(Request::Query(hot));
        ASSERT_TRUE(resp.ok());
        ASSERT_EQ(resp.result.rows.size(), 1u);
        if (resp.result.rows[0][0].AsInt() < lower) {
          stale_reads.fetch_add(1);
        }
        if (resp.cache_hit) hits_observed.fetch_add(1);
        // The steady query's rows never change, so it exercises genuine
        // hit traffic whenever the writer pauses between commits.
        Response s = client.Call(Request::Query(steady));
        ASSERT_TRUE(s.ok());
        ASSERT_EQ(s.result.rows.size(), 1u);
      }
    });
  }

  writer.join();
  ddl.join();
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(stale_reads.load(), 0);

  // Quiescent: the next repeat pair must warm then hit, and carry the
  // final value — the cache converged to the last committed state.
  Client client(&server);
  Response warm = client.Call(Request::Query("select p.a from Part p"));
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm.result.rows[0][0].AsInt(), kWrites);
  Response hit = client.Call(Request::Query("select p.a from Part p"));
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_EQ(hit.result.rows[0][0].AsInt(), kWrites);
}

}  // namespace
