#include <gtest/gtest.h>

#include <sstream>

#include "classification/classification.h"
#include "storage/snapshot.h"

namespace prometheus::storage {
namespace {

AttributeDef Attr(std::string name, ValueType type,
                  Value def = Value::Null()) {
  AttributeDef a;
  a.name = std::move(name);
  a.type = type;
  a.default_value = std::move(def);
  return a;
}

TEST(ValueCodecTest, RoundTripsEveryType) {
  std::vector<Value> cases = {
      Value::Null(),
      Value::Bool(true),
      Value::Bool(false),
      Value::Int(-42),
      Value::Double(3.25),
      Value::String(""),
      Value::String("with spaces and \n newline and 5:prefix"),
      Value::Ref(123456789),
      Value::MakeList({Value::Int(1), Value::String("x"),
                       Value::MakeList({Value::Null(), Value::Ref(7)})}),
  };
  for (const Value& v : cases) {
    std::string encoded = EncodeValue(v);
    std::size_t pos = 0;
    auto decoded = DecodeValue(encoded, &pos);
    ASSERT_TRUE(decoded.ok()) << encoded;
    EXPECT_TRUE(decoded.value().Equals(v)) << encoded;
    EXPECT_EQ(pos, encoded.size());
  }
}

TEST(ValueCodecTest, RejectsCorruptInput) {
  std::size_t pos = 0;
  EXPECT_FALSE(DecodeValue("", &pos).ok());
  pos = 0;
  EXPECT_FALSE(DecodeValue("s9999:hi", &pos).ok());
  pos = 0;
  EXPECT_FALSE(DecodeValue("q", &pos).ok());
  pos = 0;
  EXPECT_FALSE(DecodeValue("sZZ:x", &pos).ok());
}

/// Builds a database exercising every persisted feature: inheritance,
/// relationship semantics, link attributes, contexts, synonyms.
void BuildSample(Database* db, ClassificationManager* mgr, Oid* out_ctx) {
  ASSERT_TRUE(db->DefineClass("Taxon", {},
                              {Attr("name", ValueType::kString),
                               Attr("year", ValueType::kInt, Value::Int(0))})
                  .ok());
  ASSERT_TRUE(db->DefineClass("Genus", {"Taxon"}).ok());
  ASSERT_TRUE(db->DefineClass("Specimen", {},
                              {Attr("tags", ValueType::kList)})
                  .ok());
  RelationshipSemantics agg;
  agg.kind = RelationshipKind::kAggregation;
  agg.exclusive = true;
  agg.lifetime_dependent = true;
  agg.max_in = 1;
  ASSERT_TRUE(db->DefineRelationship("circumscribes", "Taxon", "Specimen",
                                     agg,
                                     {Attr("motivation", ValueType::kString)})
                  .ok());
  ASSERT_TRUE(db->DefineRelationship("linked", "Taxon", "Taxon").ok());
  ASSERT_TRUE(db->DefineRelationship("placed_in", "Genus", "Genus", {}, {},
                                     {"linked"})
                  .ok());

  Oid g = db->CreateObject("Genus", {{"name", Value::String("Apium")},
                                     {"year", Value::Int(1753)}})
              .value();
  Oid s1 = db->CreateObject(
                 "Specimen",
                 {{"tags", Value::MakeList({Value::String("holotype")})}})
               .value();
  Oid s2 = db->CreateObject("Specimen").value();
  Oid ctx = mgr->Create("C1", "Linnaeus", 1753, "Sp. Pl.").value();
  ASSERT_TRUE(
      mgr->AddEdge(ctx, "circumscribes", g, s1, "typical leaf").ok());
  ASSERT_TRUE(db->CreateLink("circumscribes", g, s2).ok());
  ASSERT_TRUE(db->DeclareSynonym(s1, s2).ok());
  *out_ctx = ctx;
}

TEST(SnapshotTest, RoundTripPreservesEverything) {
  Database db;
  ClassificationManager mgr(&db);
  Oid ctx = kNullOid;
  BuildSample(&db, &mgr, &ctx);

  std::stringstream buffer;
  ASSERT_TRUE(SaveSnapshot(db, buffer).ok());

  Database loaded;
  ASSERT_TRUE(LoadSnapshot(&loaded, buffer).ok());

  // Schema survived.
  ASSERT_NE(loaded.FindClass("Genus"), nullptr);
  EXPECT_TRUE(loaded.FindClass("Genus")->IsSubclassOf(
      loaded.FindClass("Taxon")));
  const RelationshipDef* circ = loaded.FindRelationship("circumscribes");
  ASSERT_NE(circ, nullptr);
  EXPECT_TRUE(circ->semantics().exclusive);
  EXPECT_TRUE(circ->semantics().lifetime_dependent);
  EXPECT_EQ(circ->semantics().max_in, 1u);
  EXPECT_TRUE(loaded.FindRelationship("placed_in")
                  ->IsSubrelationshipOf(loaded.FindRelationship("linked")));

  // Same object/link population, same oids.
  EXPECT_EQ(loaded.object_count(), db.object_count());
  EXPECT_EQ(loaded.link_count(), db.link_count());
  for (Oid oid : db.Extent("Taxon")) {
    ASSERT_NE(loaded.GetObject(oid), nullptr);
    EXPECT_TRUE(loaded.GetAttribute(oid, "name").value().Equals(
        db.GetAttribute(oid, "name").value()));
  }
  // List attribute round-tripped.
  Oid s1 = db.Extent("Specimen")[0];
  EXPECT_TRUE(loaded.GetAttribute(s1, "tags").value().Equals(
      db.GetAttribute(s1, "tags").value()));
  // Contexts and link attributes.
  EXPECT_EQ(loaded.LinksInContext(ctx).size(), 1u);
  Oid lid = loaded.LinksInContext(ctx)[0];
  EXPECT_TRUE(loaded.GetLinkAttribute(lid, "motivation")
                  .value()
                  .Equals(Value::String("typical leaf")));
  // Synonyms.
  std::vector<Oid> specimens = db.Extent("Specimen");
  EXPECT_TRUE(loaded.AreSynonyms(specimens[0], specimens[1]));
  // Oid allocation resumes above the snapshot.
  Oid fresh = loaded.CreateObject("Taxon").value();
  EXPECT_EQ(loaded.GetObject(fresh)->oid, fresh);
  EXPECT_GT(fresh, s1);
}

TEST(SnapshotTest, SemanticsStillEnforcedAfterLoad) {
  Database db;
  ClassificationManager mgr(&db);
  Oid ctx = kNullOid;
  BuildSample(&db, &mgr, &ctx);
  std::stringstream buffer;
  ASSERT_TRUE(SaveSnapshot(db, buffer).ok());
  Database loaded;
  ASSERT_TRUE(LoadSnapshot(&loaded, buffer).ok());
  // The exclusive circumscription still rejects a second owner.
  Oid g2 = loaded.CreateObject("Genus").value();
  Oid s1 = loaded.Extent("Specimen")[0];
  EXPECT_EQ(loaded.CreateLink("circumscribes", g2, s1).status().code(),
            Status::Code::kConstraintViolation);
}

TEST(SnapshotTest, FileRoundTrip) {
  Database db;
  ClassificationManager mgr(&db);
  Oid ctx = kNullOid;
  BuildSample(&db, &mgr, &ctx);
  const std::string path = ::testing::TempDir() + "/prometheus_snapshot.pdb";
  ASSERT_TRUE(SaveSnapshot(db, path).ok());
  Database loaded;
  ASSERT_TRUE(LoadSnapshot(&loaded, path).ok());
  EXPECT_EQ(loaded.object_count(), db.object_count());
  EXPECT_EQ(loaded.link_count(), db.link_count());
}

TEST(SnapshotTest, LoadRequiresEmptyDatabase) {
  Database db;
  ASSERT_TRUE(db.DefineClass("X").ok());
  std::stringstream buffer;
  buffer << "PROMETHEUS-SNAPSHOT-1\nEND\n";
  EXPECT_EQ(LoadSnapshot(&db, buffer).code(),
            Status::Code::kFailedPrecondition);
}

TEST(SnapshotTest, RejectsCorruptStreams) {
  {
    Database db;
    std::stringstream buffer;
    buffer << "NOT-A-SNAPSHOT\n";
    EXPECT_EQ(LoadSnapshot(&db, buffer).code(), Status::Code::kIoError);
  }
  {
    Database db;
    std::stringstream buffer;
    buffer << "PROMETHEUS-SNAPSHOT-1\nBOGUS record\n";
    EXPECT_EQ(LoadSnapshot(&db, buffer).code(), Status::Code::kIoError);
  }
  {
    // Missing END (truncated file).
    Database db;
    std::stringstream buffer;
    buffer << "PROMETHEUS-SNAPSHOT-1\n";
    EXPECT_EQ(LoadSnapshot(&db, buffer).code(), Status::Code::kIoError);
  }
  {
    Database db;
    EXPECT_EQ(LoadSnapshot(&db, "/nonexistent/path/x.pdb").code(),
              Status::Code::kIoError);
  }
}

TEST(SnapshotTest, MethodsAndTemplatesSurvive) {
  Database db;
  ASSERT_TRUE(db.DefineClass("Taxon").ok());
  MethodDef method;
  method.name = "full_name";
  method.return_type = "string";
  method.parameters = {{"bool", "with_author"}};
  ASSERT_TRUE(db.DefineMethod("Taxon", method).ok());
  RelationshipSemantics sem;
  sem.exclusive = true;
  sem.exclusivity_group = "grp";
  AttributeDef why;
  why.name = "why";
  why.type = ValueType::kString;
  ASSERT_TRUE(db.DefineRelationshipTemplate("tpl", sem, {why}).ok());

  std::stringstream buffer;
  ASSERT_TRUE(SaveSnapshot(db, buffer).ok());
  Database loaded;
  ASSERT_TRUE(LoadSnapshot(&loaded, buffer).ok());

  const MethodDef* m = loaded.FindClass("Taxon")->FindMethod("full_name");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->return_type, "string");
  ASSERT_EQ(m->parameters.size(), 1u);
  EXPECT_EQ(m->parameters[0].first, "bool");
  const RelationshipSemantics* tsem = loaded.FindTemplateSemantics("tpl");
  ASSERT_NE(tsem, nullptr);
  EXPECT_TRUE(tsem->exclusive);
  EXPECT_EQ(tsem->exclusivity_group, "grp");
  const std::vector<AttributeDef>* tattrs =
      loaded.FindTemplateAttributes("tpl");
  ASSERT_NE(tattrs, nullptr);
  ASSERT_EQ(tattrs->size(), 1u);
  EXPECT_EQ((*tattrs)[0].name, "why");
}

TEST(SnapshotTest, EmptyDatabaseRoundTrips) {
  Database db;
  std::stringstream buffer;
  ASSERT_TRUE(SaveSnapshot(db, buffer).ok());
  Database loaded;
  ASSERT_TRUE(LoadSnapshot(&loaded, buffer).ok());
  EXPECT_EQ(loaded.object_count(), 0u);
  EXPECT_TRUE(loaded.classes().empty());
}

}  // namespace
}  // namespace prometheus::storage
