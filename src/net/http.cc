#include "net/http.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace prometheus::net {

namespace {

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

bool IsToken(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (c <= ' ' || c == 0x7f || c == ':') return false;
  }
  return true;
}

/// Finds the end of the head (the "\r\n\r\n" separator). Tolerates bare
/// "\n\n" — curl never sends it, but lenient parsing here costs nothing.
/// Returns npos while incomplete; sets `*head_len` to the bytes before the
/// separator and `*sep_len` to the separator's length.
std::size_t FindHeadEnd(std::string_view in, std::size_t* sep_len) {
  const std::size_t crlf = in.find("\r\n\r\n");
  const std::size_t lf = in.find("\n\n");
  if (crlf == std::string_view::npos && lf == std::string_view::npos) {
    return std::string_view::npos;
  }
  if (crlf != std::string_view::npos &&
      (lf == std::string_view::npos || crlf < lf)) {
    *sep_len = 4;
    return crlf;
  }
  *sep_len = 2;
  return lf;
}

/// Splits the head into lines (first line + header lines), trimming one
/// trailing '\r' per line.
std::vector<std::string_view> SplitHeadLines(std::string_view head) {
  std::vector<std::string_view> lines;
  std::size_t pos = 0;
  while (pos <= head.size()) {
    std::size_t nl = head.find('\n', pos);
    std::string_view line = nl == std::string_view::npos
                                ? head.substr(pos)
                                : head.substr(pos, nl - pos);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    lines.push_back(line);
    if (nl == std::string_view::npos) break;
    pos = nl + 1;
  }
  return lines;
}

/// Parses the header lines shared by requests and responses. Returns false
/// (with *error set) on malformed input.
bool ParseHeaderLines(
    const std::vector<std::string_view>& lines, const HttpLimits& limits,
    std::vector<std::pair<std::string, std::string>>* headers,
    std::string* error) {
  for (std::size_t i = 1; i < lines.size(); ++i) {
    std::string_view line = lines[i];
    if (line.empty()) continue;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      *error = "header line without ':'";
      return false;
    }
    std::string_view name = line.substr(0, colon);
    if (!IsToken(name)) {
      *error = "malformed header name";
      return false;
    }
    if (headers->size() >= limits.max_headers) {
      *error = "too many headers";
      return false;
    }
    headers->emplace_back(ToLower(name),
                          std::string(Trim(line.substr(colon + 1))));
  }
  return true;
}

/// Parses Content-Length (0 when absent); rejects Transfer-Encoding,
/// non-numeric or over-limit lengths, and conflicting duplicates (RFC 9112
/// §6.3 — letting the last one win invites desync/smuggling behind a
/// proxy that picked the first).
ParseResult BodyLength(
    const std::vector<std::pair<std::string, std::string>>& headers,
    const HttpLimits& limits, std::size_t* length, std::string* error) {
  *length = 0;
  bool seen = false;
  for (const auto& [name, value] : headers) {
    if (name == "transfer-encoding") {
      *error = "Transfer-Encoding is not supported";
      return ParseResult::kBad;
    }
    if (name == "content-length") {
      if (value.empty() ||
          value.find_first_not_of("0123456789") != std::string::npos) {
        *error = "malformed Content-Length";
        return ParseResult::kBad;
      }
      char* end = nullptr;
      const unsigned long long n = std::strtoull(value.c_str(), &end, 10);
      if (n > limits.max_body_bytes) {
        *error = "body exceeds the size limit";
        return ParseResult::kTooLarge;
      }
      if (seen && static_cast<std::size_t>(n) != *length) {
        *error = "conflicting Content-Length headers";
        return ParseResult::kBad;
      }
      seen = true;
      *length = static_cast<std::size_t>(n);
    }
  }
  return ParseResult::kComplete;
}

const std::string* FindHeader(
    const std::vector<std::pair<std::string, std::string>>& headers,
    const std::string& lower_name) {
  for (const auto& [name, value] : headers) {
    if (name == lower_name) return &value;
  }
  return nullptr;
}

}  // namespace

const std::string* HttpRequest::Header(const std::string& lower_name) const {
  return FindHeader(headers, lower_name);
}

const std::string* HttpResponse::Header(const std::string& lower_name) const {
  return FindHeader(headers, lower_name);
}

bool HttpRequest::KeepAlive() const {
  const std::string* connection = Header("connection");
  if (connection != nullptr) {
    const std::string value = ToLower(*connection);
    if (value.find("close") != std::string::npos) return false;
    if (value.find("keep-alive") != std::string::npos) return true;
  }
  return version == "HTTP/1.1";  // 1.1 defaults to persistent
}

ParseResult ParseHttpRequest(std::string_view in, std::size_t* consumed,
                             HttpRequest* out, std::string* error,
                             const HttpLimits& limits) {
  *consumed = 0;
  std::size_t sep_len = 0;
  const std::size_t head_len = FindHeadEnd(in, &sep_len);
  if (head_len == std::string_view::npos) {
    // No separator yet: bound how much head we are willing to buffer.
    if (in.size() > limits.max_request_line + limits.max_header_bytes) {
      *error = "request head exceeds the size limit";
      return ParseResult::kTooLarge;
    }
    return ParseResult::kIncomplete;
  }
  if (head_len > limits.max_request_line + limits.max_header_bytes) {
    *error = "request head exceeds the size limit";
    return ParseResult::kTooLarge;
  }

  const std::vector<std::string_view> lines =
      SplitHeadLines(in.substr(0, head_len));
  if (lines.empty() || lines[0].size() > limits.max_request_line) {
    *error = "request line exceeds the size limit";
    return ParseResult::kTooLarge;
  }

  // Request line: METHOD SP TARGET SP VERSION.
  std::string_view line = lines[0];
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? std::string_view::npos
                                    : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    *error = "malformed request line";
    return ParseResult::kBad;
  }
  HttpRequest req;
  req.method = std::string(line.substr(0, sp1));
  req.target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
  req.version = std::string(line.substr(sp2 + 1));
  if (!IsToken(req.method) || req.target.empty() || req.target[0] != '/') {
    *error = "malformed method or target";
    return ParseResult::kBad;
  }
  if (req.version != "HTTP/1.1" && req.version != "HTTP/1.0") {
    *error = "unsupported HTTP version";
    return ParseResult::kBad;
  }

  if (!ParseHeaderLines(lines, limits, &req.headers, error)) {
    return ParseResult::kBad;
  }
  std::size_t body_len = 0;
  const ParseResult body_check =
      BodyLength(req.headers, limits, &body_len, error);
  if (body_check != ParseResult::kComplete) return body_check;

  const std::size_t total = head_len + sep_len + body_len;
  if (in.size() < total) return ParseResult::kIncomplete;
  req.body = std::string(in.substr(head_len + sep_len, body_len));
  *out = std::move(req);
  *consumed = total;
  return ParseResult::kComplete;
}

ParseResult ParseHttpResponse(std::string_view in, std::size_t* consumed,
                              HttpResponse* out, std::string* error,
                              const HttpLimits& limits) {
  *consumed = 0;
  std::size_t sep_len = 0;
  const std::size_t head_len = FindHeadEnd(in, &sep_len);
  if (head_len == std::string_view::npos) {
    if (in.size() > limits.max_request_line + limits.max_header_bytes) {
      *error = "response head exceeds the size limit";
      return ParseResult::kTooLarge;
    }
    return ParseResult::kIncomplete;
  }

  const std::vector<std::string_view> lines =
      SplitHeadLines(in.substr(0, head_len));
  if (lines.empty()) {
    *error = "empty response head";
    return ParseResult::kBad;
  }

  // Status line: VERSION SP CODE SP REASON.
  std::string_view line = lines[0];
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos || line.substr(0, 5) != "HTTP/") {
    *error = "malformed status line";
    return ParseResult::kBad;
  }
  HttpResponse resp;
  resp.version = std::string(line.substr(0, sp1));
  std::string_view rest = line.substr(sp1 + 1);
  const std::size_t sp2 = rest.find(' ');
  std::string_view code =
      sp2 == std::string_view::npos ? rest : rest.substr(0, sp2);
  if (code.size() != 3 ||
      code.find_first_not_of("0123456789") != std::string_view::npos) {
    *error = "malformed status code";
    return ParseResult::kBad;
  }
  resp.status_code = (code[0] - '0') * 100 + (code[1] - '0') * 10 +
                     (code[2] - '0');
  if (sp2 != std::string_view::npos) {
    resp.reason = std::string(rest.substr(sp2 + 1));
  }

  if (!ParseHeaderLines(lines, limits, &resp.headers, error)) {
    return ParseResult::kBad;
  }
  std::size_t body_len = 0;
  const ParseResult body_check =
      BodyLength(resp.headers, limits, &body_len, error);
  if (body_check != ParseResult::kComplete) return body_check;

  const std::size_t total = head_len + sep_len + body_len;
  if (in.size() < total) return ParseResult::kIncomplete;
  resp.body = std::string(in.substr(head_len + sep_len, body_len));
  *out = std::move(resp);
  *consumed = total;
  return ParseResult::kComplete;
}

const char* ReasonPhrase(int status_code) {
  switch (status_code) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 410: return "Gone";
    case 413: return "Payload Too Large";
    case 416: return "Range Not Satisfiable";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

void SplitTarget(std::string_view target, std::string_view* path,
                 std::string_view* query) {
  const std::size_t q = target.find('?');
  if (q == std::string_view::npos) {
    *path = target;
    *query = std::string_view();
  } else {
    *path = target.substr(0, q);
    *query = target.substr(q + 1);
  }
}

bool QueryParam(std::string_view query, std::string_view key,
                std::string* value) {
  std::size_t pos = 0;
  while (pos <= query.size()) {
    std::size_t amp = query.find('&', pos);
    if (amp == std::string_view::npos) amp = query.size();
    const std::string_view pair = query.substr(pos, amp - pos);
    const std::size_t eq = pair.find('=');
    const std::string_view k =
        eq == std::string_view::npos ? pair : pair.substr(0, eq);
    if (k == key) {
      if (value != nullptr) {
        *value = eq == std::string_view::npos
                     ? std::string()
                     : std::string(pair.substr(eq + 1));
      }
      return true;
    }
    pos = amp + 1;
  }
  return false;
}

std::string SerializeHttpResponse(
    int status_code, const std::string& content_type, std::string_view body,
    bool keep_alive,
    const std::vector<std::pair<std::string, std::string>>& extra_headers) {
  std::string out = "HTTP/1.1 " + std::to_string(status_code) + " " +
                    ReasonPhrase(status_code) + "\r\n";
  if (!content_type.empty()) {
    out += "Content-Type: " + content_type + "\r\n";
  }
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  for (const auto& [name, value] : extra_headers) {
    out += name + ": " + value + "\r\n";
  }
  out += "\r\n";
  out += body;
  return out;
}

std::string SerializeHttpRequest(
    const std::string& method, const std::string& target,
    std::string_view body,
    const std::vector<std::pair<std::string, std::string>>& headers) {
  std::string out = method + " " + target + " HTTP/1.1\r\n";
  bool has_host = false;
  for (const auto& [name, value] : headers) {
    if (ToLower(name) == "host") has_host = true;
    out += name + ": " + value + "\r\n";
  }
  if (!has_host) out += "Host: localhost\r\n";
  if (!body.empty() || method == "POST" || method == "PUT") {
    out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  out += "\r\n";
  out += body;
  return out;
}

}  // namespace prometheus::net
