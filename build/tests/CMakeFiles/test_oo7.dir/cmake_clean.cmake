file(REMOVE_RECURSE
  "CMakeFiles/test_oo7.dir/test_oo7.cc.o"
  "CMakeFiles/test_oo7.dir/test_oo7.cc.o.d"
  "test_oo7"
  "test_oo7.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_oo7.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
