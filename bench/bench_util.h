#ifndef PROMETHEUS_BENCH_BENCH_UTIL_H_
#define PROMETHEUS_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common/stats.h"

namespace prometheus::bench {

// The percentile/digest/JSON helpers started life here and moved to
// common/stats.h when the metrics layer needed them engine-side; the
// benches keep using them under their historical names.
using stats::JsonWriter;
using stats::LatencyStats;
using stats::Percentile;
using stats::SummarizeLatencies;
using stats::WriteTextFile;

/// Milliseconds taken by the median of `reps` runs of `fn`.
template <typename Fn>
double MedianMillis(Fn&& fn, int reps = 3) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    auto start = std::chrono::steady_clock::now();
    fn();
    auto end = std::chrono::steady_clock::now();
    samples.push_back(
        std::chrono::duration<double, std::milli>(end - start).count());
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

/// Prints the header of a paper-style series table.
inline void PrintTableHeader(const char* title, const char* columns) {
  std::printf("\n=== %s ===\n%s\n", title, columns);
}

}  // namespace prometheus::bench

#endif  // PROMETHEUS_BENCH_BENCH_UTIL_H_
