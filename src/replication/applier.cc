#include "replication/applier.h"

#include "storage/journal.h"
#include "storage/snapshot.h"

namespace prometheus::replication {

namespace {

using storage::Journal;

bool IsSchemaRecord(const std::string& payload) {
  return payload.rfind("CLASS ", 0) == 0 || payload.rfind("TMPL ", 0) == 0 ||
         payload.rfind("REL ", 0) == 0;
}

/// Restores the follower database's normal checking even on early returns.
class ReplayMode {
 public:
  explicit ReplayMode(Database* db) : db_(db) {
    db_->set_events_enabled(false);
    db_->set_semantics_enabled(false);
  }
  ~ReplayMode() {
    db_->set_semantics_enabled(true);
    db_->set_events_enabled(true);
  }

 private:
  Database* db_;
};

}  // namespace

JournalStreamApplier::JournalStreamApplier(Database* db, MirrorFn mirror)
    : db_(db), mirror_(std::move(mirror)) {}

void JournalStreamApplier::StartJournal(bool expect_full) {
  state_ = State::kHeader;
  expect_full_ = expect_full;
  in_prologue_ = false;
  in_txn_ = false;
  boundary_ = 0;
  records_applied_ = 0;
  buffer_.clear();
  scan_ = 0;
  pending_.clear();
}

void JournalStreamApplier::ResumeJournal(std::uint64_t offset,
                                         std::uint64_t records_applied) {
  state_ = State::kStreaming;
  expect_full_ = false;
  in_prologue_ = false;
  in_txn_ = false;
  boundary_ = offset;
  records_applied_ = records_applied;
  buffer_.clear();
  scan_ = 0;
  pending_.clear();
}

void JournalStreamApplier::Rewind() {
  buffer_.clear();
  scan_ = 0;
  pending_.clear();
  in_txn_ = false;
  in_prologue_ = false;
  state_ = boundary_ == 0 ? State::kHeader : State::kStreaming;
}

Status JournalStreamApplier::CompleteUnit(std::size_t unit_end,
                                          bool count_records) {
  PROMETHEUS_RETURN_IF_ERROR(
      mirror_(std::string_view(buffer_.data(), unit_end)));
  if (!pending_.empty()) {
    Database::WriteGuard guard(*db_);
    ReplayMode mode(db_);
    for (const std::string& record : pending_) {
      bool end = false;
      Status st = storage::ApplyRecord(db_, record, &end);
      if (!st.ok()) {
        return Status::IoError("replicated record failed to apply: " +
                               st.ToString());
      }
      if (count_records && !IsSchemaRecord(record)) ++records_applied_;
    }
  }
  pending_.clear();
  boundary_ += unit_end;
  buffer_.erase(0, unit_end);
  scan_ = 0;
  return Status::Ok();
}

Status JournalStreamApplier::Feed(std::string_view bytes) {
  if (state_ == State::kEnd || state_ == State::kCorrupt) {
    return Status::FailedPrecondition(
        "applier is parked (END or corrupt); Rewind() or StartJournal()");
  }
  buffer_.append(bytes.data(), bytes.size());

  if (state_ == State::kHeader) {
    std::size_t consumed = 0;
    const Journal::HeaderParse hp = Journal::ParseHeader(buffer_, &consumed);
    switch (hp) {
      case Journal::HeaderParse::kNeedMore:
        return Status::Ok();
      case Journal::HeaderParse::kBad:
        state_ = State::kCorrupt;
        return Status::Ok();
      case Journal::HeaderParse::kFull:
        if (!expect_full_) {
          state_ = State::kCorrupt;  // expected a continuation journal
          return Status::Ok();
        }
        // The header + schema prologue + EOS form one atomic unit: a
        // half-shipped prologue must not leave a half-defined schema.
        in_prologue_ = true;
        scan_ = consumed;
        state_ = State::kStreaming;
        break;
      case Journal::HeaderParse::kCont: {
        if (expect_full_) {
          state_ = State::kCorrupt;
          return Status::Ok();
        }
        // A continuation header is a complete (record-free) unit.
        state_ = State::kStreaming;
        PROMETHEUS_RETURN_IF_ERROR(CompleteUnit(consumed, false));
        break;
      }
    }
  }

  while (state_ == State::kStreaming) {
    std::string payload;
    std::size_t consumed = 0;
    const Journal::FrameParse fp = Journal::ParseFrame(
        std::string_view(buffer_).substr(scan_), &payload, &consumed);
    if (fp == Journal::FrameParse::kNeedMore) break;
    if (fp == Journal::FrameParse::kCorrupt) {
      state_ = State::kCorrupt;
      break;
    }
    if (payload == Journal::kMarkerEnd) {
      // Never mirrored, never consumed: the leader truncates END on
      // restart and appends over it; a follower that kept it would
      // diverge. The caller rotates to the successor journal (or polls).
      if (in_txn_ || in_prologue_) {
        state_ = State::kCorrupt;  // END inside a unit: torn leader write
      } else {
        state_ = State::kEnd;
      }
      break;
    }
    if (payload == Journal::kMarkerEndOfSchema) {
      if (!in_prologue_) {
        state_ = State::kCorrupt;
        break;
      }
      in_prologue_ = false;
      PROMETHEUS_RETURN_IF_ERROR(CompleteUnit(scan_ + consumed, false));
      continue;
    }
    if (payload == Journal::kMarkerTxnBegin) {
      if (in_txn_ || in_prologue_) {
        state_ = State::kCorrupt;
        break;
      }
      in_txn_ = true;
      scan_ += consumed;
      continue;
    }
    if (payload == Journal::kMarkerTxnCommit) {
      if (!in_txn_) {
        state_ = State::kCorrupt;
        break;
      }
      in_txn_ = false;
      PROMETHEUS_RETURN_IF_ERROR(CompleteUnit(scan_ + consumed, true));
      continue;
    }
    if (in_txn_ || in_prologue_) {
      pending_.push_back(std::move(payload));
      scan_ += consumed;
      continue;
    }
    pending_.push_back(std::move(payload));
    PROMETHEUS_RETURN_IF_ERROR(CompleteUnit(scan_ + consumed, true));
  }
  return Status::Ok();
}

}  // namespace prometheus::replication
