#include "server/executor.h"

#include <string>
#include <utility>

#include "obs/metrics.h"

namespace prometheus::server {

namespace {

/// Instantaneous work-queue depth, updated under the executor's own lock.
/// Process-wide: when several executors coexist, last writer wins (the
/// gauge is a point-in-time reading, not an accumulator).
obs::Gauge* QueueDepthGauge() {
  static obs::Gauge* g = obs::Registry().GetGauge(
      "server_queue_depth", "Jobs waiting in the bounded work queue");
  return g;
}

obs::Counter* RejectedCounter() {
  static obs::Counter* c = obs::Registry().GetCounter(
      "server_requests_rejected_total",
      "Submissions refused by backpressure or shutdown");
  return c;
}

}  // namespace

ThreadPoolExecutor::ThreadPoolExecutor(const Options& options)
    : capacity_(options.queue_capacity == 0 ? 1 : options.queue_capacity) {
  const int n = options.threads < 1 ? 1 : options.threads;
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPoolExecutor::~ThreadPoolExecutor() { Shutdown(/*drain=*/true); }

bool ThreadPoolExecutor::Submit(Job job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_ || queue_.size() >= capacity_) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      RejectedCounter()->Increment();
      return false;
    }
    queue_.push_back(std::move(job));
    QueueDepthGauge()->Set(static_cast<double>(queue_.size()));
  }
  not_empty_.notify_one();
  return true;
}

void ThreadPoolExecutor::Shutdown(bool drain) {
  // Serialise whole shutdowns: two concurrent callers must not both join
  // the same workers.
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  std::deque<Job> discarded;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_ && workers_.empty()) return;  // already shut down
    shutting_down_ = true;
    if (!drain) discarded.swap(queue_);
  }
  not_empty_.notify_all();
  // Discarded jobs still get their exactly-once completion call.
  for (Job& job : discarded) job(/*run=*/false);
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

std::size_t ThreadPoolExecutor::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPoolExecutor::WorkerLoop(int worker_index) {
  obs::Counter* worker_requests = obs::Registry().GetCounter(
      "server_worker_requests_total{worker=\"" + std::to_string(worker_index) +
          "\"}",
      "Jobs executed, per worker thread");
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      job = std::move(queue_.front());
      queue_.pop_front();
      QueueDepthGauge()->Set(static_cast<double>(queue_.size()));
    }
    job(/*run=*/true);
    executed_.fetch_add(1, std::memory_order_relaxed);
    worker_requests->Increment();
  }
}

}  // namespace prometheus::server
