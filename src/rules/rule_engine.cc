#include "rules/rule_engine.h"

#include <algorithm>

#include "obs/metrics.h"
#include "query/parser.h"

namespace prometheus {

namespace {

/// Process-wide rule counters, registered once and cached.
struct RuleMetrics {
  obs::Counter* evaluations;
  obs::Counter* violations;
  obs::Counter* deferred;

  static const RuleMetrics& Get() {
    static const RuleMetrics m = [] {
      obs::MetricsRegistry& reg = obs::Registry();
      RuleMetrics rm;
      rm.evaluations = reg.GetCounter("rules_evaluated_total",
                                      "Rule condition evaluations");
      rm.violations = reg.GetCounter("rules_violations_total",
                                     "Rule conditions that did not hold");
      rm.deferred = reg.GetCounter(
          "rules_deferred_total",
          "Rule checks queued for commit-time evaluation");
      return rm;
    }();
    return m;
  }
};

}  // namespace

RuleEngine::RuleEngine(Database* db) : db_(db), engine_(db) {
  listener_ = db_->bus().Subscribe(
      [this](const Event& e) { return OnEvent(e); },
      /*priority=*/0);
}

RuleEngine::~RuleEngine() { db_->bus().Unsubscribe(listener_); }

Result<RuleId> RuleEngine::AddRule(const RuleSpec& spec) {
  if (spec.events.empty()) {
    return Status::InvalidArgument("rule '" + spec.name +
                                   "' selects no events");
  }
  auto rule = std::make_unique<CompiledRule>();
  rule->id = next_id_++;
  rule->spec = spec;
  if (!spec.applicability.empty()) {
    auto parsed = pool::ParseExpression(spec.applicability);
    if (!parsed.ok()) {
      return Status::ParseError("rule '" + spec.name + "' applicability: " +
                                parsed.status().message());
    }
    rule->applicability = std::move(parsed).value();
  }
  if (spec.condition.empty()) {
    return Status::InvalidArgument("rule '" + spec.name +
                                   "' has no condition");
  }
  auto parsed = pool::ParseExpression(spec.condition);
  if (!parsed.ok()) {
    return Status::ParseError("rule '" + spec.name + "' condition: " +
                              parsed.status().message());
  }
  rule->condition = std::move(parsed).value();
  RuleId id = rule->id;
  rules_.push_back(std::move(rule));
  return id;
}

Status RuleEngine::RemoveRule(RuleId id) {
  auto it = std::find_if(
      rules_.begin(), rules_.end(),
      [id](const std::unique_ptr<CompiledRule>& r) { return r->id == id; });
  if (it == rules_.end()) {
    return Status::NotFound("no rule #" + std::to_string(id));
  }
  // Drop any deferred checks or composite progress referencing the rule.
  deferred_.erase(std::remove_if(deferred_.begin(), deferred_.end(),
                                 [&](const DeferredCheck& d) {
                                   return d.rule == it->get();
                                 }),
                  deferred_.end());
  composites_.erase(it->get());
  rules_.erase(it);
  return Status::Ok();
}

Status RuleEngine::SetRuleEnabled(RuleId id, bool enabled) {
  for (auto& r : rules_) {
    if (r->id == id) {
      r->enabled = enabled;
      return Status::Ok();
    }
  }
  return Status::NotFound("no rule #" + std::to_string(id));
}

Result<RuleId> RuleEngine::AddInvariant(const std::string& name,
                                        const std::string& class_name,
                                        const std::string& condition,
                                        const std::string& message,
                                        RuleTiming timing, RuleAction action) {
  RuleSpec spec;
  spec.name = name;
  spec.events = {{EventKind::kAfterCreateObject, class_name},
                 {EventKind::kAfterSetAttribute, class_name}};
  spec.condition = condition;
  spec.timing = timing;
  spec.action = action;
  spec.message = message;
  return AddRule(spec);
}

Result<RuleId> RuleEngine::AddDeletePrecondition(const std::string& name,
                                                 const std::string& class_name,
                                                 const std::string& condition,
                                                 const std::string& message) {
  RuleSpec spec;
  spec.name = name;
  spec.events = {{EventKind::kBeforeDeleteObject, class_name}};
  spec.condition = condition;
  spec.message = message;
  return AddRule(spec);
}

Result<RuleId> RuleEngine::AddRelationshipRule(const std::string& name,
                                               const std::string& rel_name,
                                               const std::string& condition,
                                               const std::string& message,
                                               RuleAction action) {
  RuleSpec spec;
  spec.name = name;
  spec.events = {{EventKind::kAfterCreateLink, rel_name},
                 {EventKind::kAfterSetLinkAttribute, rel_name}};
  spec.condition = condition;
  spec.action = action;
  spec.message = message;
  return AddRule(spec);
}

pool::Environment RuleEngine::BindEnvironment(const Event& event) {
  pool::Environment env;
  env["event"] = Value::String(EventKindName(event.kind));
  if (event.subject != kNullOid) env["self"] = Value::Ref(event.subject);
  switch (event.kind) {
    case EventKind::kBeforeCreateLink:
    case EventKind::kAfterCreateLink:
    case EventKind::kBeforeDeleteLink:
    case EventKind::kAfterDeleteLink:
    case EventKind::kBeforeSetLinkAttribute:
    case EventKind::kAfterSetLinkAttribute:
      env["link"] = Value::Ref(event.subject);
      env["source"] = Value::Ref(event.source);
      env["target"] = Value::Ref(event.target);
      env["context"] = event.context == kNullOid ? Value::Null()
                                                 : Value::Ref(event.context);
      break;
    default:
      break;
  }
  if (!event.attribute.empty()) {
    env["attribute"] = Value::String(event.attribute);
    env["old"] = event.old_value;
    env["new"] = event.new_value;
  }
  return env;
}

bool RuleEngine::SelectorMatches(const RuleEventSelector& selector,
                                 const Event& event) const {
  if (selector.kind != event.kind) return false;
  if (selector.type_filter.empty()) return true;
  if (event.type_name == selector.type_filter) return true;
  // Subclass / sub-relationship matching.
  if (const ClassDef* evt_cls = db_->FindClass(event.type_name)) {
    const ClassDef* filter_cls = db_->FindClass(selector.type_filter);
    if (filter_cls != nullptr && evt_cls->IsSubclassOf(filter_cls)) {
      return true;
    }
  }
  if (const RelationshipDef* evt_rel =
          db_->FindRelationship(event.type_name)) {
    const RelationshipDef* filter_rel =
        db_->FindRelationship(selector.type_filter);
    if (filter_rel != nullptr && evt_rel->IsSubrelationshipOf(filter_rel)) {
      return true;
    }
  }
  return false;
}

bool RuleEngine::Matches(const CompiledRule& rule, const Event& event) const {
  for (const RuleEventSelector& sel : rule.spec.events) {
    if (SelectorMatches(sel, event)) return true;
  }
  return false;
}

Status RuleEngine::EvaluateRule(const CompiledRule& rule,
                                const pool::Environment& env) {
  ++evaluations_;
  RuleMetrics::Get().evaluations->Increment();
  if (rule.applicability != nullptr) {
    auto applies = engine_.Eval(*rule.applicability, env);
    // A failing applicability check means the rule does not apply.
    if (!applies.ok() || applies.value().type() != ValueType::kBool ||
        !applies.value().AsBool()) {
      return Status::Ok();
    }
  }
  auto held = engine_.Eval(*rule.condition, env);
  std::string detail;
  bool ok = false;
  if (held.ok() && held.value().type() == ValueType::kBool) {
    ok = held.value().AsBool();
  } else if (held.ok() && held.value().is_null()) {
    ok = false;  // null condition: fail closed
  } else if (!held.ok()) {
    detail = " (condition error: " + held.status().ToString() + ")";
  }
  if (ok) return Status::Ok();
  ++violations_;
  RuleMetrics::Get().violations->Increment();
  RuleViolation violation;
  violation.rule_name = rule.spec.name;
  violation.message = rule.spec.message + detail;
  auto self = env.find("self");
  if (self != env.end() && self->second.type() == ValueType::kRef) {
    violation.subject = self->second.AsRef();
  }
  switch (rule.spec.action) {
    case RuleAction::kWarn:
      warnings_.push_back(std::move(violation));
      return Status::Ok();
    case RuleAction::kInteractive:
      if (interactive_ && interactive_(violation)) {
        warnings_.push_back(std::move(violation));
        return Status::Ok();
      }
      [[fallthrough]];
    case RuleAction::kAbort:
      return Status::ConstraintViolation("rule '" + rule.spec.name +
                                         "': " + violation.message);
  }
  return Status::Ok();
}

Status RuleEngine::OnEvent(const Event& event) {
  // Compensating events describe rollback, not user intent: no rules.
  if (event.compensating) return Status::Ok();

  if (event.kind == EventKind::kBeforeCommit) {
    // Complete composite rules fire at commit, bound to their last event.
    std::vector<std::pair<const CompiledRule*, pool::Environment>> complete;
    for (auto& [rule, progress] : composites_) {
      bool all = !progress.matched.empty();
      for (bool m : progress.matched) all = all && m;
      if (all && rule->enabled) {
        complete.emplace_back(rule, progress.last_env);
      }
    }
    composites_.clear();
    for (auto& [rule, env] : complete) {
      PROMETHEUS_RETURN_IF_ERROR(EvaluateRule(*rule, env));
    }
    std::vector<DeferredCheck> pending = std::move(deferred_);
    deferred_.clear();
    for (DeferredCheck& check : pending) {
      // Skip checks whose subject died later in the transaction.
      auto self = check.env.find("self");
      if (self != check.env.end() &&
          self->second.type() == ValueType::kRef) {
        Oid oid = self->second.AsRef();
        if (db_->GetObject(oid) == nullptr && db_->GetLink(oid) == nullptr) {
          continue;
        }
      }
      PROMETHEUS_RETURN_IF_ERROR(EvaluateRule(*check.rule, check.env));
    }
    return Status::Ok();
  }
  if (event.kind == EventKind::kAfterCommit ||
      event.kind == EventKind::kAfterAbort) {
    deferred_.clear();
    composites_.clear();
    return Status::Ok();
  }

  for (const auto& rule : rules_) {
    if (!rule->enabled) continue;
    if (rule->spec.composite) {
      // Track per-selector progress; fire when the conjunction completes
      // (immediately outside a transaction, at commit inside one).
      bool advanced = false;
      CompositeProgress& progress = composites_[rule.get()];
      if (progress.matched.size() != rule->spec.events.size()) {
        progress.matched.assign(rule->spec.events.size(), false);
      }
      for (std::size_t i = 0; i < rule->spec.events.size(); ++i) {
        if (SelectorMatches(rule->spec.events[i], event)) {
          progress.matched[i] = true;
          advanced = true;
        }
      }
      if (!advanced) continue;
      progress.last_env = BindEnvironment(event);
      if (!db_->in_transaction()) {
        bool all = true;
        for (bool m : progress.matched) all = all && m;
        if (all) {
          pool::Environment env = progress.last_env;
          composites_.erase(rule.get());
          PROMETHEUS_RETURN_IF_ERROR(EvaluateRule(*rule, env));
        }
      }
      continue;
    }
    if (!Matches(*rule, event)) continue;
    pool::Environment env = BindEnvironment(event);
    if (rule->spec.timing == RuleTiming::kDeferred) {
      if (db_->in_transaction()) {
        deferred_.push_back(DeferredCheck{rule.get(), std::move(env)});
        RuleMetrics::Get().deferred->Increment();
        continue;
      }
      // Outside a transaction deferred rules degenerate to immediate.
    }
    PROMETHEUS_RETURN_IF_ERROR(EvaluateRule(*rule, env));
  }
  return Status::Ok();
}

}  // namespace prometheus
