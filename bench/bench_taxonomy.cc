// E8/E9/E11 — the taxonomic evaluation (thesis 7.1): typical taxonomic
// queries, multiple/historical classification handling, and what-if
// scenarios, measured on a synthetic flora (see DESIGN.md substitutions).
// Expected shape: every interaction the thesis walks through completes in
// interactive time on a flora of thousands of specimens; synonym discovery
// scales with the product of compared group sizes.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "taxonomy/synthetic.h"
#include "taxonomy/taxonomy_db.h"

namespace {

using prometheus::Oid;
using prometheus::Value;
using prometheus::taxonomy::Flora;
using prometheus::taxonomy::FloraConfig;
using prometheus::taxonomy::GenerateFlora;
using prometheus::taxonomy::GenerateRevision;
using prometheus::taxonomy::TaxonomyDatabase;

FloraConfig MediumFlora() {
  FloraConfig config;
  config.families = 3;
  config.genera_per_family = 8;
  config.species_per_genus = 12;
  config.specimens_per_species = 4;
  return config;
}

void PrintSeries() {
  FloraConfig config = MediumFlora();
  TaxonomyDatabase tdb;
  auto flora_or = GenerateFlora(&tdb, config);
  if (!flora_or.ok()) {
    std::printf("flora generation failed: %s\n",
                flora_or.status().ToString().c_str());
    return;
  }
  Flora flora = std::move(flora_or).value();
  auto revision_or = GenerateRevision(&tdb, flora, 6, 99);
  if (!revision_or.ok()) {
    std::printf("revision generation failed: %s\n",
                revision_or.status().ToString().c_str());
    return;
  }
  Oid revision = revision_or.value();

  prometheus::bench::PrintTableHeader(
      "E8/E9/E11: taxonomic evaluation (3 families, 24 genera, 288 "
      "species, 1152 specimens, 2 overlapping classifications)",
      "  interaction                         ms        notes");

  // E8: typical taxonomic queries (7.1.3.1).
  double q_name = prometheus::bench::MedianMillis(
      [&] {
        benchmark::DoNotOptimize(
            tdb.query()
                .Execute("select n from NomenclaturalTaxon n where "
                         "n.name_element like 'g%' and n.rank = 'Genus'")
                .ok());
      },
      5);
  std::printf("  %-34s %8.3f   POOL: genera by name pattern\n",
              "Q: names by pattern", q_name);

  Oid family = flora.family_taxa[0];
  double q_recursive = prometheus::bench::MedianMillis(
      [&] {
        benchmark::DoNotOptimize(
            tdb.SpecimensUnder(flora.classification, family).ok());
      },
      5);
  std::printf("  %-34s %8.3f   recursive circumscription of a family\n",
              "Q: specimens under taxon", q_recursive);

  double q_types = prometheus::bench::MedianMillis(
      [&] {
        benchmark::DoNotOptimize(
            tdb.TypeSpecimensUnder(flora.classification, family).ok());
      },
      5);
  std::printf("  %-34s %8.3f   type extraction (derivation step 1)\n",
              "Q: type specimens under taxon", q_types);

  prometheus::pool::Environment env{
      {"c", Value::Ref(flora.classification)},
      {"g", Value::Ref(flora.genus_taxa[0])}};
  double q_context = prometheus::bench::MedianMillis(
      [&] {
        benchmark::DoNotOptimize(
            tdb.query()
                .Eval("count(traverse(g, 'contains', 1, 0, 'out', c))", env)
                .ok());
      },
      5);
  std::printf("  %-34s %8.3f   POOL graph traversal in context\n",
              "Q: query by context", q_context);

  // E8: synonym discovery across the two classifications.
  double synonym_scan = prometheus::bench::MedianMillis(
      [&] {
        int found = 0;
        for (Oid revised :
             tdb.classifications().Roots(revision)) {
          for (Oid genus : flora.genus_taxa) {
            auto overlap = tdb.CompareTaxa(flora.classification, genus,
                                           revision, revised);
            if (overlap.kind != prometheus::SynonymyKind::kNone) ++found;
          }
        }
        benchmark::DoNotOptimize(found);
      },
      3);
  std::printf("  %-34s %8.3f   all genus pairs across classifications\n",
              "synonym discovery", synonym_scan);

  // E9: inferring the HICLAS-style operation history from overlap.
  double infer_ms = prometheus::bench::MedianMillis(
      [&] {
        benchmark::DoNotOptimize(
            tdb.InferRevisionOperations(flora.classification, revision)
                .size());
      },
      3);
  std::printf("  %-34s %8.3f   move/merge/partition inference\n",
              "infer revision operations", infer_ms);

  // E9: revision support — clone a whole classification.
  double clone_ms = prometheus::bench::MedianMillis(
      [&] {
        (void)tdb.db().Begin();
        benchmark::DoNotOptimize(
            tdb.classifications()
                .Clone(flora.classification, "copy", "t", 2001)
                .ok());
        (void)tdb.db().Abort();  // keep the database size stable
      },
      3);
  std::printf("  %-34s %8.3f   copy classification for a revision\n",
              "clone classification", clone_ms);

  // E11: what-if — derive all names of the revision speculatively.
  double whatif_ms = prometheus::bench::MedianMillis(
      [&] {
        (void)tdb.db().Begin();
        benchmark::DoNotOptimize(
            tdb.DeriveAllNames(revision, "Reviser", 2001).ok());
        (void)tdb.db().Abort();
      },
      3);
  std::printf("  %-34s %8.3f   derive names in txn, inspect, abort\n",
              "what-if name derivation", whatif_ms);

  // Committed derivation for comparison.
  double derive_ms = prometheus::bench::MedianMillis(
      [&] {
        (void)tdb.db().Begin();
        benchmark::DoNotOptimize(
            tdb.DeriveAllNames(flora.classification, "Author", 2001).ok());
        (void)tdb.db().Commit();
      },
      1);
  std::printf("  %-34s %8.3f   committed derivation (original)\n",
              "derive all names", derive_ms);
}

void BM_GenerateFlora(benchmark::State& state) {
  FloraConfig config;
  config.families = 1;
  config.genera_per_family = static_cast<int>(state.range(0));
  config.species_per_genus = 10;
  config.specimens_per_species = 3;
  for (auto _ : state) {
    TaxonomyDatabase tdb;
    benchmark::DoNotOptimize(GenerateFlora(&tdb, config).ok());
  }
}
BENCHMARK(BM_GenerateFlora)->Arg(2)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_CompareTaxa(benchmark::State& state) {
  FloraConfig config = MediumFlora();
  TaxonomyDatabase tdb;
  auto flora = GenerateFlora(&tdb, config);
  if (!flora.ok()) return;
  auto revision = GenerateRevision(&tdb, flora.value(), 6, 99);
  if (!revision.ok()) return;
  std::vector<Oid> revised = tdb.classifications().Roots(revision.value());
  std::size_t i = 0;
  for (auto _ : state) {
    Oid a = flora.value().genus_taxa[i % flora.value().genus_taxa.size()];
    Oid b = revised[i % revised.size()];
    benchmark::DoNotOptimize(tdb.CompareTaxa(
        flora.value().classification, a, revision.value(), b));
    ++i;
  }
}
BENCHMARK(BM_CompareTaxa)->Unit(benchmark::kMicrosecond);

void BM_DeriveName(benchmark::State& state) {
  FloraConfig config;
  config.families = 1;
  config.genera_per_family = 4;
  config.species_per_genus = 8;
  config.specimens_per_species = 3;
  TaxonomyDatabase tdb;
  auto flora = GenerateFlora(&tdb, config);
  if (!flora.ok()) return;
  std::size_t i = 0;
  for (auto _ : state) {
    (void)tdb.db().Begin();
    Oid genus =
        flora.value().genus_taxa[i % flora.value().genus_taxa.size()];
    benchmark::DoNotOptimize(
        tdb.DeriveName(flora.value().classification, genus, "A", 2001).ok());
    (void)tdb.db().Abort();
    ++i;
  }
}
BENCHMARK(BM_DeriveName)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  PrintSeries();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
