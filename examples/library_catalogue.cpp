// The thesis' *other* motivating domain (chapter 1): a library catalogue
// where books belong to several overlapping classification schemes at once
// (subject, author nationality, publisher). Nothing here is
// taxonomy-specific — the classification mechanism is orthogonal to the
// classified data (requirements 11 and 12), which is exactly what this
// example demonstrates: the same `Database` + `ClassificationManager` +
// POOL stack, applied to books.

#include <cstdio>

#include "classification/classification.h"
#include "query/query_engine.h"

using namespace prometheus;

namespace {

AttributeDef Attr(std::string name, ValueType type) {
  AttributeDef a;
  a.name = std::move(name);
  a.type = type;
  return a;
}

void Check(const Status& st, const char* what) {
  if (!st.ok()) {
    std::printf("FAILED %s: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  Database db;
  ClassificationManager catalogues(&db);
  pool::QueryEngine query(&db);

  Check(db.DefineClass("Book", {},
                       {Attr("title", ValueType::kString),
                        Attr("author", ValueType::kString),
                        Attr("year", ValueType::kInt)})
            .status(),
        "define Book");
  Check(db.DefineClass("Category", {}, {Attr("label", ValueType::kString)})
            .status(),
        "define Category");
  Check(db.DefineRelationship("shelved_under", "Category", "Book", {},
                              {Attr("motivation", ValueType::kString)})
            .status(),
        "define shelved_under");
  Check(db.DefineRelationship("subcategory_of", "Category", "Category")
            .status(),
        "define subcategory_of");

  auto book = [&](const char* title, const char* author, int year) {
    return db.CreateObject("Book", {{"title", Value::String(title)},
                                    {"author", Value::String(author)},
                                    {"year", Value::Int(year)}})
        .value();
  };
  auto category = [&](const char* label) {
    return db.CreateObject("Category", {{"label", Value::String(label)}})
        .value();
  };

  Oid mort = book("Mort", "Pratchett", 1987);
  Oid hogfather = book("Hogfather", "Pratchett", 1996);
  Oid neuromancer = book("Neuromancer", "Gibson", 1984);
  Oid dracula = book("Dracula", "Stoker", 1897);

  // Scheme 1: by subject, hierarchical.
  Oid by_subject = catalogues.Create("by subject", "librarian A").value();
  Oid fiction = category("Fiction");
  Oid fantasy = category("Fantasy");
  Oid scifi = category("Science fiction");
  Check(catalogues.AddEdge(by_subject, "subcategory_of", fiction, fantasy)
            .status(),
        "subject tree");
  Check(catalogues.AddEdge(by_subject, "subcategory_of", fiction, scifi)
            .status(),
        "subject tree");
  for (Oid b : {mort, hogfather}) {
    Check(catalogues.AddEdge(by_subject, "shelved_under", fantasy, b)
              .status(),
          "shelve");
  }
  Check(
      catalogues.AddEdge(by_subject, "shelved_under", scifi, neuromancer)
          .status(),
      "shelve");
  Check(catalogues.AddEdge(by_subject, "shelved_under", fiction, dracula,
                           "gothic horror shelved at the top level")
            .status(),
        "shelve");

  // Scheme 2: by era, flat — the same books, independently classified.
  Oid by_era = catalogues.Create("by era", "librarian B").value();
  Oid victorian = category("Victorian");
  Oid modern = category("Modern");
  Check(catalogues.AddEdge(by_era, "shelved_under", victorian, dracula)
            .status(),
        "era");
  for (Oid b : {mort, hogfather, neuromancer}) {
    Check(catalogues.AddEdge(by_era, "shelved_under", modern, b).status(),
          "era");
  }

  std::printf("two overlapping catalogues over %zu books\n",
              db.Extent("Book").size());

  // Recursive containment: everything under Fiction in the subject scheme.
  pool::Environment env{{"fiction", Value::Ref(fiction)},
                        {"subject", Value::Ref(by_subject)}};
  auto under_fiction = query.Eval(
      "count(traverse(fiction, 'shelved_under', 1, 0, 'out', subject)) + "
      "count(traverse(fiction, 'subcategory_of', 1, 0, 'out', subject))",
      env);
  std::printf("nodes under Fiction (books via shelves + subcategories): "
              "%s\n",
              under_fiction.value().ToString().c_str());

  // Group by across the uniform link extent: books per category per scheme.
  auto per_category = query.Execute(
      "select l.context.name, l.source.label, count(l) "
      "from shelved_under l "
      "group by l.context.name, l.source.label "
      "order by l.source.label");
  if (per_category.ok()) {
    std::printf("\nbooks per category:\n");
    for (const auto& row : per_category.value().rows) {
      std::printf("  %-14s %-18s %s\n", row[0].ToString().c_str(),
                  row[1].ToString().c_str(), row[2].ToString().c_str());
    }
  }

  // Cross-scheme comparison: which era category best matches 'Fantasy'?
  auto alignment = catalogues.Align(by_subject, by_era);
  std::printf("\nalignment of subject scheme against era scheme:\n");
  for (const auto& entry : alignment) {
    auto la = db.GetAttribute(entry.taxon_a, "label");
    std::printf("  %-18s -> ", la.ok() ? la.value().ToString().c_str() : "?");
    if (entry.taxon_b == kNullOid) {
      std::printf("(no overlap)\n");
      continue;
    }
    auto lb = db.GetAttribute(entry.taxon_b, "label");
    std::printf("%-12s similarity %.2f\n",
                lb.ok() ? lb.value().ToString().c_str() : "?",
                entry.similarity);
  }

  std::printf("library_catalogue OK\n");
  return 0;
}
