// E4 — Figure 45: structural modification S1 (insert composite parts and
// attach them to assemblies). The thesis' figure shows a *non-constant*
// increase in cost: relationship semantics (exclusivity/cardinality
// scans) and index maintenance make the Prometheus/storage ratio grow
// with database size, unlike T5.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "index/index_manager.h"
#include "oo7/oo7.h"

namespace {

using prometheus::oo7::BaselineOo7;
using prometheus::oo7::Config;
using prometheus::oo7::PrometheusOo7;

constexpr int kInsertBatch = 5;

Config MakeConfig(int composites) {
  Config config;
  config.composite_parts = composites;
  // The assembly tree grows with the part library so traversal work scales
  // with database size, as in OO7's small/medium databases.
  config.assembly_levels =
      composites <= 10 ? 4 : (composites <= 20 ? 5 : (composites <= 40 ? 6 : 7));
  return config;
}

void PrintFigure45() {
  prometheus::bench::PrintTableHeader(
      "Figure 45: non-constant increase in cost (S1 structural insert)",
      "  comps  atoms   prom_ms    base_ms    ratio  (inserting 5 "
      "composite parts)");
  for (int comps : {10, 20, 40, 80}) {
    Config config = MakeConfig(comps);
    // Databases are built outside the timed region; only the insert is
    // measured. The databases grow slightly across repetitions, which is
    // the realistic steady state for inserts.
    PrometheusOo7 prom(config);
    BaselineOo7 base(config);
    // The thesis prototype ran with its index layer subscribed; insertion
    // pays ordered-index maintenance that grows with database size.
    prometheus::IndexManager indexes(&prom.db());
    (void)indexes.CreateIndex("AtomicPart", "id");
    (void)indexes.CreateIndex("AtomicPart", "build_date", /*ordered=*/true);
    double prom_op = prometheus::bench::MedianMillis(
        [&] { benchmark::DoNotOptimize(prom.InsertS1(kInsertBatch).ok()); },
        5);
    double base_op = prometheus::bench::MedianMillis(
        [&] { benchmark::DoNotOptimize(base.InsertS1(kInsertBatch).ok()); },
        5);
    if (base_op <= 0.0001) base_op = 0.0001;
    std::printf("  %5d  %5d   %8.3f   %8.4f   %5.1f\n", comps,
                config.total_atomic_parts(), prom_op, base_op,
                prom_op / base_op);
  }
}

void BM_S1Prometheus(benchmark::State& state) {
  Config config = MakeConfig(static_cast<int>(state.range(0)));
  PrometheusOo7 db(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.InsertS1(kInsertBatch).ok());
  }
  state.SetItemsProcessed(state.iterations() * kInsertBatch);
}
BENCHMARK(BM_S1Prometheus)
    ->Arg(10)
    ->Arg(40)
    ->Iterations(20)
    ->Unit(benchmark::kMillisecond);

void BM_S1Baseline(benchmark::State& state) {
  Config config = MakeConfig(static_cast<int>(state.range(0)));
  BaselineOo7 db(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.InsertS1(kInsertBatch).ok());
  }
  state.SetItemsProcessed(state.iterations() * kInsertBatch);
}
BENCHMARK(BM_S1Baseline)
    ->Arg(10)
    ->Arg(40)
    ->Iterations(20)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintFigure45();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
