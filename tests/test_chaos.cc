// Chaos harness: a fault-injected DurableStore under concurrent
// multi-client load. The server cycles healthy -> durability-broken ->
// healed-and-checkpointed while 6 readers and 2 writers hammer it, and the
// invariants of graceful degradation are asserted the whole time:
//
//  - readers never observe a torn attribute pair and never get a
//    database-level error (queries keep serving in degraded mode);
//  - once the server is degraded, writer mutations fail fast with
//    kUnavailable and `executed == false` (they never reach the journal);
//  - a checkpoint through the healed filesystem re-arms the store, after
//    which writes flow (and are durable) again;
//  - reopening the directory afterwards recovers a consistent state.
//
// Wall-clock duration comes from PROMETHEUS_CHAOS_SECONDS (default 3; CI
// runs 30 under ASan/UBSan). The harness always finishes a cycle by
// healing, so the store is intact at exit regardless of where the clock
// ran out.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "server/client.h"
#include "server/server.h"
#include "storage/fault.h"
#include "storage/recovery.h"

namespace {

namespace fs = std::filesystem;

using prometheus::AttributeDef;
using prometheus::Database;
using prometheus::Oid;
using prometheus::Status;
using prometheus::Value;
using prometheus::ValueType;
using prometheus::server::Client;
using prometheus::server::Request;
using prometheus::server::Response;
using prometheus::server::ResponseCode;
using prometheus::server::RetryPolicy;
using prometheus::server::Server;
using prometheus::storage::DurableStore;
using prometheus::storage::FaultInjectionEnv;
using prometheus::storage::FaultPolicy;

constexpr int kReaders = 6;
constexpr int kWriters = 2;
constexpr int kVictims = 4;

AttributeDef Attr(std::string name, ValueType type) {
  AttributeDef def;
  def.name = std::move(name);
  def.type = type;
  return def;
}

int ChaosSeconds() {
  const char* env = std::getenv("PROMETHEUS_CHAOS_SECONDS");
  if (env == nullptr) return 3;
  const int parsed = std::atoi(env);
  return parsed > 0 ? parsed : 3;
}

/// Spin-waits (politely) until `cond` holds or `budget` elapses.
template <typename Cond>
bool AwaitFor(Cond cond, std::chrono::milliseconds budget) {
  const auto give_up = std::chrono::steady_clock::now() + budget;
  while (!cond()) {
    if (std::chrono::steady_clock::now() >= give_up) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

TEST(ChaosTest, ServerDegradesGracefullyUnderInjectedDurabilityFaults) {
  const std::string dir = ::testing::TempDir() + "/prometheus_chaos";
  fs::remove_all(dir);
  FaultInjectionEnv env;

  DurableStore::Options store_options;
  store_options.env = &env;
  store_options.bootstrap = [](Database* db) {
    PROMETHEUS_RETURN_IF_ERROR(
        db->DefineClass("Victim", {},
                        {Attr("name", ValueType::kString),
                         Attr("a", ValueType::kInt),
                         Attr("b", ValueType::kInt)})
            .status());
    for (int i = 0; i < kVictims; ++i) {
      PROMETHEUS_RETURN_IF_ERROR(
          db->CreateObject("Victim",
                           {{"name", Value::String("v" + std::to_string(i))},
                            {"a", Value::Int(0)},
                            {"b", Value::Int(0)}})
              .status());
    }
    return Status::Ok();
  };
  auto store = DurableStore::Open(dir, store_options);
  ASSERT_TRUE(store.ok()) << store.status().message();

  std::vector<Oid> victims = store.value()->db().Extent("Victim");
  ASSERT_EQ(victims.size(), static_cast<std::size_t>(kVictims));

  Server::Options options;
  options.worker_threads = 4;
  options.queue_capacity = 4096;
  options.store = store.value().get();
  Server server(&store.value()->db(), options);

  std::atomic<bool> stop{false};

  // Reader-side accounting. `reader_errors` is the hard invariant: a query
  // that executed must succeed and must never show a torn a/b pair, healthy
  // or degraded. Timed-out / rejected queries are legitimate overload
  // outcomes, counted but not failures.
  std::atomic<std::uint64_t> reads_ok{0};
  std::atomic<std::uint64_t> reads_shed{0};
  std::atomic<std::uint64_t> reader_errors{0};
  std::atomic<std::uint64_t> torn_pairs{0};

  // Writer-side accounting. Every writer response lands in exactly one
  // bucket; `writer_anomalies` is the hard invariant (an executed==true
  // kUnavailable, or a success while the server said degraded).
  std::atomic<std::uint64_t> writes_ok{0};
  std::atomic<std::uint64_t> writes_errored{0};  // executed, rolled back
  std::atomic<std::uint64_t> writes_unavailable{0};
  std::atomic<std::uint64_t> writer_anomalies{0};
  // Bumped per writer whenever it receives kUnavailable; the controller
  // waits for both before healing, which guarantees no writer mutation is
  // executing (let alone appending) when the fault policy is swapped.
  std::atomic<std::uint64_t> unavailable_by[kWriters] = {};

  std::vector<std::thread> threads;
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      Client client(&server);
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        Request req = Request::Query(
            "select v.name, v.a, v.b from Victim v");
        if (i % 4 == 0) req.WithTimeout(std::chrono::milliseconds(50));
        Response resp = client.Call(std::move(req));
        ++i;
        if (resp.code == ResponseCode::kTimedOut ||
            resp.code == ResponseCode::kRejected) {
          reads_shed.fetch_add(1);
          continue;
        }
        if (resp.code != ResponseCode::kOk || !resp.status.ok()) {
          reader_errors.fetch_add(1);
          continue;
        }
        reads_ok.fetch_add(1);
        for (const auto& row : resp.result.rows) {
          if (!row[1].Equals(row[2])) torn_pairs.fetch_add(1);
        }
        // One reader doubles as a health prober — the probe must answer
        // regardless of server state.
        if (r == 0 && i % 16 == 0) {
          Response probe = client.Call(Request::Health());
          if (probe.code != ResponseCode::kOk) reader_errors.fetch_add(1);
        }
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      Client client(&server);
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const Oid victim = victims[(w + i) % victims.size()];
        const std::int64_t value =
            static_cast<std::int64_t>(w + 1) * 1000000 +
            static_cast<std::int64_t>(i);
        ++i;
        // The pair update is transactional: the journal buffers the whole
        // transaction and brackets it TXB/TXC, so a fault either loses or
        // keeps BOTH writes — never one of them — and a sticky-veto during
        // the transaction rolls both back in memory.
        Response resp = client.Call(Request::Custom([victim,
                                                     value](Database& db) {
          PROMETHEUS_RETURN_IF_ERROR(db.Begin());
          Status st = db.SetAttribute(victim, "a", Value::Int(value));
          if (st.ok()) st = db.SetAttribute(victim, "b", Value::Int(value));
          if (!st.ok()) {
            (void)db.Abort();
            return st;
          }
          return db.Commit();
        }));
        switch (resp.code) {
          case ResponseCode::kOk:
            if (resp.status.ok()) {
              writes_ok.fetch_add(1);
            } else {
              writes_errored.fetch_add(1);  // sticky veto rolled it back
            }
            break;
          case ResponseCode::kUnavailable:
            if (resp.executed) writer_anomalies.fetch_add(1);
            writes_unavailable.fetch_add(1);
            unavailable_by[w].fetch_add(1);
            break;
          case ResponseCode::kRejected:
          case ResponseCode::kTimedOut:
            break;  // overload outcomes, fine
          case ResponseCode::kShutdown:
            return;
        }
        // Degraded fast-fail should be instant; do not hammer it.
        if (resp.code == ResponseCode::kUnavailable) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      }
    });
  }

  // The controller: healthy -> break the journal -> watch the server
  // degrade -> heal the filesystem -> checkpoint to re-arm. Loops until
  // the chaos budget is spent; always exits healed.
  Client controller(&server);
  const auto chaos_end =
      std::chrono::steady_clock::now() + std::chrono::seconds(ChaosSeconds());
  int cycles = 0;
  int degraded_cycles = 0;
  do {
    // Healthy phase: let traffic flow.
    std::this_thread::sleep_for(std::chrono::milliseconds(150));

    // Inject. SetPolicy is not synchronised against journal appends, so it
    // runs inside a mutation — serialized with every append by the
    // exclusive lock. Vary where the crash lands cycle to cycle.
    FaultPolicy broken;
    broken.fail_after_appends = (cycles % 3 == 0) ? 0 : cycles % 7;
    broken.torn_writes = (cycles % 2 == 0);
    Status inject = controller.Mutate([&env, broken](Database&) {
      env.SetPolicy(broken);
      return Status::Ok();
    });
    ASSERT_TRUE(inject.ok()) << inject.message();

    // The next writer mutations hit the dead env, get vetoed, and flip the
    // server to degraded; then each writer must observe at least one
    // fast-fail. Both together prove no writer mutation is still running.
    const std::uint64_t seen_before[kWriters] = {
        unavailable_by[0].load(), unavailable_by[1].load()};
    const bool degraded_seen = AwaitFor(
        [&] {
          if (!server.degraded()) return false;
          for (int w = 0; w < kWriters; ++w) {
            if (unavailable_by[w].load() == seen_before[w]) return false;
          }
          return true;
        },
        std::chrono::seconds(20));
    ASSERT_TRUE(degraded_seen)
        << "server never degraded (cycle " << cycles << ")";
    ++degraded_cycles;

    // Let readers run against the degraded server for a while.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    EXPECT_TRUE(server.degraded());

    // Heal and re-arm. Mutations are refused at admission while degraded
    // and the wait above flushed the in-flight ones, so no append can race
    // this SetPolicy.
    env.SetPolicy(FaultPolicy{});
    Status rearm = controller.Checkpoint();
    ASSERT_TRUE(rearm.ok()) << rearm.message();
    EXPECT_FALSE(server.degraded());

    // Post-heal probe: a mutation through the controller must succeed.
    Status probe = controller.Mutate([&victims](Database& db) {
      PROMETHEUS_RETURN_IF_ERROR(
          db.SetAttribute(victims[0], "a", Value::Int(-1)));
      return db.SetAttribute(victims[0], "b", Value::Int(-1));
    });
    ASSERT_TRUE(probe.ok()) << probe.message();
    ++cycles;
  } while (std::chrono::steady_clock::now() < chaos_end);

  stop.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();
  server.Shutdown();

  // Hard invariants.
  EXPECT_EQ(reader_errors.load(), 0u);
  EXPECT_EQ(torn_pairs.load(), 0u);
  EXPECT_EQ(writer_anomalies.load(), 0u);
  // The harness actually exercised what it claims to: every cycle
  // degraded and re-armed, writers saw fast-fails, and plenty of traffic
  // flowed on both sides of the fault line.
  EXPECT_EQ(degraded_cycles, cycles);
  EXPECT_GE(cycles, 1);
  EXPECT_GT(writes_unavailable.load(), 0u);
  EXPECT_GT(writes_ok.load(), 0u);
  EXPECT_GT(reads_ok.load(), 0u);
  EXPECT_EQ(server.stats().unavailable, writes_unavailable.load());

  // The surviving state is internally consistent...
  for (Oid victim : victims) {
    auto a = store.value()->db().GetAttribute(victim, "a");
    auto b = store.value()->db().GetAttribute(victim, "b");
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_TRUE(a.value().Equals(b.value())) << "torn pair on disk";
  }
  ASSERT_TRUE(store.value()->Sync().ok());
  store.value().reset();  // close the journal

  // ...and recovers identically from disk.
  auto reopened = DurableStore::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  EXPECT_EQ(reopened.value()->db().object_count(),
            static_cast<std::size_t>(kVictims));
  for (Oid victim : reopened.value()->db().Extent("Victim")) {
    auto a = reopened.value()->db().GetAttribute(victim, "a");
    auto b = reopened.value()->db().GetAttribute(victim, "b");
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_TRUE(a.value().Equals(b.value()))
        << "torn pair after recovery";
  }
  fs::remove_all(dir);
}

// MVCC under faults: a writer "crash" (a durability veto rolling back a
// transaction mid-flight, possibly mid-journal-append) must leave no
// partially visible version. Readers pin snapshots, so the only states
// they can ever observe are published post-section cuts — and a vetoed
// section publishes its *rolled-back* state. The writer tags every
// transaction with a unique value and records which ones actually
// committed; the readers record every value they ever saw. At the end the
// seen set must be a subset of {initial} ∪ committed — a single value from
// a rolled-back transaction in a reader's result set is a failure.
TEST(ChaosTest, RolledBackWritesNeverVisibleToPinnedReaders) {
  const std::string dir = ::testing::TempDir() + "/prometheus_chaos_mvcc";
  fs::remove_all(dir);
  FaultInjectionEnv env;

  DurableStore::Options store_options;
  store_options.env = &env;
  store_options.bootstrap = [](Database* db) {
    PROMETHEUS_RETURN_IF_ERROR(
        db->DefineClass("Victim", {},
                        {Attr("a", ValueType::kInt),
                         Attr("b", ValueType::kInt)})
            .status());
    return db
        ->CreateObject("Victim", {{"a", Value::Int(0)}, {"b", Value::Int(0)}})
        .status();
  };
  auto store = DurableStore::Open(dir, store_options);
  ASSERT_TRUE(store.ok()) << store.status().message();
  const Oid victim = store.value()->db().Extent("Victim")[0];

  Server::Options options;
  options.worker_threads = 4;
  options.queue_capacity = 4096;
  options.store = store.value().get();
  Server server(&store.value()->db(), options);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn_pairs{0};
  std::atomic<std::uint64_t> reads_ok{0};

  constexpr int kMvccReaders = 3;
  std::vector<std::unordered_set<std::int64_t>> seen(kMvccReaders);
  std::vector<std::thread> readers;
  for (int r = 0; r < kMvccReaders; ++r) {
    readers.emplace_back([&, r] {
      Client client(&server);
      while (!stop.load(std::memory_order_acquire)) {
        Response resp =
            client.Call(Request::Query("select v.a, v.b from Victim v"));
        if (resp.code != ResponseCode::kOk || !resp.status.ok()) continue;
        reads_ok.fetch_add(1);
        for (const auto& row : resp.result.rows) {
          if (!row[0].Equals(row[1])) torn_pairs.fetch_add(1);
          seen[r].insert(row[0].AsInt());
        }
      }
    });
  }

  // Writer + fault controller in one loop: values are unique per attempt,
  // and the fault policy flips while transactions are in flight so some
  // roll back mid-append.
  Client writer(&server);
  std::unordered_set<std::int64_t> committed;
  const auto chaos_end =
      std::chrono::steady_clock::now() + std::chrono::seconds(ChaosSeconds());
  std::int64_t value = 0;
  int cycles = 0;
  std::uint64_t rolled_back = 0;
  do {
    // Healthy writes.
    for (int i = 0; i < 20; ++i) {
      ++value;
      Status st = writer.Mutate([victim, value](Database& db) {
        PROMETHEUS_RETURN_IF_ERROR(db.Begin());
        Status s = db.SetAttribute(victim, "a", Value::Int(value));
        if (s.ok()) s = db.SetAttribute(victim, "b", Value::Int(value));
        if (!s.ok()) {
          (void)db.Abort();
          return s;
        }
        return db.Commit();
      });
      if (st.ok()) committed.insert(value);
    }

    // Break the journal mid-stream; the next transactions are vetoed and
    // rolled back (or refused once the server degrades).
    FaultPolicy broken;
    broken.fail_after_appends = cycles % 3;
    broken.torn_writes = (cycles % 2 == 0);
    ASSERT_TRUE(writer
                    .Mutate([&env, broken](Database&) {
                      env.SetPolicy(broken);
                      return Status::Ok();
                    })
                    .ok());
    for (int i = 0; i < 10; ++i) {
      ++value;
      Status st = writer.Mutate([victim, value](Database& db) {
        PROMETHEUS_RETURN_IF_ERROR(db.Begin());
        Status s = db.SetAttribute(victim, "a", Value::Int(value));
        if (s.ok()) s = db.SetAttribute(victim, "b", Value::Int(value));
        if (!s.ok()) {
          (void)db.Abort();
          return s;
        }
        return db.Commit();
      });
      if (st.ok()) {
        committed.insert(value);
      } else {
        ++rolled_back;
      }
    }

    // Wait for the degraded transition (the writes above guarantee the
    // store observed the fault), then heal and re-arm.
    ASSERT_TRUE(AwaitFor([&] { return server.degraded(); },
                         std::chrono::seconds(20)));
    env.SetPolicy(FaultPolicy{});
    ASSERT_TRUE(writer.Checkpoint().ok());
    ASSERT_FALSE(server.degraded());
    ++cycles;
  } while (std::chrono::steady_clock::now() < chaos_end);

  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  server.Shutdown();

  EXPECT_EQ(torn_pairs.load(), 0u);
  EXPECT_GT(reads_ok.load(), 0u);
  EXPECT_GT(rolled_back, 0u) << "no transaction ever rolled back; the "
                                "harness exercised nothing";
  for (int r = 0; r < kMvccReaders; ++r) {
    for (std::int64_t v : seen[r]) {
      EXPECT_TRUE(v == 0 || committed.count(v) > 0)
          << "reader " << r << " saw value " << v
          << " from a rolled-back transaction";
    }
  }
  fs::remove_all(dir);
}

// Regression: degraded read-only mode must keep serving result-cache hits.
// The Enqueue-side hit path sits before the degraded fast-fail (which only
// concerns mutations), so a degraded server still answers its hot set from
// cache — and `.cache` administration stays available too.
TEST(ChaosTest, DegradedModeKeepsServingCacheHits) {
  const std::string dir = ::testing::TempDir() + "/prometheus_chaos_cache";
  fs::remove_all(dir);
  FaultInjectionEnv env;

  DurableStore::Options store_options;
  store_options.env = &env;
  store_options.bootstrap = [](Database* db) {
    PROMETHEUS_RETURN_IF_ERROR(
        db->DefineClass("Victim", {},
                        {Attr("name", ValueType::kString),
                         Attr("a", ValueType::kInt)})
            .status());
    return db
        ->CreateObject("Victim", {{"name", Value::String("v")},
                                  {"a", Value::Int(42)}})
        .status();
  };
  auto store = DurableStore::Open(dir, store_options);
  ASSERT_TRUE(store.ok()) << store.status().message();
  const Oid victim = store.value()->db().Extent("Victim")[0];

  Server::Options options;
  options.store = store.value().get();
  Server server(&store.value()->db(), options);
  Client client(&server);
  const std::string q = "select v.a from Victim v where v.name = 'v'";

  // Healthy: warm, then hit.
  ASSERT_TRUE(client.Call(Request::Query(q)).ok());
  ASSERT_TRUE(client.Call(Request::Query(q)).cache_hit);

  // Break the journal; the next mutation fails and flips degraded mode.
  FaultPolicy broken;
  broken.fail_after_appends = 0;
  ASSERT_TRUE(client
                  .Mutate([&env, broken](Database&) {
                    env.SetPolicy(broken);
                    return Status::Ok();
                  })
                  .ok());
  Response failed_write =
      client.Call(Request::SetAttribute(victim, "a", Value::Int(99)));
  EXPECT_FALSE(failed_write.ok());
  ASSERT_TRUE(server.degraded());

  // The failed writer's guard bumped the epoch, so the first degraded
  // query re-executes (queries still serve) and re-warms the cache...
  Response rewarm = client.Call(Request::Query(q));
  ASSERT_TRUE(rewarm.ok());
  ASSERT_EQ(rewarm.result.rows.size(), 1u);
  EXPECT_EQ(rewarm.result.rows[0][0].AsInt(), 42);  // rolled back, not 99
  // ...and the second must hit *while degraded*: the bugfix under test.
  Response hit = client.Call(Request::Query(q));
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_EQ(hit.result.rows[0][0].AsInt(), 42);
  EXPECT_TRUE(server.degraded());

  // Cache administration is not a mutation: it serves in degraded mode.
  Response stats = client.Call(
      Request::CacheControl(prometheus::server::CacheOp::kStats));
  EXPECT_TRUE(stats.ok());

  // Heal + checkpoint so the directory is consistent at teardown. While
  // degraded, mutations are refused at admission and none is in flight,
  // so the direct SetPolicy cannot race an append.
  env.SetPolicy(FaultPolicy{});
  ASSERT_TRUE(client.Checkpoint().ok());
  EXPECT_FALSE(server.degraded());
  server.Shutdown();
  fs::remove_all(dir);
}

}  // namespace
