#include <gtest/gtest.h>

#include "common/result.h"
#include "common/status.h"
#include "common/value.h"

namespace prometheus {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("missing thing");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), Status::Code::kNotFound);
  EXPECT_EQ(st.message(), "missing thing");
  EXPECT_EQ(st.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, EveryCodeHasAName) {
  EXPECT_STREQ(StatusCodeName(Status::Code::kConstraintViolation),
               "ConstraintViolation");
  EXPECT_STREQ(StatusCodeName(Status::Code::kParseError), "ParseError");
  EXPECT_STREQ(StatusCodeName(Status::Code::kAborted), "Aborted");
  EXPECT_STREQ(StatusCodeName(Status::Code::kIoError), "IoError");
  EXPECT_STREQ(StatusCodeName(Status::Code::kTypeError), "TypeError");
  EXPECT_STREQ(StatusCodeName(Status::Code::kFailedPrecondition),
               "FailedPrecondition");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::InvalidArgument("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(r.value_or(-1), -1);
}

Result<int> HalfOf(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseAssignOrReturn(int x, int* out) {
  PROMETHEUS_ASSIGN_OR_RETURN(int half, HalfOf(x));
  *out = half;
  return Status::Ok();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(10, &out).ok());
  EXPECT_EQ(out, 5);
  Status st = UseAssignOrReturn(7, &out);
  EXPECT_EQ(st.code(), Status::Code::kInvalidArgument);
}

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value::Null().type(), ValueType::kNull);
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Bool(true).AsBool(), true);
  EXPECT_EQ(Value::Int(7).AsInt(), 7);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value::String("hi").AsString(), "hi");
  EXPECT_EQ(Value::Ref(99).AsRef(), 99u);
  Value list = Value::MakeList({Value::Int(1), Value::Int(2)});
  EXPECT_EQ(list.AsList().size(), 2u);
}

TEST(ValueTest, NumericCrossTypeEquality) {
  EXPECT_TRUE(Value::Int(1).Equals(Value::Double(1.0)));
  EXPECT_FALSE(Value::Int(1).Equals(Value::Double(1.5)));
  EXPECT_FALSE(Value::Int(1).Equals(Value::String("1")));
  EXPECT_TRUE(Value::Null().Equals(Value::Null()));
  EXPECT_FALSE(Value::Null().Equals(Value::Int(0)));
}

TEST(ValueTest, RefDistinctFromInt) {
  EXPECT_FALSE(Value::Ref(1).Equals(Value::Int(1)));
  EXPECT_NE(Value::Ref(1).IndexKey(), Value::Int(1).IndexKey());
}

TEST(ValueTest, ListEquality) {
  Value a = Value::MakeList({Value::Int(1), Value::String("x")});
  Value b = Value::MakeList({Value::Int(1), Value::String("x")});
  Value c = Value::MakeList({Value::Int(1)});
  EXPECT_TRUE(a.Equals(b));
  EXPECT_FALSE(a.Equals(c));
}

TEST(ValueTest, StructAccessorsAndFieldLookup) {
  Value v = Value::MakeStruct(
      {{"name", Value::String("Apium")}, {"rows", Value::Int(4)}});
  ASSERT_EQ(v.type(), ValueType::kStruct);
  ASSERT_EQ(v.AsStruct().size(), 2u);
  EXPECT_TRUE(v.HasField("name"));
  EXPECT_FALSE(v.HasField("nope"));
  ASSERT_NE(v.Field("rows"), nullptr);
  EXPECT_EQ(v.Field("rows")->AsInt(), 4);
  EXPECT_EQ(v.Field("nope"), nullptr);
}

TEST(ValueTest, StructEqualityIsOrderSensitive) {
  Value a = Value::MakeStruct({{"x", Value::Int(1)}, {"y", Value::Int(2)}});
  Value b = Value::MakeStruct({{"x", Value::Int(1)}, {"y", Value::Int(2)}});
  Value swapped =
      Value::MakeStruct({{"y", Value::Int(2)}, {"x", Value::Int(1)}});
  Value renamed =
      Value::MakeStruct({{"x", Value::Int(1)}, {"z", Value::Int(2)}});
  EXPECT_TRUE(a.Equals(b));
  EXPECT_FALSE(a.Equals(swapped));  // field order is part of the identity
  EXPECT_FALSE(a.Equals(renamed));
  EXPECT_FALSE(a.Equals(Value::MakeStruct({{"x", Value::Int(1)}})));
}

TEST(ValueTest, StructToStringRendersFields) {
  Value v = Value::MakeStruct(
      {{"name", Value::String("a")},
       {"tags", Value::MakeList({Value::Int(1), Value::Int(2)})}});
  EXPECT_EQ(v.ToString(), "{name: \"a\", tags: [1, 2]}");
  EXPECT_EQ(Value::MakeStruct({}).ToString(), "{}");
}

TEST(ValueTest, StructIndexKeyDistinguishesNamesAndValues) {
  Value a = Value::MakeStruct({{"x", Value::Int(1)}});
  Value b = Value::MakeStruct({{"y", Value::Int(1)}});
  Value c = Value::MakeStruct({{"x", Value::Int(2)}});
  EXPECT_EQ(a.IndexKey(), Value::MakeStruct({{"x", Value::Int(1)}}).IndexKey());
  EXPECT_NE(a.IndexKey(), b.IndexKey());
  EXPECT_NE(a.IndexKey(), c.IndexKey());
}

TEST(ValueTest, Compare) {
  EXPECT_EQ(Value::Int(1).Compare(Value::Int(2)).value(), -1);
  EXPECT_EQ(Value::Int(2).Compare(Value::Double(2.0)).value(), 0);
  EXPECT_EQ(Value::String("b").Compare(Value::String("a")).value(), 1);
  EXPECT_FALSE(Value::Int(1).Compare(Value::String("a")).ok());
  EXPECT_FALSE(Value::Null().Compare(Value::Null()).ok());
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Int(3).ToString(), "3");
  EXPECT_EQ(Value::String("a").ToString(), "\"a\"");
  EXPECT_EQ(Value::Ref(5).ToString(), "@5");
  EXPECT_EQ(Value::Null().ToString(), "null");
  EXPECT_EQ(Value::MakeList({Value::Int(1), Value::Int(2)}).ToString(),
            "[1, 2]");
}

TEST(ValueTest, IndexKeyCollapsesEqualNumerics) {
  EXPECT_EQ(Value::Int(4).IndexKey(), Value::Double(4.0).IndexKey());
  EXPECT_NE(Value::Int(4).IndexKey(), Value::Double(4.5).IndexKey());
  EXPECT_NE(Value::String("4").IndexKey(), Value::Int(4).IndexKey());
}

class ValueRoundTrip : public ::testing::TestWithParam<Value> {};

TEST_P(ValueRoundTrip, EqualsItselfAndKeysAreStable) {
  const Value& v = GetParam();
  EXPECT_TRUE(v.Equals(v));
  EXPECT_EQ(v.IndexKey(), v.IndexKey());
  EXPECT_EQ(v.ToString(), v.ToString());
}

INSTANTIATE_TEST_SUITE_P(
    AllTypes, ValueRoundTrip,
    ::testing::Values(Value::Null(), Value::Bool(false), Value::Int(-3),
                      Value::Double(3.25), Value::String(""),
                      Value::String("taxon"), Value::Ref(17),
                      Value::MakeList({Value::Int(1), Value::Null()}),
                      Value::MakeStruct({{"k", Value::String("v")},
                                         {"n", Value::Int(9)}})));

}  // namespace
}  // namespace prometheus
