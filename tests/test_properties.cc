// Property-based tests: randomized operation sequences checked against
// system-wide invariants — rollback equivalence, snapshot/journal
// round-trip fidelity, traversal laws, synonym equivalence laws.

#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "core/database.h"
#include "storage/journal.h"
#include "storage/snapshot.h"

namespace prometheus {
namespace {

AttributeDef Attr(std::string name, ValueType type) {
  AttributeDef a;
  a.name = std::move(name);
  a.type = type;
  return a;
}

/// Deterministically seeds a schema exercising the interesting semantics.
void DefineFuzzSchema(Database* db) {
  ASSERT_TRUE(db->DefineClass("Node", {},
                              {Attr("tag", ValueType::kString),
                               Attr("n", ValueType::kInt)})
                  .ok());
  ASSERT_TRUE(db->DefineClass("Leaf", {"Node"}).ok());
  ASSERT_TRUE(db->DefineRelationship("edge", "Node", "Node", {},
                                     {Attr("w", ValueType::kInt)})
                  .ok());
  RelationshipSemantics owning;
  owning.kind = RelationshipKind::kAggregation;
  owning.lifetime_dependent = true;
  ASSERT_TRUE(db->DefineRelationship("owns", "Node", "Leaf", owning).ok());
}

/// One random mutation; returns false when it chose an op that could not
/// apply (e.g. no objects yet).
bool RandomOp(Database* db, std::mt19937* rng, std::vector<Oid>* pool) {
  auto pick = [&](const std::vector<Oid>& v) {
    return v[(*rng)() % v.size()];
  };
  // Refresh the pool of live oids occasionally.
  if (pool->empty() || (*rng)() % 16 == 0) {
    *pool = db->Extent("Node");
  }
  switch ((*rng)() % 8) {
    case 0:
    case 1: {
      const char* cls = (*rng)() % 4 == 0 ? "Leaf" : "Node";
      auto r = db->CreateObject(
          cls, {{"n", Value::Int(static_cast<std::int64_t>((*rng)() % 100))}});
      if (r.ok()) pool->push_back(r.value());
      return r.ok();
    }
    case 2: {
      if (pool->empty()) return false;
      Oid oid = pick(*pool);
      if (db->GetObject(oid) == nullptr) return false;
      return db
          ->SetAttribute(oid, "tag",
                         Value::String("t" + std::to_string((*rng)() % 10)))
          .ok();
    }
    case 3:
    case 4: {
      if (pool->size() < 2) return false;
      Oid a = pick(*pool);
      Oid b = pick(*pool);
      if (db->GetObject(a) == nullptr || db->GetObject(b) == nullptr) {
        return false;
      }
      const bool owning = db->IsInstanceOf(b, "Leaf") && (*rng)() % 2 == 0;
      return db
          ->CreateLink(owning ? "owns" : "edge", a, b, kNullOid,
                       owning ? std::vector<AttrInit>{}
                              : std::vector<AttrInit>{
                                    {"w", Value::Int(static_cast<std::int64_t>(
                                         (*rng)() % 50))}})
          .ok();
    }
    case 5: {
      if (pool->empty()) return false;
      Oid oid = pick(*pool);
      if (db->GetObject(oid) == nullptr) return false;
      std::vector<Oid> links = db->IncidentLinks(oid, Direction::kOut);
      if (links.empty()) return false;
      return db->DeleteLink(links[(*rng)() % links.size()]).ok();
    }
    case 6: {
      if (pool->empty()) return false;
      Oid oid = pick(*pool);
      if (db->GetObject(oid) == nullptr) return false;
      return db->DeleteObject(oid).ok();
    }
    case 7: {
      if (pool->size() < 2) return false;
      Oid a = pick(*pool);
      Oid b = pick(*pool);
      if (db->GetObject(a) == nullptr || db->GetObject(b) == nullptr) {
        return false;
      }
      return db->DeclareSynonym(a, b).ok();
    }
  }
  return false;
}

/// Structural equivalence: same live objects (attrs), links (endpoints,
/// contexts, attrs) and synonym partition — independent of extent order.
void ExpectEquivalent(const Database& a, const Database& b) {
  ASSERT_EQ(a.object_count(), b.object_count());
  ASSERT_EQ(a.link_count(), b.link_count());
  for (Oid oid : a.Extent("Node")) {
    const Object* oa = a.GetObject(oid);
    const Object* ob = b.GetObject(oid);
    ASSERT_NE(ob, nullptr) << "missing object @" << oid;
    EXPECT_EQ(oa->cls->name(), ob->cls->name());
    for (const auto& [name, value] : oa->attrs) {
      EXPECT_TRUE(ob->attrs.at(name).Equals(value)) << "@" << oid << "."
                                                    << name;
    }
    // Same incident link multiset (by oid).
    std::vector<Oid> la = oa->out_links;
    std::vector<Oid> lb = ob->out_links;
    std::sort(la.begin(), la.end());
    std::sort(lb.begin(), lb.end());
    EXPECT_EQ(la, lb) << "@" << oid;
  }
  for (Oid oid : a.Extent("Node")) {
    for (Oid other : a.Extent("Node")) {
      EXPECT_EQ(a.AreSynonyms(oid, other), b.AreSynonyms(oid, other));
    }
  }
}

class FuzzSeeds : public ::testing::TestWithParam<unsigned> {};

TEST_P(FuzzSeeds, AbortRestoresExactState) {
  std::mt19937 rng(GetParam());
  Database db;
  DefineFuzzSchema(&db);
  std::vector<Oid> pool;
  for (int i = 0; i < 120; ++i) RandomOp(&db, &rng, &pool);

  // Snapshot of the pre-transaction state (semantic reference).
  Database reference;
  {
    std::stringstream buffer;
    ASSERT_TRUE(storage::SaveSnapshot(db, buffer).ok());
    ASSERT_TRUE(storage::LoadSnapshot(&reference, buffer).ok());
  }

  ASSERT_TRUE(db.Begin().ok());
  for (int i = 0; i < 80; ++i) RandomOp(&db, &rng, &pool);
  ASSERT_TRUE(db.Abort().ok());

  ExpectEquivalent(reference, db);
}

TEST_P(FuzzSeeds, SnapshotRoundTripIsFaithful) {
  std::mt19937 rng(GetParam() + 1000);
  Database db;
  DefineFuzzSchema(&db);
  std::vector<Oid> pool;
  for (int i = 0; i < 150; ++i) RandomOp(&db, &rng, &pool);

  std::stringstream buffer;
  ASSERT_TRUE(storage::SaveSnapshot(db, buffer).ok());
  Database loaded;
  ASSERT_TRUE(storage::LoadSnapshot(&loaded, buffer).ok());
  ExpectEquivalent(db, loaded);

  // Idempotence: a second save of the loaded database re-loads to the
  // same state again.
  std::stringstream buffer2;
  ASSERT_TRUE(storage::SaveSnapshot(loaded, buffer2).ok());
  Database loaded2;
  ASSERT_TRUE(storage::LoadSnapshot(&loaded2, buffer2).ok());
  ExpectEquivalent(loaded, loaded2);
}

TEST_P(FuzzSeeds, JournalReplayMatchesLiveDatabase) {
  std::mt19937 rng(GetParam() + 2000);
  Database db;
  DefineFuzzSchema(&db);
  const std::string path = ::testing::TempDir() + "/fuzz_journal_" +
                           std::to_string(GetParam()) + ".log";
  auto journal = storage::Journal::Open(&db, path,
                                        storage::Journal::OpenMode::kTruncate);
  ASSERT_TRUE(journal.ok());
  std::vector<Oid> pool;
  for (int i = 0; i < 100; ++i) RandomOp(&db, &rng, &pool);
  // A transaction that commits and one that aborts.
  ASSERT_TRUE(db.Begin().ok());
  for (int i = 0; i < 30; ++i) RandomOp(&db, &rng, &pool);
  ASSERT_TRUE(db.Commit().ok());
  ASSERT_TRUE(db.Begin().ok());
  for (int i = 0; i < 30; ++i) RandomOp(&db, &rng, &pool);
  ASSERT_TRUE(db.Abort().ok());
  journal.value().reset();  // close

  Database replayed;
  ASSERT_TRUE(storage::Journal::Replay(&replayed, path).ok());
  ExpectEquivalent(db, replayed);
}

TEST_P(FuzzSeeds, TraversalLaws) {
  std::mt19937 rng(GetParam() + 3000);
  Database db;
  DefineFuzzSchema(&db);
  std::vector<Oid> pool;
  for (int i = 0; i < 120; ++i) RandomOp(&db, &rng, &pool);
  std::vector<Oid> nodes = db.Extent("Node");
  if (nodes.empty()) return;
  Oid start = nodes[rng() % nodes.size()];

  auto unbounded = db.Traverse(start, "edge", 1, 0);
  ASSERT_TRUE(unbounded.ok());
  // Uniqueness.
  std::vector<Oid> sorted = unbounded.value();
  std::sort(sorted.begin(), sorted.end());
  EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
              sorted.end());
  // Depth-window results are subsets of the unbounded closure.
  for (std::uint32_t lo = 1; lo <= 3; ++lo) {
    auto window = db.Traverse(start, "edge", lo, lo + 1);
    ASSERT_TRUE(window.ok());
    for (Oid oid : window.value()) {
      EXPECT_TRUE(std::binary_search(sorted.begin(), sorted.end(), oid));
    }
  }
  // Every reported node is reachable: its parents chain back via kIn
  // traversal from it containing start... verified cheaply: the reverse
  // closure from each reported node contains the start.
  for (std::size_t i = 0; i < std::min<std::size_t>(3, sorted.size()); ++i) {
    auto back = db.Traverse(sorted[i], "edge", 0, 0, Direction::kIn);
    ASSERT_TRUE(back.ok());
    EXPECT_TRUE(std::find(back.value().begin(), back.value().end(), start) !=
                back.value().end());
  }
}

TEST_P(FuzzSeeds, SynonymEquivalenceLaws) {
  std::mt19937 rng(GetParam() + 4000);
  Database db;
  DefineFuzzSchema(&db);
  std::vector<Oid> pool;
  for (int i = 0; i < 100; ++i) RandomOp(&db, &rng, &pool);
  std::vector<Oid> nodes = db.Extent("Node");
  if (nodes.size() < 3) return;
  for (int i = 0; i < 20; ++i) {
    Oid a = nodes[rng() % nodes.size()];
    Oid b = nodes[rng() % nodes.size()];
    Oid c = nodes[rng() % nodes.size()];
    // Reflexive, symmetric, transitive.
    EXPECT_TRUE(db.AreSynonyms(a, a));
    EXPECT_EQ(db.AreSynonyms(a, b), db.AreSynonyms(b, a));
    if (db.AreSynonyms(a, b) && db.AreSynonyms(b, c)) {
      EXPECT_TRUE(db.AreSynonyms(a, c));
    }
    // The canonical representative is itself canonical and shared.
    EXPECT_EQ(db.CanonicalOf(db.CanonicalOf(a)), db.CanonicalOf(a));
    if (db.AreSynonyms(a, b)) {
      EXPECT_EQ(db.CanonicalOf(a), db.CanonicalOf(b));
    }
  }
  // Synonym sets partition: sizes of distinct sets sum to the universe.
  std::unordered_map<Oid, std::size_t> set_sizes;
  for (Oid oid : nodes) {
    set_sizes[db.CanonicalOf(oid)] += 1;
  }
  std::size_t total = 0;
  for (const auto& [root, size] : set_sizes) {
    EXPECT_EQ(db.SynonymSet(root).size(), size) << "root @" << root;
    total += size;
  }
  EXPECT_EQ(total, nodes.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99999u));

}  // namespace
}  // namespace prometheus
