// Federation of taxonomic databases — the thesis' chapter-1 motivation
// ("the integration of multiple sources makes the management of all
// classifications difficult") and chapter-8 future work ("distribution of
// the system over many localised taxonomic database systems").
//
// Two institutions maintain independent Prometheus databases over
// overlapping collections. One exports a snapshot; the other imports it
// (oids remapped, schema merged). The two floras then coexist as
// overlapping classifications, duplicates are unified through instance
// synonyms, and specimen-based comparison exposes which groups the
// institutions agree on.

#include <cstdio>
#include <sstream>

#include "storage/import.h"
#include "storage/snapshot.h"
#include "taxonomy/taxonomy_db.h"

using namespace prometheus;
using namespace prometheus::taxonomy;

namespace {

void Check(const Status& st, const char* what) {
  if (!st.ok()) {
    std::printf("FAILED %s: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

struct Institution {
  TaxonomyDatabase tdb;
  Oid flora = kNullOid;
  Oid genus = kNullOid;
  std::vector<Oid> sheets;  // specimen oids, sheets[i] collected on trip i
};

/// Both institutions hold duplicates of the same five collecting trips;
/// each classifies its sheets into its own genus concept.
void BuildInstitution(Institution* inst, const char* name,
                      const char* genus_name, int keep_from, int keep_to) {
  inst->flora =
      inst->tdb.NewClassification(std::string("Flora ") + name, name, 1995)
          .value();
  inst->genus =
      inst->tdb.NewTaxon(inst->flora, Rank::kGenus, genus_name).value();
  for (int trip = 0; trip < 5; ++trip) {
    Oid sheet = inst->tdb
                    .AddSpecimen("Shared Expedition", name,
                                 "trip-" + std::to_string(trip), 1990 + trip)
                    .value();
    inst->sheets.push_back(sheet);
    if (trip >= keep_from && trip <= keep_to) {
      Check(inst->tdb.Circumscribe(inst->flora, inst->genus, sheet,
                                   "determined on site"),
            "circumscribe");
    }
  }
}

}  // namespace

int main() {
  // Edinburgh circumscribes trips 0..3 into "Apium"; Kew circumscribes
  // trips 2..4 into "Heliosciadium".
  Institution edinburgh;
  BuildInstitution(&edinburgh, "Edinburgh", "Apium", 0, 3);
  Institution kew;
  BuildInstitution(&kew, "Kew", "Heliosciadium", 2, 4);

  std::printf("Edinburgh: %zu objects; Kew: %zu objects\n",
              edinburgh.tdb.db().object_count(), kew.tdb.db().object_count());

  // Kew publishes its database as a snapshot; Edinburgh imports it.
  std::stringstream wire;
  Check(storage::SaveSnapshot(kew.tdb.db(), wire), "export Kew");
  auto report = storage::ImportSnapshot(&edinburgh.tdb.db(), wire);
  Check(report.status(), "import into Edinburgh");
  std::printf("imported %zu objects, %zu links (schema merged: %zu new "
              "classes)\n",
              report.value().objects_imported,
              report.value().links_imported,
              report.value().classes_defined);

  // The curators recognise the shared expedition sheets as duplicates of
  // the same gatherings: instance synonyms unify them.
  for (int trip = 0; trip < 5; ++trip) {
    Oid kew_sheet = report.value().oid_map.at(kew.sheets[trip]);
    Check(edinburgh.tdb.db().DeclareSynonym(edinburgh.sheets[trip],
                                            kew_sheet),
          "declare duplicate");
  }

  // Cross-institution comparison, on objective specimen evidence.
  Oid kew_flora = report.value().oid_map.at(kew.flora);
  Oid kew_genus = report.value().oid_map.at(kew.genus);
  OverlapReport overlap = edinburgh.tdb.CompareTaxa(
      edinburgh.flora, edinburgh.genus, kew_flora, kew_genus);
  const char* verdict =
      overlap.kind == SynonymyKind::kFull
          ? "full synonyms"
          : overlap.kind == SynonymyKind::kProParte ? "pro parte synonyms"
                                                    : "not synonyms";
  std::printf(
      "\nEdinburgh's Apium vs Kew's Heliosciadium: %s\n"
      "  shared gatherings: %zu (trips 2, 3)\n"
      "  only Edinburgh:    %zu (trips 0, 1)\n"
      "  only Kew:          %zu (trip 4)\n",
      verdict, overlap.shared.size(), overlap.only_a.size(),
      overlap.only_b.size());

  // POOL sees the merged store as one database with two contexts.
  auto per_flora = edinburgh.tdb.query().Execute(
      "select l.context.name, count(l) from circumscribes l "
      "group by l.context.name order by l.context.name");
  if (per_flora.ok()) {
    std::printf("\ncircumscriptions per flora after the merge:\n");
    for (const auto& row : per_flora.value().rows) {
      std::printf("  %-18s %s\n", row[0].ToString().c_str(),
                  row[1].ToString().c_str());
    }
  }
  std::printf("federated_herbaria OK\n");
  return 0;
}
