#include "query/query_engine.h"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <functional>
#include <unordered_set>

#include "obs/metrics.h"
#include "query/parser.h"

namespace prometheus::pool {

namespace {

/// Strict truthiness: booleans are themselves, null is false (absent
/// information fails a filter), anything else is a type error (5.1.2.4).
Result<bool> Truthy(const Value& v) {
  switch (v.type()) {
    case ValueType::kBool:
      return v.AsBool();
    case ValueType::kNull:
      return false;
    default:
      return Status::TypeError(std::string("expected a boolean, got ") +
                               ValueTypeName(v.type()));
  }
}

/// The query layer's metrics, registered once. Pointers are cached so the
/// hot path never does a name lookup; each hook is one enabled-branch plus
/// a relaxed atomic op.
struct EngineMetrics {
  obs::Counter* queries;
  obs::Counter* profiled;
  obs::Counter* errors;
  obs::Counter* rows_scanned;
  obs::Counter* rows_returned;
  obs::Counter* index_lookups;
  obs::Counter* extent_scans;
  obs::Counter* index_fallbacks;
  obs::Counter* catalog_materializations;
  obs::Histogram* latency;

  static const EngineMetrics& Get() {
    static const EngineMetrics m = [] {
      obs::MetricsRegistry& reg = obs::Registry();
      EngineMetrics em;
      em.queries = reg.GetCounter("pool_queries_total",
                                  "Top-level POOL queries executed");
      em.profiled = reg.GetCounter("pool_queries_profiled_total",
                                   "Queries executed with span tracing");
      em.errors = reg.GetCounter("pool_query_errors_total",
                                 "Queries that failed to parse or execute");
      em.rows_scanned =
          reg.GetCounter("pool_rows_scanned_total",
                         "Candidate bindings enumerated by the join loops");
      em.rows_returned = reg.GetCounter("pool_rows_returned_total",
                                        "Result rows produced");
      em.index_lookups =
          reg.GetCounter("pool_index_lookups_total",
                         "Ranges resolved through an attribute index");
      em.extent_scans = reg.GetCounter("pool_extent_scans_total",
                                       "Ranges resolved by full extent scan");
      em.index_fallbacks = reg.GetCounter(
          "pool_index_fallbacks_total",
          "Index lookups abandoned mid-plan (index ran ahead of the "
          "snapshot, or was dropped) and resolved by extent scan instead");
      em.catalog_materializations = reg.GetCounter(
          "pool_catalog_materializations_total",
          "sys.* virtual extents materialized from live server state");
      em.latency = reg.GetHistogram("pool_query_micros",
                                    "Top-level query latency (microseconds)");
      return em;
    }();
    return m;
  }
};

/// Per-execution memo of materialized catalog extents. The outermost
/// ExecuteInternal on a thread installs one; nested executions (subqueries,
/// dependent ranges) reuse it, so a self-join of `sys.requests` — or a
/// correlated subquery re-touching `sys.metrics` — observes one consistent
/// point-in-time row set per top-level query.
struct CatalogScope {
  std::unordered_map<std::string, std::vector<Value>> materialized;
};

thread_local CatalogScope* g_catalog_scope = nullptr;

/// RAII installer: a no-op when a scope is already active on this thread.
class ScopedCatalogScope {
 public:
  ScopedCatalogScope() {
    if (g_catalog_scope == nullptr) {
      g_catalog_scope = &local_;
      installed_ = true;
    }
  }
  ~ScopedCatalogScope() {
    if (installed_) g_catalog_scope = nullptr;
  }
  ScopedCatalogScope(const ScopedCatalogScope&) = delete;
  ScopedCatalogScope& operator=(const ScopedCatalogScope&) = delete;

 private:
  CatalogScope local_;
  bool installed_ = false;
};

}  // namespace

bool IsProfileQuery(const std::string& text) {
  std::size_t i = 0;
  while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) {
    ++i;
  }
  static constexpr char kKeyword[] = "profile";
  for (std::size_t k = 0; k < 7; ++k, ++i) {
    if (i >= text.size() ||
        std::tolower(static_cast<unsigned char>(text[i])) != kKeyword[k]) {
      return false;
    }
  }
  // Must be a whole word followed by the query body.
  return i < text.size() && std::isspace(static_cast<unsigned char>(text[i]));
}

std::string StripProfileKeyword(const std::string& text) {
  if (!IsProfileQuery(text)) return text;
  std::size_t i = 0;
  while (std::isspace(static_cast<unsigned char>(text[i]))) ++i;
  i += 7;  // "profile"
  while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) {
    ++i;
  }
  return text.substr(i);
}

bool LikeMatch(const std::string& text, const std::string& pattern) {
  // Iterative wildcard matcher with backtracking over '%'.
  std::size_t t = 0, p = 0;
  std::size_t star_p = std::string::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

std::vector<Value> ResultSet::Column(std::size_t i) const {
  std::vector<Value> out;
  out.reserve(rows.size());
  for (const auto& row : rows) {
    if (i < row.size()) out.push_back(row[i]);
  }
  return out;
}

Result<ResultSet> QueryEngine::Execute(const std::string& query,
                                       const ExecutionContext* ctx) const {
  const EngineMetrics& metrics = EngineMetrics::Get();
  metrics.queries->Increment();
  obs::ScopedTimer timer(metrics.latency);
  // Plan tier: a hit executes the cached immutable AST, skipping parse and
  // the access-path analysis. Failed parses are never cached (the error
  // path re-parses), and index existence is re-checked per execution.
  std::shared_ptr<const cache::PlanEntry> plan;
  if (plan_cache_ != nullptr) plan = plan_cache_->Lookup(query);
  if (plan == nullptr) {
    Result<std::unique_ptr<SelectQuery>> parsed = ParseQuery(query);
    if (!parsed.ok()) {
      metrics.errors->Increment();
      return parsed.status();
    }
    if (plan_cache_ == nullptr) {
      Result<ResultSet> result =
          ExecuteInternal(*parsed.value(), Environment{}, nullptr, ctx);
      if (!result.ok()) metrics.errors->Increment();
      return result;
    }
    plan = BuildPlanEntry(
        std::shared_ptr<const SelectQuery>(std::move(parsed).value()));
    plan_cache_->Insert(query, plan);
  }
  Result<ResultSet> result =
      ExecuteInternal(*plan->ast, Environment{}, nullptr, ctx, plan.get());
  if (!result.ok()) metrics.errors->Increment();
  return result;
}

Result<QueryProfile> QueryEngine::ExecuteProfiled(
    const std::string& query, const ExecutionContext* ctx) const {
  const EngineMetrics& metrics = EngineMetrics::Get();
  metrics.queries->Increment();
  metrics.profiled->Increment();
  obs::ScopedTimer timer(metrics.latency);

  QueryProfile out;
  out.trace.name = "query";
  const std::string body = StripProfileKeyword(query);
  out.trace.detail = body;
  obs::SpanTimer total(&out.trace);

  // With a plan cache attached the trace stays self-describing: a `cache`
  // span reports the plan hit/miss, and the `parse` span appears only when
  // parsing actually happened.
  std::shared_ptr<const cache::PlanEntry> plan;
  if (plan_cache_ != nullptr) {
    obs::TraceNode cache_node("cache");
    {
      obs::SpanTimer span(&cache_node);
      plan = plan_cache_->Lookup(body);
    }
    cache_node.detail = plan != nullptr
                            ? "plan hit (parse + analysis skipped)"
                            : "plan miss";
    out.trace.children.push_back(std::move(cache_node));
  }
  std::unique_ptr<SelectQuery> uncached;  ///< owns a cache-less parse
  if (plan == nullptr) {
    obs::TraceNode parse_node("parse");
    Result<std::unique_ptr<SelectQuery>> parsed = [&] {
      obs::SpanTimer span(&parse_node);
      return ParseQuery(body);
    }();
    out.trace.children.push_back(std::move(parse_node));
    if (!parsed.ok()) {
      metrics.errors->Increment();
      return parsed.status();
    }
    if (plan_cache_ != nullptr) {
      plan = BuildPlanEntry(
          std::shared_ptr<const SelectQuery>(std::move(parsed).value()));
      plan_cache_->Insert(body, plan);
    } else {
      uncached = std::move(parsed).value();
    }
  }

  const SelectQuery& ast = plan != nullptr ? *plan->ast : *uncached;
  Result<ResultSet> rows = ExecuteInternal(ast, Environment{}, &out.trace,
                                           ctx, plan.get());
  if (!rows.ok()) {
    metrics.errors->Increment();
    return rows.status();
  }
  out.rows = std::move(rows).value();
  out.trace.rows = static_cast<std::int64_t>(out.rows.rows.size());
  total.Stop();
  return out;
}

Result<Value> QueryEngine::Eval(const std::string& expr,
                                const Environment& env) const {
  PROMETHEUS_ASSIGN_OR_RETURN(std::unique_ptr<Expr> parsed,
                              ParseExpression(expr));
  return Eval(*parsed, env);
}

// ------------------------------------------------------------- expressions

Result<Value> QueryEngine::Eval(const Expr& expr,
                                const Environment& env) const {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return expr.literal;
    case ExprKind::kVariable: {
      auto it = env.find(expr.name);
      if (it == env.end()) {
        return Status::NotFound("unbound variable '" + expr.name + "'");
      }
      return it->second;
    }
    case ExprKind::kPath:
      return EvalPath(expr, env);
    case ExprKind::kDowncast: {
      PROMETHEUS_ASSIGN_OR_RETURN(Value base, Eval(*expr.children[0], env));
      // Selective downcast (5.1.1.2): keep only values of the named class.
      if (base.type() == ValueType::kRef) {
        return view().IsInstanceOf(base.AsRef(), expr.name) ? base
                                                          : Value::Null();
      }
      if (base.type() == ValueType::kList) {
        Value::List filtered;
        for (const Value& v : base.AsList()) {
          if (v.type() == ValueType::kRef &&
              view().IsInstanceOf(v.AsRef(), expr.name)) {
            filtered.push_back(v);
          }
        }
        return Value::MakeList(std::move(filtered));
      }
      if (base.is_null()) return Value::Null();
      return Status::TypeError("downcast applies to objects and lists");
    }
    case ExprKind::kUnary: {
      PROMETHEUS_ASSIGN_OR_RETURN(Value operand,
                                  Eval(*expr.children[0], env));
      if (expr.unary_op == UnaryOp::kNot) {
        PROMETHEUS_ASSIGN_OR_RETURN(bool b, Truthy(operand));
        return Value::Bool(!b);
      }
      PROMETHEUS_ASSIGN_OR_RETURN(double d, operand.ToNumeric());
      if (operand.type() == ValueType::kInt) {
        return Value::Int(-operand.AsInt());
      }
      return Value::Double(-d);
    }
    case ExprKind::kBinary:
      return EvalBinary(expr, env);
    case ExprKind::kCall:
      return EvalCall(expr, env);
    case ExprKind::kSubquery: {
      PROMETHEUS_ASSIGN_OR_RETURN(ResultSet rs,
                                  Execute(*expr.subquery, env));
      Value::List out;
      for (const auto& row : rs.rows) {
        if (row.size() == 1) {
          out.push_back(row[0]);
        } else {
          out.push_back(Value::MakeList(row));
        }
      }
      return Value::MakeList(std::move(out));
    }
  }
  return Status::TypeError("malformed expression");
}

Result<Value> QueryEngine::MemberOf(Oid oid, const std::string& member) const {
  if (const Link* link = view().GetLink(oid)) {
    if (member == "source") return Value::Ref(link->source);
    if (member == "target") return Value::Ref(link->target);
    if (member == "context") {
      return link->context == kNullOid ? Value::Null()
                                       : Value::Ref(link->context);
    }
    if (member == "relationship") return Value::String(link->def->name());
    return view().GetLinkAttribute(oid, member);
  }
  if (view().GetObject(oid) != nullptr) {
    if (member == "class") {
      return Value::String(view().GetObject(oid)->cls->name());
    }
    return view().GetAttribute(oid, member);
  }
  return Status::NotFound("no object or link @" + std::to_string(oid));
}

Result<Value> QueryEngine::EvalPath(const Expr& expr,
                                    const Environment& env) const {
  PROMETHEUS_ASSIGN_OR_RETURN(Value base, Eval(*expr.children[0], env));
  if (base.is_null()) return Value::Null();  // null propagation
  if (base.type() == ValueType::kRef) {
    return MemberOf(base.AsRef(), expr.name);
  }
  if (base.type() == ValueType::kStruct) {
    // Catalog rows: field access by name. A missing field is an error, not
    // null — typos on sys.* attributes should be loud.
    if (const Value* field = base.Field(expr.name)) return *field;
    return Status::NotFound("struct has no field '" + expr.name + "'");
  }
  if (base.type() == ValueType::kList) {
    // Path through a collection maps over its elements.
    Value::List out;
    for (const Value& v : base.AsList()) {
      if (v.is_null()) continue;
      if (v.type() != ValueType::kRef) {
        return Status::TypeError("path through a list requires objects");
      }
      PROMETHEUS_ASSIGN_OR_RETURN(Value member, MemberOf(v.AsRef(), expr.name));
      out.push_back(std::move(member));
    }
    return Value::MakeList(std::move(out));
  }
  return Status::TypeError("path step '." + expr.name +
                           "' applies to objects, links and lists");
}

Result<Value> QueryEngine::EvalBinary(const Expr& expr,
                                      const Environment& env) const {
  // Short-circuit boolean operators first.
  if (expr.binary_op == BinaryOp::kAnd || expr.binary_op == BinaryOp::kOr) {
    PROMETHEUS_ASSIGN_OR_RETURN(Value lv, Eval(*expr.children[0], env));
    PROMETHEUS_ASSIGN_OR_RETURN(bool lb, Truthy(lv));
    if (expr.binary_op == BinaryOp::kAnd && !lb) return Value::Bool(false);
    if (expr.binary_op == BinaryOp::kOr && lb) return Value::Bool(true);
    PROMETHEUS_ASSIGN_OR_RETURN(Value rv, Eval(*expr.children[1], env));
    PROMETHEUS_ASSIGN_OR_RETURN(bool rb, Truthy(rv));
    return Value::Bool(rb);
  }
  PROMETHEUS_ASSIGN_OR_RETURN(Value lhs, Eval(*expr.children[0], env));
  PROMETHEUS_ASSIGN_OR_RETURN(Value rhs, Eval(*expr.children[1], env));
  return ApplyBinaryOp(expr.binary_op, lhs, rhs);
}

Result<Value> QueryEngine::ApplyBinaryOp(BinaryOp op, const Value& lhs,
                                         const Value& rhs) {
  switch (op) {
    case BinaryOp::kEq:
      return Value::Bool(lhs.Equals(rhs));
    case BinaryOp::kNe:
      return Value::Bool(!lhs.Equals(rhs));
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe: {
      if (lhs.is_null() || rhs.is_null()) return Value::Bool(false);
      PROMETHEUS_ASSIGN_OR_RETURN(int c, lhs.Compare(rhs));
      switch (op) {
        case BinaryOp::kLt:
          return Value::Bool(c < 0);
        case BinaryOp::kLe:
          return Value::Bool(c <= 0);
        case BinaryOp::kGt:
          return Value::Bool(c > 0);
        default:
          return Value::Bool(c >= 0);
      }
    }
    case BinaryOp::kLike: {
      if (lhs.is_null()) return Value::Bool(false);
      if (lhs.type() != ValueType::kString ||
          rhs.type() != ValueType::kString) {
        return Status::TypeError("'like' requires strings");
      }
      return Value::Bool(LikeMatch(lhs.AsString(), rhs.AsString()));
    }
    case BinaryOp::kIn: {
      if (rhs.type() != ValueType::kList) {
        return Status::TypeError("'in' requires a list or subquery");
      }
      for (const Value& v : rhs.AsList()) {
        if (lhs.Equals(v)) return Value::Bool(true);
      }
      return Value::Bool(false);
    }
    case BinaryOp::kAdd: {
      if (lhs.type() == ValueType::kString ||
          rhs.type() == ValueType::kString) {
        auto text = [](const Value& v) {
          return v.type() == ValueType::kString ? v.AsString() : v.ToString();
        };
        return Value::String(text(lhs) + text(rhs));
      }
      [[fallthrough]];
    }
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
    case BinaryOp::kMod: {
      PROMETHEUS_ASSIGN_OR_RETURN(double a, lhs.ToNumeric());
      PROMETHEUS_ASSIGN_OR_RETURN(double b, rhs.ToNumeric());
      const bool ints = lhs.type() == ValueType::kInt &&
                        rhs.type() == ValueType::kInt;
      switch (op) {
        case BinaryOp::kAdd:
          return ints ? Value::Int(lhs.AsInt() + rhs.AsInt())
                      : Value::Double(a + b);
        case BinaryOp::kSub:
          return ints ? Value::Int(lhs.AsInt() - rhs.AsInt())
                      : Value::Double(a - b);
        case BinaryOp::kMul:
          return ints ? Value::Int(lhs.AsInt() * rhs.AsInt())
                      : Value::Double(a * b);
        case BinaryOp::kDiv:
          if (b == 0) return Status::InvalidArgument("division by zero");
          return ints ? Value::Int(lhs.AsInt() / rhs.AsInt())
                      : Value::Double(a / b);
        default:
          if (!ints) return Status::TypeError("'%' requires integers");
          if (rhs.AsInt() == 0) {
            return Status::InvalidArgument("division by zero");
          }
          return Value::Int(lhs.AsInt() % rhs.AsInt());
      }
    }
    default:
      return Status::TypeError("unsupported binary operator");
  }
}

Result<Value> QueryEngine::EvalCall(const Expr& expr,
                                    const Environment& env) const {
  const std::string& fn = expr.name;
  std::vector<Value> args;
  args.reserve(expr.children.size());
  for (const auto& child : expr.children) {
    PROMETHEUS_ASSIGN_OR_RETURN(Value v, Eval(*child, env));
    args.push_back(std::move(v));
  }
  auto want = [&](std::size_t lo, std::size_t hi) -> Status {
    if (args.size() < lo || args.size() > hi) {
      return Status::InvalidArgument("function '" + fn +
                                     "' called with wrong arity");
    }
    return Status::Ok();
  };
  auto as_ref = [&](std::size_t i) -> Result<Oid> {
    if (args[i].type() != ValueType::kRef) {
      return Status::TypeError("argument " + std::to_string(i + 1) + " of '" +
                               fn + "' must be an object");
    }
    return args[i].AsRef();
  };
  auto as_str = [&](std::size_t i) -> Result<std::string> {
    if (args[i].type() != ValueType::kString) {
      return Status::TypeError("argument " + std::to_string(i + 1) + " of '" +
                               fn + "' must be a string");
    }
    return args[i].AsString();
  };
  auto as_list = [&](std::size_t i) -> Result<Value::List> {
    if (args[i].type() != ValueType::kList) {
      return Status::TypeError("argument " + std::to_string(i + 1) + " of '" +
                               fn + "' must be a list");
    }
    return args[i].AsList();
  };
  auto refs_to_list = [](const std::vector<Oid>& oids) {
    Value::List out;
    out.reserve(oids.size());
    for (Oid o : oids) out.push_back(Value::Ref(o));
    return Value::MakeList(std::move(out));
  };

  // --- collection functions ---
  if (fn == "count") {
    PROMETHEUS_RETURN_IF_ERROR(want(1, 1));
    PROMETHEUS_ASSIGN_OR_RETURN(Value::List l, as_list(0));
    return Value::Int(static_cast<std::int64_t>(l.size()));
  }
  if (fn == "exists") {
    PROMETHEUS_RETURN_IF_ERROR(want(1, 1));
    PROMETHEUS_ASSIGN_OR_RETURN(Value::List l, as_list(0));
    return Value::Bool(!l.empty());
  }
  if (fn == "first") {
    PROMETHEUS_RETURN_IF_ERROR(want(1, 1));
    PROMETHEUS_ASSIGN_OR_RETURN(Value::List l, as_list(0));
    return l.empty() ? Value::Null() : l.front();
  }
  if (fn == "sum" || fn == "avg" || fn == "min" || fn == "max") {
    PROMETHEUS_RETURN_IF_ERROR(want(1, 1));
    PROMETHEUS_ASSIGN_OR_RETURN(Value::List l, as_list(0));
    if (l.empty()) return Value::Null();
    if (fn == "min" || fn == "max") {
      Value best = l.front();
      for (std::size_t i = 1; i < l.size(); ++i) {
        PROMETHEUS_ASSIGN_OR_RETURN(int c, l[i].Compare(best));
        if ((fn == "min" && c < 0) || (fn == "max" && c > 0)) best = l[i];
      }
      return best;
    }
    double total = 0;
    for (const Value& v : l) {
      PROMETHEUS_ASSIGN_OR_RETURN(double d, v.ToNumeric());
      total += d;
    }
    if (fn == "avg") return Value::Double(total / l.size());
    // sum of ints stays int.
    bool all_int = std::all_of(l.begin(), l.end(), [](const Value& v) {
      return v.type() == ValueType::kInt;
    });
    return all_int ? Value::Int(static_cast<std::int64_t>(total))
                   : Value::Double(total);
  }
  if (fn == "flatten") {
    PROMETHEUS_RETURN_IF_ERROR(want(1, 1));
    PROMETHEUS_ASSIGN_OR_RETURN(Value::List l, as_list(0));
    Value::List out;
    for (const Value& v : l) {
      if (v.type() == ValueType::kList) {
        out.insert(out.end(), v.AsList().begin(), v.AsList().end());
      } else if (!v.is_null()) {
        out.push_back(v);
      }
    }
    return Value::MakeList(std::move(out));
  }
  if (fn == "distinct") {
    PROMETHEUS_RETURN_IF_ERROR(want(1, 1));
    PROMETHEUS_ASSIGN_OR_RETURN(Value::List l, as_list(0));
    Value::List out;
    for (const Value& v : l) {
      bool dup = std::any_of(out.begin(), out.end(),
                             [&](const Value& o) { return o.Equals(v); });
      if (!dup) out.push_back(v);
    }
    return Value::MakeList(std::move(out));
  }

  // --- string functions ---
  if (fn == "lower" || fn == "upper") {
    PROMETHEUS_RETURN_IF_ERROR(want(1, 1));
    PROMETHEUS_ASSIGN_OR_RETURN(std::string s, as_str(0));
    for (char& c : s) {
      c = fn == "lower" ? static_cast<char>(std::tolower(c))
                        : static_cast<char>(std::toupper(c));
    }
    return Value::String(std::move(s));
  }
  if (fn == "length") {
    PROMETHEUS_RETURN_IF_ERROR(want(1, 1));
    if (args[0].type() == ValueType::kList) {
      return Value::Int(static_cast<std::int64_t>(args[0].AsList().size()));
    }
    PROMETHEUS_ASSIGN_OR_RETURN(std::string s, as_str(0));
    return Value::Int(static_cast<std::int64_t>(s.size()));
  }
  if (fn == "substr") {
    // substr(s, start, len): clamped to the string's bounds.
    PROMETHEUS_RETURN_IF_ERROR(want(3, 3));
    PROMETHEUS_ASSIGN_OR_RETURN(std::string s, as_str(0));
    if (args[1].type() != ValueType::kInt ||
        args[2].type() != ValueType::kInt) {
      return Status::TypeError("substr bounds must be integers");
    }
    std::int64_t start = std::max<std::int64_t>(0, args[1].AsInt());
    std::int64_t len = std::max<std::int64_t>(0, args[2].AsInt());
    if (static_cast<std::size_t>(start) >= s.size()) {
      return Value::String("");
    }
    return Value::String(s.substr(static_cast<std::size_t>(start),
                                  static_cast<std::size_t>(len)));
  }
  if (fn == "starts_with" || fn == "ends_with") {
    PROMETHEUS_RETURN_IF_ERROR(want(2, 2));
    PROMETHEUS_ASSIGN_OR_RETURN(std::string s, as_str(0));
    PROMETHEUS_ASSIGN_OR_RETURN(std::string p, as_str(1));
    if (p.size() > s.size()) return Value::Bool(false);
    bool match = fn == "starts_with" ? s.compare(0, p.size(), p) == 0
                                     : s.compare(s.size() - p.size(),
                                                 p.size(), p) == 0;
    return Value::Bool(match);
  }

  // --- object / schema functions ---
  if (fn == "class_of") {
    PROMETHEUS_RETURN_IF_ERROR(want(1, 1));
    PROMETHEUS_ASSIGN_OR_RETURN(Oid oid, as_ref(0));
    if (const Object* obj = view().GetObject(oid)) {
      return Value::String(obj->cls->name());
    }
    if (const Link* link = view().GetLink(oid)) {
      return Value::String(link->def->name());
    }
    return Value::Null();
  }
  if (fn == "is_a") {
    PROMETHEUS_RETURN_IF_ERROR(want(2, 2));
    PROMETHEUS_ASSIGN_OR_RETURN(Oid oid, as_ref(0));
    PROMETHEUS_ASSIGN_OR_RETURN(std::string cls, as_str(1));
    return Value::Bool(view().IsInstanceOf(oid, cls));
  }
  if (fn == "oid") {
    PROMETHEUS_RETURN_IF_ERROR(want(1, 1));
    PROMETHEUS_ASSIGN_OR_RETURN(Oid oid, as_ref(0));
    return Value::Int(static_cast<std::int64_t>(oid));
  }
  if (fn == "extent") {
    PROMETHEUS_RETURN_IF_ERROR(want(1, 1));
    PROMETHEUS_ASSIGN_OR_RETURN(std::string name, as_str(0));
    if (view().FindClass(name) != nullptr) {
      return refs_to_list(view().Extent(name));
    }
    if (view().FindRelationship(name) != nullptr) {
      return refs_to_list(view().LinkExtent(name));
    }
    return Status::NotFound("no extent named '" + name + "'");
  }
  if (fn == "attr") {
    PROMETHEUS_RETURN_IF_ERROR(want(2, 2));
    PROMETHEUS_ASSIGN_OR_RETURN(Oid oid, as_ref(0));
    PROMETHEUS_ASSIGN_OR_RETURN(std::string name, as_str(1));
    return MemberOf(oid, name);
  }

  // --- synonym functions (4.5) ---
  if (fn == "canonical") {
    PROMETHEUS_RETURN_IF_ERROR(want(1, 1));
    PROMETHEUS_ASSIGN_OR_RETURN(Oid oid, as_ref(0));
    return Value::Ref(view().CanonicalOf(oid));
  }
  if (fn == "synonyms") {
    PROMETHEUS_RETURN_IF_ERROR(want(1, 1));
    PROMETHEUS_ASSIGN_OR_RETURN(Oid oid, as_ref(0));
    return refs_to_list(view().SynonymSet(oid));
  }
  if (fn == "are_synonyms") {
    PROMETHEUS_RETURN_IF_ERROR(want(2, 2));
    PROMETHEUS_ASSIGN_OR_RETURN(Oid a, as_ref(0));
    PROMETHEUS_ASSIGN_OR_RETURN(Oid b, as_ref(1));
    return Value::Bool(view().AreSynonyms(a, b));
  }

  // --- graph functions (5.1.1.3) ---
  auto parse_dir = [&](std::size_t i) -> Result<Direction> {
    PROMETHEUS_ASSIGN_OR_RETURN(std::string d, as_str(i));
    if (d == "out") return Direction::kOut;
    if (d == "in") return Direction::kIn;
    if (d == "both") return Direction::kBoth;
    return Status::InvalidArgument("direction must be 'out', 'in' or 'both'");
  };
  auto opt_context = [&](std::size_t i) -> Result<Oid> {
    if (i >= args.size() || args[i].is_null()) return kNullOid;
    if (args[i].type() != ValueType::kRef) {
      return Status::TypeError("context argument must be an object");
    }
    return args[i].AsRef();
  };
  if (fn == "traverse") {
    // traverse(start, 'rel', min, max [, dir] [, context])
    PROMETHEUS_RETURN_IF_ERROR(want(4, 6));
    PROMETHEUS_ASSIGN_OR_RETURN(Oid start, as_ref(0));
    PROMETHEUS_ASSIGN_OR_RETURN(std::string rel, as_str(1));
    if (args[2].type() != ValueType::kInt ||
        args[3].type() != ValueType::kInt) {
      return Status::TypeError("traverse depths must be integers");
    }
    Direction dir = Direction::kOut;
    std::size_t ctx_arg = 4;
    if (args.size() >= 5 && args[4].type() == ValueType::kString) {
      PROMETHEUS_ASSIGN_OR_RETURN(dir, parse_dir(4));
      ctx_arg = 5;
    }
    PROMETHEUS_ASSIGN_OR_RETURN(Oid ctx, opt_context(ctx_arg));
    PROMETHEUS_ASSIGN_OR_RETURN(
        std::vector<Oid> oids,
        view().Traverse(start, rel, static_cast<std::uint32_t>(args[2].AsInt()),
                      static_cast<std::uint32_t>(args[3].AsInt()), dir, ctx));
    return refs_to_list(oids);
  }
  if (fn == "children" || fn == "parents") {
    // children(obj, 'rel' [, context])
    PROMETHEUS_RETURN_IF_ERROR(want(2, 3));
    PROMETHEUS_ASSIGN_OR_RETURN(Oid obj, as_ref(0));
    PROMETHEUS_ASSIGN_OR_RETURN(std::string rel, as_str(1));
    PROMETHEUS_ASSIGN_OR_RETURN(Oid ctx, opt_context(2));
    Direction dir = fn == "children" ? Direction::kOut : Direction::kIn;
    return refs_to_list(view().Neighbors(obj, rel, dir, ctx));
  }
  if (fn == "leaves") {
    // leaves(obj, 'rel' [, context]): descendants (or obj) with no children.
    PROMETHEUS_RETURN_IF_ERROR(want(2, 3));
    PROMETHEUS_ASSIGN_OR_RETURN(Oid obj, as_ref(0));
    PROMETHEUS_ASSIGN_OR_RETURN(std::string rel, as_str(1));
    PROMETHEUS_ASSIGN_OR_RETURN(Oid ctx, opt_context(2));
    PROMETHEUS_ASSIGN_OR_RETURN(std::vector<Oid> all,
                                view().Traverse(obj, rel, 0, 0,
                                              Direction::kOut, ctx));
    std::vector<Oid> leaves;
    for (Oid o : all) {
      if (view().Neighbors(o, rel, Direction::kOut, ctx).empty()) {
        leaves.push_back(o);
      }
    }
    return refs_to_list(leaves);
  }
  if (fn == "links") {
    // links(obj, 'rel'|null, 'out'|'in'|'both' [, context]) -> link objects.
    PROMETHEUS_RETURN_IF_ERROR(want(3, 4));
    PROMETHEUS_ASSIGN_OR_RETURN(Oid obj, as_ref(0));
    const RelationshipDef* def = nullptr;
    if (!args[1].is_null()) {
      PROMETHEUS_ASSIGN_OR_RETURN(std::string rel, as_str(1));
      def = view().FindRelationship(rel);
      if (def == nullptr) {
        return Status::NotFound("unknown relationship '" + rel + "'");
      }
    }
    PROMETHEUS_ASSIGN_OR_RETURN(Direction dir, parse_dir(2));
    PROMETHEUS_ASSIGN_OR_RETURN(Oid ctx, opt_context(3));
    return refs_to_list(view().IncidentLinks(obj, dir, def, ctx));
  }
  if (fn == "in_context") {
    // in_context(classification) -> the classification's links.
    PROMETHEUS_RETURN_IF_ERROR(want(1, 1));
    PROMETHEUS_ASSIGN_OR_RETURN(Oid ctx, as_ref(0));
    return refs_to_list(view().LinksInContext(ctx));
  }
  if (fn == "reachable") {
    // reachable(from, to, 'rel' [, context]) -> bool.
    PROMETHEUS_RETURN_IF_ERROR(want(3, 4));
    PROMETHEUS_ASSIGN_OR_RETURN(Oid from, as_ref(0));
    PROMETHEUS_ASSIGN_OR_RETURN(Oid to, as_ref(1));
    PROMETHEUS_ASSIGN_OR_RETURN(std::string rel, as_str(2));
    PROMETHEUS_ASSIGN_OR_RETURN(Oid ctx, opt_context(3));
    PROMETHEUS_ASSIGN_OR_RETURN(
        std::vector<Oid> oids,
        view().Traverse(from, rel, 1, 0, Direction::kOut, ctx));
    return Value::Bool(std::find(oids.begin(), oids.end(), to) !=
                       oids.end());
  }

  if (fn == "path") {
    // path(from, to, 'rel' [, context]) -> shortest path as a list of
    // objects including both endpoints; empty when unreachable.
    PROMETHEUS_RETURN_IF_ERROR(want(3, 4));
    PROMETHEUS_ASSIGN_OR_RETURN(Oid from, as_ref(0));
    PROMETHEUS_ASSIGN_OR_RETURN(Oid to, as_ref(1));
    PROMETHEUS_ASSIGN_OR_RETURN(std::string rel, as_str(2));
    PROMETHEUS_ASSIGN_OR_RETURN(Oid ctx, opt_context(3));
    if (view().FindRelationship(rel) == nullptr) {
      return Status::NotFound("unknown relationship '" + rel + "'");
    }
    std::unordered_map<Oid, Oid> parent;
    std::vector<Oid> frontier{from};
    parent[from] = from;
    bool found = from == to;
    while (!found && !frontier.empty()) {
      std::vector<Oid> next;
      for (Oid cur : frontier) {
        for (Oid n : view().Neighbors(cur, rel, Direction::kOut, ctx)) {
          if (parent.count(n)) continue;
          parent[n] = cur;
          if (n == to) {
            found = true;
            break;
          }
          next.push_back(n);
        }
        if (found) break;
      }
      frontier = std::move(next);
    }
    Value::List out;
    if (found) {
      std::vector<Oid> chain;
      for (Oid cur = to;; cur = parent[cur]) {
        chain.push_back(cur);
        if (cur == from) break;
      }
      for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
        out.push_back(Value::Ref(*it));
      }
    }
    return Value::MakeList(std::move(out));
  }
  if (fn == "subgraph") {
    // subgraph(start, 'rel' [, context]) -> the links of the graph
    // reachable downward from start (parameterised graph extraction,
    // thesis 5.1.1.3): the classification subtree as an entity.
    PROMETHEUS_RETURN_IF_ERROR(want(2, 3));
    PROMETHEUS_ASSIGN_OR_RETURN(Oid start, as_ref(0));
    PROMETHEUS_ASSIGN_OR_RETURN(std::string rel, as_str(1));
    PROMETHEUS_ASSIGN_OR_RETURN(Oid ctx, opt_context(2));
    const RelationshipDef* def = view().FindRelationship(rel);
    if (def == nullptr) {
      return Status::NotFound("unknown relationship '" + rel + "'");
    }
    Value::List out;
    std::unordered_set<Oid> visited{start};
    std::vector<Oid> frontier{start};
    while (!frontier.empty()) {
      Oid cur = frontier.back();
      frontier.pop_back();
      for (Oid lid : view().IncidentLinks(cur, Direction::kOut, def, ctx)) {
        const Link* link = view().GetLink(lid);
        out.push_back(Value::Ref(lid));
        if (visited.insert(link->target).second) {
          frontier.push_back(link->target);
        }
      }
    }
    return Value::MakeList(std::move(out));
  }
  if (fn == "union_of" || fn == "intersect" || fn == "minus") {
    // OQL-style set operations over lists (duplicates removed).
    PROMETHEUS_RETURN_IF_ERROR(want(2, 2));
    PROMETHEUS_ASSIGN_OR_RETURN(Value::List a, as_list(0));
    PROMETHEUS_ASSIGN_OR_RETURN(Value::List b, as_list(1));
    auto contains = [](const Value::List& l, const Value& v) {
      return std::any_of(l.begin(), l.end(),
                         [&](const Value& x) { return x.Equals(v); });
    };
    Value::List out;
    auto push_unique = [&](const Value& v) {
      if (!contains(out, v)) out.push_back(v);
    };
    if (fn == "union_of") {
      for (const Value& v : a) push_unique(v);
      for (const Value& v : b) push_unique(v);
    } else if (fn == "intersect") {
      for (const Value& v : a) {
        if (contains(b, v)) push_unique(v);
      }
    } else {
      for (const Value& v : a) {
        if (!contains(b, v)) push_unique(v);
      }
    }
    return Value::MakeList(std::move(out));
  }
  return Status::NotFound("unknown function '" + fn + "'");
}

Result<Value> QueryEngine::EvalGrouped(
    const Expr& expr, const std::vector<Environment>& group) const {
  if (group.empty()) return Value::Null();
  switch (expr.kind) {
    case ExprKind::kCall: {
      const std::string& fn = expr.name;
      if ((fn == "count" || fn == "sum" || fn == "min" || fn == "max" ||
           fn == "avg") &&
          expr.children.size() == 1) {
        // Aggregate the argument across the group's bindings.
        std::vector<Value> values;
        values.reserve(group.size());
        for (const Environment& env : group) {
          PROMETHEUS_ASSIGN_OR_RETURN(Value v, Eval(*expr.children[0], env));
          if (!v.is_null()) values.push_back(std::move(v));
        }
        if (fn == "count") {
          return Value::Int(static_cast<std::int64_t>(values.size()));
        }
        if (values.empty()) return Value::Null();
        if (fn == "min" || fn == "max") {
          Value best = values.front();
          for (std::size_t i = 1; i < values.size(); ++i) {
            PROMETHEUS_ASSIGN_OR_RETURN(int c, values[i].Compare(best));
            if ((fn == "min" && c < 0) || (fn == "max" && c > 0)) {
              best = values[i];
            }
          }
          return best;
        }
        double total = 0;
        bool all_int = true;
        for (const Value& v : values) {
          PROMETHEUS_ASSIGN_OR_RETURN(double d, v.ToNumeric());
          total += d;
          all_int = all_int && v.type() == ValueType::kInt;
        }
        if (fn == "avg") return Value::Double(total / values.size());
        return all_int ? Value::Int(static_cast<std::int64_t>(total))
                       : Value::Double(total);
      }
      // Non-aggregate calls evaluate under the group's representative.
      return Eval(expr, group.front());
    }
    case ExprKind::kBinary: {
      if (expr.binary_op == BinaryOp::kAnd ||
          expr.binary_op == BinaryOp::kOr) {
        PROMETHEUS_ASSIGN_OR_RETURN(Value lv,
                                    EvalGrouped(*expr.children[0], group));
        PROMETHEUS_ASSIGN_OR_RETURN(bool lb, Truthy(lv));
        if (expr.binary_op == BinaryOp::kAnd && !lb) {
          return Value::Bool(false);
        }
        if (expr.binary_op == BinaryOp::kOr && lb) return Value::Bool(true);
        PROMETHEUS_ASSIGN_OR_RETURN(Value rv,
                                    EvalGrouped(*expr.children[1], group));
        PROMETHEUS_ASSIGN_OR_RETURN(bool rb, Truthy(rv));
        return Value::Bool(rb);
      }
      PROMETHEUS_ASSIGN_OR_RETURN(Value lhs,
                                  EvalGrouped(*expr.children[0], group));
      PROMETHEUS_ASSIGN_OR_RETURN(Value rhs,
                                  EvalGrouped(*expr.children[1], group));
      return ApplyBinaryOp(expr.binary_op, lhs, rhs);
    }
    case ExprKind::kUnary: {
      PROMETHEUS_ASSIGN_OR_RETURN(Value operand,
                                  EvalGrouped(*expr.children[0], group));
      if (expr.unary_op == UnaryOp::kNot) {
        PROMETHEUS_ASSIGN_OR_RETURN(bool b, Truthy(operand));
        return Value::Bool(!b);
      }
      PROMETHEUS_ASSIGN_OR_RETURN(double d, operand.ToNumeric());
      if (operand.type() == ValueType::kInt) {
        return Value::Int(-operand.AsInt());
      }
      return Value::Double(-d);
    }
    default:
      // Group-constant expressions (the group-by keys themselves, paths
      // over them, literals) evaluate under the representative binding.
      return Eval(expr, group.front());
  }
}

// ----------------------------------------------------------------- queries

struct QueryEngine::RangeBinding {
  const FromRange* range;
  std::vector<Value> candidates;  ///< for extent ranges (pre-computed)
  std::string strategy;           ///< access path chosen (profiling)
};

const Expr* QueryEngine::FindIndexableConjunct(const SelectQuery& query,
                                               const FromRange& range,
                                               std::string* attr) const {
  if (indexes_ == nullptr || query.where == nullptr ||
      range.source_expr != nullptr) {
    return nullptr;
  }
  const std::string& name = range.source_name;
  if (view().FindClass(name) == nullptr) return nullptr;
  std::vector<const Expr*> conjuncts;
  std::function<void(const Expr*)> flatten = [&](const Expr* e) {
    if (e->kind == ExprKind::kBinary && e->binary_op == BinaryOp::kAnd) {
      flatten(e->children[0].get());
      flatten(e->children[1].get());
    } else {
      conjuncts.push_back(e);
    }
  };
  flatten(query.where.get());
  for (const Expr* c : conjuncts) {
    if (c->kind != ExprKind::kBinary || c->binary_op != BinaryOp::kEq) {
      continue;
    }
    const Expr* path = c->children[0].get();
    const Expr* lit = c->children[1].get();
    if (path->kind != ExprKind::kPath) std::swap(path, lit);
    if (path->kind != ExprKind::kPath || lit->kind != ExprKind::kLiteral) {
      continue;
    }
    const Expr* base = path->children[0].get();
    if (base->kind != ExprKind::kVariable || base->name != range.variable) {
      continue;
    }
    if (!indexes_->HasIndex(name, path->name)) continue;
    *attr = path->name;
    return lit;
  }
  return nullptr;
}

std::shared_ptr<const cache::PlanEntry> QueryEngine::BuildPlanEntry(
    std::shared_ptr<const SelectQuery> ast) const {
  auto entry = std::make_shared<cache::PlanEntry>();
  entry->ast = std::move(ast);
  const SelectQuery& query = *entry->ast;
  if (query.where == nullptr) return entry;
  // The same conjunct flattening FindIndexableConjunct does, but purely
  // structural: every `var.attr = literal` is recorded as a candidate
  // whether or not an index (or even the class) exists right now — those
  // checks belong to execution time, so the cached plan survives index
  // DDL and stays correct across it.
  std::vector<const Expr*> conjuncts;
  std::function<void(const Expr*)> flatten = [&](const Expr* e) {
    if (e->kind == ExprKind::kBinary && e->binary_op == BinaryOp::kAnd) {
      flatten(e->children[0].get());
      flatten(e->children[1].get());
    } else {
      conjuncts.push_back(e);
    }
  };
  flatten(query.where.get());
  for (const FromRange& range : query.from) {
    if (range.source_expr != nullptr) continue;
    std::vector<cache::PlanEntry::EqConjunct> found;
    for (const Expr* c : conjuncts) {
      if (c->kind != ExprKind::kBinary || c->binary_op != BinaryOp::kEq) {
        continue;
      }
      const Expr* path = c->children[0].get();
      const Expr* lit = c->children[1].get();
      if (path->kind != ExprKind::kPath) std::swap(path, lit);
      if (path->kind != ExprKind::kPath || lit->kind != ExprKind::kLiteral) {
        continue;
      }
      const Expr* base = path->children[0].get();
      if (base->kind != ExprKind::kVariable || base->name != range.variable) {
        continue;
      }
      found.push_back({path->name, lit});
    }
    if (!found.empty()) {
      entry->eq_conjuncts.emplace(&range, std::move(found));
    }
  }
  return entry;
}

Result<std::vector<Value>> QueryEngine::RangeCandidates(
    const SelectQuery& query, const FromRange& range, const Environment& env,
    std::string* strategy, const cache::PlanEntry* plan) const {
  (void)env;
  auto refs = [](const std::vector<Oid>& oids) {
    std::vector<Value> out;
    out.reserve(oids.size());
    for (Oid o : oids) out.push_back(Value::Ref(o));
    return out;
  };
  const std::string& name = range.source_name;
  const EngineMetrics& metrics = EngineMetrics::Get();
  // Virtual system-catalog range: materialize a point-in-time row set (at
  // most once per top-level execution, via the thread's CatalogScope). No
  // index ever applies; rows are structs, not refs.
  if (SystemCatalog::IsCatalogName(name)) {
    if (catalog_ == nullptr || !catalog_->Has(name)) {
      return Status::NotFound("no system catalog class named '" + name + "'");
    }
    if (strategy != nullptr) *strategy = "catalog materialization of " + name;
    if (g_catalog_scope != nullptr) {
      auto it = g_catalog_scope->materialized.find(name);
      if (it != g_catalog_scope->materialized.end()) return it->second;
    }
    metrics.catalog_materializations->Increment();
    std::vector<Value> rows = catalog_->Materialize(name);
    if (g_catalog_scope != nullptr) {
      g_catalog_scope->materialized.emplace(name, rows);
    }
    return rows;
  }
  const bool is_class = view().FindClass(name) != nullptr;
  if (!is_class && view().FindRelationship(name) == nullptr) {
    return Status::NotFound("no extent named '" + name + "'");
  }
  // Index optimization (6.1.5.2/3): when the where clause contains a
  // conjunct `var.attr = literal` with an index on (class, attr), replace
  // the extent scan by an index lookup. With a cached plan the conjunct
  // walk is pre-done; only the index-existence probe runs here.
  std::string attr;
  const Expr* literal = nullptr;
  if (plan != nullptr) {
    if (indexes_ != nullptr && is_class) {
      auto it = plan->eq_conjuncts.find(&range);
      if (it != plan->eq_conjuncts.end()) {
        for (const cache::PlanEntry::EqConjunct& cand : it->second) {
          if (indexes_->HasIndex(name, cand.attribute)) {
            attr = cand.attribute;
            literal = cand.literal;
            break;
          }
        }
      }
    }
  } else {
    literal = FindIndexableConjunct(query, range, &attr);
  }
  if (literal != nullptr) {
    // The HasIndex probe above and this lookup are distinct critical
    // sections, and under MVCC the index may also have run ahead of the
    // snapshot this query reads through. Either way the lookup itself is
    // the source of truth: any failure falls through to the extent scan,
    // which is always correct against the current view.
    Result<std::vector<Oid>> oids = indexes_->Lookup(
        name, attr, literal->literal, view().index_epoch_ceiling());
    if (oids.ok()) {
      metrics.index_lookups->Increment();
      ExtentHeat::Instance().RecordIndexHit(name, oids.value().size());
      if (strategy != nullptr) {
        *strategy = "index lookup on " + name + "." + attr;
      }
      return refs(oids.value());
    }
    metrics.index_fallbacks->Increment();
  }
  metrics.extent_scans->Increment();
  if (strategy != nullptr) {
    *strategy = std::string("extent scan of ") +
                (is_class ? "class " : "relationship ") + name;
  }
  std::vector<Oid> oids = is_class ? view().Extent(name) : view().LinkExtent(name);
  ExtentHeat::Instance().RecordScan(name, oids.size());
  return refs(oids);
}

Result<std::string> QueryEngine::Explain(const std::string& query) const {
  PROMETHEUS_ASSIGN_OR_RETURN(std::unique_ptr<SelectQuery> parsed,
                              ParseQuery(query));
  std::string out;
  for (const FromRange& range : parsed->from) {
    out += range.variable;
    out += ": ";
    if (range.source_expr != nullptr) {
      out += "dependent expression (evaluated per outer binding)";
    } else if (SystemCatalog::IsCatalogName(range.source_name)) {
      if (catalog_ == nullptr || !catalog_->Has(range.source_name)) {
        return Status::NotFound("no system catalog class named '" +
                                range.source_name + "'");
      }
      out += "catalog materialization of " + range.source_name;
    } else if (view().FindClass(range.source_name) != nullptr) {
      std::string attr;
      if (FindIndexableConjunct(*parsed, range, &attr) != nullptr) {
        out += "index lookup on " + range.source_name + "." + attr;
      } else {
        out += "extent scan of class " + range.source_name;
      }
    } else if (view().FindRelationship(range.source_name) != nullptr) {
      out += "extent scan of relationship " + range.source_name;
    } else {
      return Status::NotFound("no extent named '" + range.source_name + "'");
    }
    out += "\n";
  }
  if (!parsed->group_by.empty()) out += "group by: hash grouping\n";
  if (!parsed->order_by.empty()) out += "order by: sort\n";
  return out;
}

Result<ResultSet> QueryEngine::Execute(const SelectQuery& query,
                                       const Environment& outer,
                                       const ExecutionContext* ctx) const {
  return ExecuteInternal(query, outer, nullptr, ctx);
}

Result<ResultSet> QueryEngine::ExecuteInternal(const SelectQuery& query,
                                               const Environment& outer,
                                               obs::TraceNode* trace,
                                               const ExecutionContext* ctx,
                                               const cache::PlanEntry* plan)
    const {
  // Const-execution contract: this path never mutates the database. When
  // the thread reads through a pinned snapshot the epoch is immutable by
  // construction; when it reads the live database the caller must hold
  // the epoch guard, so no writer can interleave and the epoch is stable
  // across the run. An epoch change here means a racing writer (a skipped
  // ReadGuard on the live path).
#ifndef NDEBUG
  const std::uint64_t epoch_at_entry = view().epoch();
#endif
  if (query.from.empty()) {
    return Status::ParseError("query requires at least one range");
  }
  // One catalog materialization per top-level query (no-op when a scope is
  // already active, i.e. for subqueries and dependent ranges).
  ScopedCatalogScope catalog_scope;
  // Plan stage: pre-compute extent candidates (dependent ranges evaluate
  // per binding) and order the join. Built as a local node and attached
  // when complete, so sibling spans never invalidate it.
  obs::TraceNode plan_node("plan");
  obs::SpanTimer plan_span(trace != nullptr ? &plan_node : nullptr);
  std::vector<RangeBinding> ranges;
  ranges.reserve(query.from.size());
  for (const FromRange& r : query.from) {
    RangeBinding rb;
    rb.range = &r;
    if (r.source_expr == nullptr) {
      PROMETHEUS_ASSIGN_OR_RETURN(
          rb.candidates,
          RangeCandidates(query, r, outer,
                          trace != nullptr ? &rb.strategy : nullptr, plan));
    } else {
      rb.strategy = "dependent expression (evaluated per outer binding)";
    }
    ranges.push_back(std::move(rb));
  }

  // Join-order optimisation (6.1.5.3): drive the nested loops with the
  // most selective extent ranges first. Dependent ranges wait until every
  // range variable their expression references is bound.
  {
    auto references = [](const Expr* e, const std::string& var) {
      std::function<bool(const Expr*)> walk = [&](const Expr* node) -> bool {
        if (node->kind == ExprKind::kVariable && node->name == var) {
          return true;
        }
        for (const auto& child : node->children) {
          if (walk(child.get())) return true;
        }
        return false;
      };
      return walk(e);
    };
    std::vector<RangeBinding> ordered;
    std::vector<bool> placed(ranges.size(), false);
    std::unordered_set<std::string> bound;
    while (ordered.size() < ranges.size()) {
      // Prefer the eligible extent range with the fewest candidates;
      // otherwise the first eligible dependent range.
      std::size_t best = ranges.size();
      for (std::size_t i = 0; i < ranges.size(); ++i) {
        if (placed[i]) continue;
        const RangeBinding& rb = ranges[i];
        if (rb.range->source_expr != nullptr) {
          bool ready = true;
          for (const RangeBinding& other : ranges) {
            if (other.range == rb.range) continue;
            if (!bound.count(other.range->variable) &&
                references(rb.range->source_expr.get(),
                           other.range->variable)) {
              ready = false;
              break;
            }
          }
          if (!ready) continue;
          // A dependent range is only chosen when no extent range is
          // available (they usually shrink with more bindings).
          if (best == ranges.size()) best = i;
          continue;
        }
        if (best == ranges.size() ||
            ranges[best].range->source_expr != nullptr ||
            rb.candidates.size() < ranges[best].candidates.size()) {
          best = i;
        }
      }
      if (best == ranges.size()) {
        return Status::InvalidArgument(
            "circular dependency between from-ranges");
      }
      placed[best] = true;
      bound.insert(ranges[best].range->variable);
      ordered.push_back(std::move(ranges[best]));
    }
    ranges = std::move(ordered);
  }
  plan_span.Stop();
  if (trace != nullptr) {
    for (const RangeBinding& rb : ranges) {
      obs::TraceNode* child = plan_node.AddChild("range " + rb.range->variable);
      child->detail = rb.strategy;
      if (rb.range->source_expr == nullptr) {
        child->rows = static_cast<std::int64_t>(rb.candidates.size());
      }
    }
    trace->children.push_back(std::move(plan_node));
  }

  ResultSet result;
  if (query.select_star) {
    for (const FromRange& r : query.from) result.columns.push_back(r.variable);
  } else {
    for (std::size_t i = 0; i < query.items.size(); ++i) {
      const SelectItem& item = query.items[i];
      result.columns.push_back(
          item.alias.empty() ? "col" + std::to_string(i + 1) : item.alias);
    }
  }

  // Rows paired with their order-by key tuple.
  std::vector<std::pair<Value::List, std::vector<Value>>> keyed_rows;
  Environment env = outer;
  const bool grouped = !query.group_by.empty();
  if (grouped && query.select_star) {
    return Status::ParseError("'select *' cannot be combined with group by");
  }

  /// Bindings enumerated by the join loops — the query's "rows scanned"
  /// cardinality (profile + metrics).
  std::uint64_t scanned = 0;

  /// Runs the nested-loop join; `emit` is called once per binding that
  /// passes the where clause.
  std::function<Status(std::size_t, const std::function<Status()>&)>
      recurse = [&](std::size_t depth,
                    const std::function<Status()>& emit) -> Status {
    if (depth == ranges.size()) {
      if (query.where != nullptr) {
        PROMETHEUS_ASSIGN_OR_RETURN(Value cond, Eval(*query.where, env));
        PROMETHEUS_ASSIGN_OR_RETURN(bool pass, Truthy(cond));
        if (!pass) return Status::Ok();
      }
      return emit();
    }
    RangeBinding& rb = ranges[depth];
    const std::vector<Value>* candidates = &rb.candidates;
    std::vector<Value> dynamic;
    if (rb.range->source_expr != nullptr) {
      PROMETHEUS_ASSIGN_OR_RETURN(Value src,
                                  Eval(*rb.range->source_expr, env));
      if (src.type() != ValueType::kList) {
        return Status::TypeError("range expression for '" +
                                 rb.range->variable +
                                 "' must produce a list");
      }
      dynamic = src.AsList();
      candidates = &dynamic;
    }
    for (const Value& v : *candidates) {
      // Cooperative deadline / cancellation: one check per enumerated
      // binding bounds the abort latency by a single binding's work
      // (including its subqueries and the emit path).
      if (ctx != nullptr) PROMETHEUS_RETURN_IF_ERROR(ctx->Check());
      ++scanned;
      env[rb.range->variable] = v;
      PROMETHEUS_RETURN_IF_ERROR(recurse(depth + 1, emit));
    }
    env.erase(rb.range->variable);
    return Status::Ok();
  };

  obs::TraceNode exec_node("execute");
  obs::SpanTimer exec_span(trace != nullptr ? &exec_node : nullptr);

  if (grouped) {
    // Group the bindings by the group-by key, then evaluate the select
    // list (and having / order by) once per group, aggregate-aware.
    std::vector<std::string> group_order;
    std::unordered_map<std::string, std::vector<Environment>> groups;
    PROMETHEUS_RETURN_IF_ERROR(recurse(0, [&]() -> Status {
      std::string key;
      for (const auto& expr : query.group_by) {
        PROMETHEUS_ASSIGN_OR_RETURN(Value v, Eval(*expr, env));
        std::string part = v.IndexKey();
        key += std::to_string(part.size());
        key += ':';
        key += part;
      }
      auto [it, fresh] = groups.try_emplace(key);
      if (fresh) group_order.push_back(key);
      it->second.push_back(env);
      return Status::Ok();
    }));
    for (const std::string& key : group_order) {
      const std::vector<Environment>& group = groups[key];
      if (query.having != nullptr) {
        PROMETHEUS_ASSIGN_OR_RETURN(Value cond,
                                    EvalGrouped(*query.having, group));
        PROMETHEUS_ASSIGN_OR_RETURN(bool pass, Truthy(cond));
        if (!pass) continue;
      }
      std::vector<Value> row;
      for (const SelectItem& item : query.items) {
        PROMETHEUS_ASSIGN_OR_RETURN(Value v, EvalGrouped(*item.expr, group));
        row.push_back(std::move(v));
      }
      Value::List order_key;
      for (const SelectQuery::OrderKey& key : query.order_by) {
        PROMETHEUS_ASSIGN_OR_RETURN(Value v,
                                    EvalGrouped(*key.expr, group));
        order_key.push_back(std::move(v));
      }
      keyed_rows.emplace_back(std::move(order_key), std::move(row));
    }
  } else {
    PROMETHEUS_RETURN_IF_ERROR(recurse(0, [&]() -> Status {
      std::vector<Value> row;
      if (query.select_star) {
        for (const FromRange& r : query.from) row.push_back(env[r.variable]);
      } else {
        for (const SelectItem& item : query.items) {
          PROMETHEUS_ASSIGN_OR_RETURN(Value v, Eval(*item.expr, env));
          row.push_back(std::move(v));
        }
      }
      Value::List key;
      for (const SelectQuery::OrderKey& ok : query.order_by) {
        PROMETHEUS_ASSIGN_OR_RETURN(Value v, Eval(*ok.expr, env));
        key.push_back(std::move(v));
      }
      keyed_rows.emplace_back(std::move(key), std::move(row));
      return Status::Ok();
    }));
  }
  exec_span.Stop();
  if (trace != nullptr) {
    exec_node.detail = std::to_string(scanned) + " bindings scanned";
    exec_node.rows = static_cast<std::int64_t>(keyed_rows.size());
    trace->children.push_back(std::move(exec_node));
  }

  obs::TraceNode sort_node("sort");
  obs::SpanTimer sort_span(
      trace != nullptr && !query.order_by.empty() ? &sort_node : nullptr);
  if (!query.order_by.empty()) {
    // Lexicographic multi-key sort, each key with its own direction.
    std::stable_sort(
        keyed_rows.begin(), keyed_rows.end(),
        [&](const auto& a, const auto& b) {
          for (std::size_t k = 0; k < query.order_by.size(); ++k) {
            if (k >= a.first.size() || k >= b.first.size()) break;
            auto c = a.first[k].Compare(b.first[k]);
            if (!c.ok() || c.value() == 0) continue;  // tie or incomparable
            return query.order_by[k].desc ? c.value() > 0 : c.value() < 0;
          }
          return false;
        });
  }
  sort_span.Stop();
  if (trace != nullptr && !query.order_by.empty()) {
    sort_node.detail = std::to_string(query.order_by.size()) + " key(s)";
    sort_node.rows = static_cast<std::int64_t>(keyed_rows.size());
    trace->children.push_back(std::move(sort_node));
  }

  obs::TraceNode project_node("project");
  obs::SpanTimer project_span(trace != nullptr ? &project_node : nullptr);
  std::vector<std::string> seen;  // distinct keys, sorted for binary search
  for (auto& [key, row] : keyed_rows) {
    if (query.distinct) {
      std::string k;
      for (const Value& v : row) {
        std::string part = v.IndexKey();
        k += std::to_string(part.size());
        k += ':';
        k += part;
      }
      auto it = std::lower_bound(seen.begin(), seen.end(), k);
      if (it != seen.end() && *it == k) continue;
      seen.insert(it, k);
    }
    result.rows.push_back(std::move(row));
    if (query.limit >= 0 &&
        result.rows.size() >= static_cast<std::size_t>(query.limit)) {
      break;
    }
  }
  project_span.Stop();
  if (trace != nullptr) {
    project_node.detail = query.distinct ? "distinct" : "";
    if (query.limit >= 0) {
      if (!project_node.detail.empty()) project_node.detail += ", ";
      project_node.detail += "limit " + std::to_string(query.limit);
    }
    project_node.rows = static_cast<std::int64_t>(result.rows.size());
    trace->children.push_back(std::move(project_node));
  }

  const EngineMetrics& metrics = EngineMetrics::Get();
  metrics.rows_scanned->Increment(scanned);
  metrics.rows_returned->Increment(result.rows.size());
  assert(view().epoch() == epoch_at_entry &&
         "database mutated during const query execution — caller must hold "
         "Database::ReadGuard");
  return result;
}

}  // namespace prometheus::pool
