# Empty compiler generated dependencies file for prometheus_event.
# This may be replaced when dependencies are built.
