file(REMOVE_RECURSE
  "CMakeFiles/test_views.dir/test_views.cc.o"
  "CMakeFiles/test_views.dir/test_views.cc.o.d"
  "test_views"
  "test_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
