file(REMOVE_RECURSE
  "CMakeFiles/federated_herbaria.dir/federated_herbaria.cpp.o"
  "CMakeFiles/federated_herbaria.dir/federated_herbaria.cpp.o.d"
  "federated_herbaria"
  "federated_herbaria.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/federated_herbaria.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
