// Replication chaos drill: a leader and two followers under churn, cycling
// kill-the-leader -> promote-the-newest-follower -> re-point-the-survivor
// for PROMETHEUS_CHAOS_SECONDS (default 3; CI runs 30 under ASan/UBSan and
// TSan). Invariants held through every failover:
//
//  - after a drain, the promoted follower serves *exactly* the acknowledged
//    leader state — no committed transaction lost, none invented;
//  - multi-record transactions land atomically (both halves or neither);
//  - the survivor re-points to the promoted leader and reconverges without
//    a rebootstrap (its mirror is a prefix of the new leader's history);
//  - a wiped node bootstraps from scratch each epoch (snapshot + tail);
//  - when the dust settles, expired pins stop protecting files and
//    checkpoints prune superseded generations — nothing leaks.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/database.h"
#include "net/http_server.h"
#include "replication/follower.h"
#include "replication/source.h"
#include "server/client.h"
#include "server/server.h"
#include "storage/recovery.h"

namespace {

namespace fs = std::filesystem;

using prometheus::AttributeDef;
using prometheus::Database;
using prometheus::Status;
using prometheus::Value;
using prometheus::ValueType;
using prometheus::net::HttpFrontEnd;
using prometheus::replication::Follower;
using prometheus::replication::ReplicationSource;
using prometheus::server::Client;
using prometheus::server::Server;
using prometheus::storage::DurableStore;

int ChaosSeconds() {
  const char* env = std::getenv("PROMETHEUS_CHAOS_SECONDS");
  if (env == nullptr) return 3;
  const int parsed = std::atoi(env);
  return parsed > 0 ? parsed : 3;
}

AttributeDef Attr(std::string name, ValueType type) {
  AttributeDef def;
  def.name = std::move(name);
  def.type = type;
  return def;
}

std::string StateDigest(Client* client) {
  auto rs = client->Query("select s.name, s.rank from Sp s");
  EXPECT_TRUE(rs.ok()) << rs.status().ToString();
  std::string digest;
  for (const auto& row : rs.value().rows) {
    for (const auto& v : row) digest += v.ToString() + "|";
    digest += "\n";
  }
  return digest;
}

/// A leader node: store + server + replication endpoint + HTTP front end.
/// Built either by opening a directory or by adopting a store a promotion
/// just produced.
struct Node {
  std::unique_ptr<DurableStore> store;
  std::unique_ptr<Server> server;
  std::unique_ptr<ReplicationSource> source;
  std::unique_ptr<HttpFrontEnd> front;

  static std::unique_ptr<Node> Open(const std::string& dir) {
    DurableStore::Options store_options;
    store_options.bootstrap = [](Database* db) {
      return db
          ->DefineClass("Sp", {},
                        {Attr("name", ValueType::kString),
                         Attr("rank", ValueType::kInt)})
          .status();
    };
    auto store = DurableStore::Open(dir, store_options);
    EXPECT_TRUE(store.ok()) << store.status().ToString();
    if (!store.ok()) return nullptr;
    return Adopt(std::move(store).value());
  }

  static std::unique_ptr<Node> Adopt(std::unique_ptr<DurableStore> s) {
    auto node = std::make_unique<Node>();
    node->store = std::move(s);
    Server::Options server_options;
    server_options.worker_threads = 2;
    server_options.store = node->store.get();
    node->server = std::make_unique<Server>(&node->store->db(),
                                            server_options);
    ReplicationSource::Options src_options;
    src_options.follower_expiry_ms = 500;  // leak check runs fast
    node->source = std::make_unique<ReplicationSource>(node->store.get(),
                                                       src_options);
    HttpFrontEnd::Options front_options;
    front_options.handler_threads = 4;  // 2 polling followers + slack
    front_options.aux_handler = node->source->AuxHandler();
    node->front = std::make_unique<HttpFrontEnd>(node->server.get(),
                                                 front_options);
    EXPECT_TRUE(node->front->Start().ok());
    return node;
  }

  int port() const { return front->port(); }

  /// The "kill": the replication and client planes vanish mid-poll.
  void Kill() {
    front->Stop();
    server->Shutdown();
    source.reset();
  }

  ~Node() {
    if (front && front->running()) Kill();
  }
};

std::unique_ptr<Follower> StartFollower(const std::string& dir, int port,
                                        const std::string& id) {
  Follower::Options o;
  o.dir = dir;
  o.leader_port = port;
  o.follower_id = id;
  o.serve_http = false;  // the drill reads through the in-process server
  o.poll_interval_ms = 2;
  auto follower = Follower::Start(std::move(o));
  EXPECT_TRUE(follower.ok()) << follower.status().ToString();
  return follower.ok() ? std::move(follower).value() : nullptr;
}

TEST(ReplChaosTest, FailoverLoopLosesNothingAndLeaksNothing) {
  const std::string base = ::testing::TempDir() + "/prometheus_repl_chaos";
  fs::remove_all(base);
  fs::create_directories(base);
  // Three directories rotate through the roles leader / follower /
  // follower. Tracked explicitly per slot — the leader and a follower must
  // never share a directory.
  std::string leader_dir = base + "/n0";
  std::string follower_dir[2] = {base + "/n1", base + "/n2"};
  auto follower_id = [](const std::string& dir) {
    return dir.substr(dir.rfind('/') + 1);
  };

  auto leader = Node::Open(leader_dir);
  ASSERT_NE(leader, nullptr);
  std::unique_ptr<Follower> followers[2] = {
      StartFollower(follower_dir[0], leader->port(),
                    follower_id(follower_dir[0])),
      StartFollower(follower_dir[1], leader->port(),
                    follower_id(follower_dir[1])),
  };
  ASSERT_NE(followers[0], nullptr);
  ASSERT_NE(followers[1], nullptr);

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(ChaosSeconds());
  std::atomic<std::uint64_t> next_id{0};
  std::atomic<std::uint64_t> acked{0};
  std::atomic<std::uint64_t> txns{0};
  int epochs = 0;

  while (std::chrono::steady_clock::now() < deadline) {
    ++epochs;
    // Churn: one writer hammers the leader; every 25th write is a
    // two-object transaction, every 60th a checkpoint (journal rotation
    // under the followers' feet).
    std::atomic<bool> stop_writer{false};
    std::thread writer([&] {
      Client client(leader->server.get());
      while (!stop_writer.load(std::memory_order_acquire)) {
        const std::uint64_t id =
            next_id.fetch_add(1, std::memory_order_relaxed);
        if (id % 25 == 24) {
          Status st = client.Mutate([id](Database& db) {
            auto a = db.CreateObject(
                "Sp", {{"name", Value::String("tx" + std::to_string(id) +
                                              "-a")},
                       {"rank", Value::Int(static_cast<std::int64_t>(id))}});
            PROMETHEUS_RETURN_IF_ERROR(a.status());
            return db
                .CreateObject(
                    "Sp",
                    {{"name", Value::String("tx" + std::to_string(id) +
                                            "-b")},
                     {"rank", Value::Int(static_cast<std::int64_t>(id))}})
                .status();
          });
          if (st.ok()) {
            acked.fetch_add(2, std::memory_order_relaxed);
            txns.fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          if (client
                  .CreateObject(
                      "Sp",
                      {{"name", Value::String("w" + std::to_string(id))},
                       {"rank", Value::Int(static_cast<std::int64_t>(id))}})
                  .ok()) {
            acked.fetch_add(1, std::memory_order_relaxed);
          }
        }
        if (id % 60 == 59) (void)client.Checkpoint();
        // Paced, not flat-out: the drill is about failover under churn,
        // not about how many rotations a follower can walk per second.
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    stop_writer.store(true, std::memory_order_release);
    writer.join();

    // Drain: both followers reach the acknowledged tail while the stream
    // is live, then the leader dies mid-poll.
    ASSERT_TRUE(followers[0]->WaitCaughtUp(15000));
    ASSERT_TRUE(followers[1]->WaitCaughtUp(15000));
    std::string want;
    {
      Client reader(leader->server.get());
      want = StateDigest(&reader);
    }
    leader->Kill();

    // Promote the newest follower (they drained, so either qualifies —
    // pick by cursor to exercise the comparison the operator would make).
    const auto p0 = followers[0]->progress();
    const auto p1 = followers[1]->progress();
    const std::string pj0 = followers[0]->ProgressJson();
    const std::string pj1 = followers[1]->ProgressJson();
    const int newest =
        (p1.journal_seq > p0.journal_seq ||
         (p1.journal_seq == p0.journal_seq && p1.offset > p0.offset))
            ? 1
            : 0;
    const int survivor = 1 - newest;

    auto promoted = followers[newest]->Promote();
    ASSERT_TRUE(promoted.ok()) << promoted.status().ToString();
    followers[newest].reset();
    followers[survivor]->Stop();

    const std::string old_leader_dir = leader_dir;
    leader_dir = follower_dir[newest];
    leader = Node::Adopt(std::move(promoted).value());
    ASSERT_NE(leader, nullptr);

    // No committed transaction lost, none invented, atomicity intact.
    {
      Client reader(leader->server.get());
      ASSERT_EQ(StateDigest(&reader), want)
          << "epoch " << epochs << " newest=" << newest << "\np0=" << pj0
          << "\np1=" << pj1;
      auto count = reader.Query("select s from Sp s");
      ASSERT_TRUE(count.ok());
      ASSERT_EQ(count.value().rows.size(),
                static_cast<std::size_t>(acked.load()));
      auto pairs = reader.Query("select s.name from Sp s");
      ASSERT_TRUE(pairs.ok());
      std::size_t tx_members = 0;
      for (const auto& row : pairs.value().rows) {
        if (row[0].AsString().rfind("tx", 0) == 0) ++tx_members;
      }
      ASSERT_EQ(tx_members, 2 * txns.load()) << "torn transaction";
    }

    // The survivor re-points at the promoted leader and reconverges from
    // its mirror (no rebootstrap: its history is a prefix). The old
    // leader's machine is wiped and rejoins from nothing.
    followers[survivor] =
        StartFollower(follower_dir[survivor], leader->port(),
                      follower_id(follower_dir[survivor]));
    ASSERT_NE(followers[survivor], nullptr);
    fs::remove_all(old_leader_dir);
    follower_dir[newest] = old_leader_dir;
    followers[newest] = StartFollower(follower_dir[newest], leader->port(),
                                      follower_id(follower_dir[newest]));
    ASSERT_NE(followers[newest], nullptr);
    ASSERT_TRUE(followers[survivor]->WaitCaughtUp(15000));
    ASSERT_EQ(followers[survivor]->progress().rebootstraps, 0u)
        << "survivor should resume, not rebootstrap";
    ASSERT_TRUE(followers[newest]->WaitCaughtUp(15000));
  }

  EXPECT_GE(epochs, 1);

  // Leak check: with the followers gone and their pins expired, two
  // checkpoints settle back to the designed steady state — the loaded
  // snapshot plus one fallback generation, nothing older pinned alive.
  followers[0].reset();
  followers[1].reset();
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  {
    Client client(leader->server.get());
    ASSERT_TRUE(client
                    .CreateObject("Sp", {{"name", Value::String("final")},
                                         {"rank", Value::Int(0)}})
                    .ok());
    ASSERT_TRUE(client.Checkpoint().ok());
    ASSERT_TRUE(client.Checkpoint().ok());
  }
  std::size_t snapshots = 0, journals = 0;
  for (const auto& entry : fs::directory_iterator(leader_dir)) {
    std::uint64_t seq = 0;
    const std::string name = entry.path().filename().string();
    if (prometheus::storage::ParseSnapshotFileName(name, &seq)) ++snapshots;
    if (prometheus::storage::ParseJournalFileName(name, &seq)) ++journals;
  }
  EXPECT_LE(snapshots, 2u) << "leaked snapshot generations";
  EXPECT_LE(journals, 2u) << "leaked journals";
  leader->Kill();
}

}  // namespace
