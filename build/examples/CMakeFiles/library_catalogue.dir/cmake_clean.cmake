file(REMOVE_RECURSE
  "CMakeFiles/library_catalogue.dir/library_catalogue.cpp.o"
  "CMakeFiles/library_catalogue.dir/library_catalogue.cpp.o.d"
  "library_catalogue"
  "library_catalogue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/library_catalogue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
