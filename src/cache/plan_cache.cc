#include "cache/plan_cache.h"

#include <utility>

#include "obs/metrics.h"

namespace prometheus::cache {

namespace {

/// obs mirrors of the plan tier's counters; registered once, pointers
/// cached. The cache's own atomics stay authoritative for `.cache` stats
/// (they ignore the metrics kill switch); these feed /metrics and /stats.
struct PlanMetrics {
  obs::Counter* hits;
  obs::Counter* misses;
  obs::Counter* invalidations;
  obs::Counter* evictions;
  obs::Gauge* entries;

  static const PlanMetrics& Get() {
    static const PlanMetrics m = [] {
      obs::MetricsRegistry& reg = obs::Registry();
      PlanMetrics pm;
      pm.hits = reg.GetCounter("cache_plan_hits_total",
                               "Queries served from the plan cache");
      pm.misses = reg.GetCounter(
          "cache_plan_misses_total",
          "Plan-cache lookups that had to parse and plan");
      pm.invalidations = reg.GetCounter(
          "cache_plan_invalidations_total",
          "Cached plans dropped because schema DDL bumped the generation");
      pm.evictions = reg.GetCounter("cache_plan_evictions_total",
                                    "Cached plans evicted by LRU capacity");
      pm.entries =
          reg.GetGauge("cache_plan_entries", "Plans currently cached");
      return pm;
    }();
    return m;
  }
};

}  // namespace

PlanCache::PlanCache(const Config& config)
    : max_entries_(config.max_entries), enabled_(config.enabled) {}

std::shared_ptr<const PlanEntry> PlanCache::Lookup(const std::string& text) {
  if (!enabled()) return nullptr;
  const std::uint64_t gen = generation_.load(std::memory_order_acquire);
  const PlanMetrics& metrics = PlanMetrics::Get();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(text);
  if (it == entries_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    metrics.misses->Increment();
    return nullptr;
  }
  if (it->second.generation != gen) {
    // Planned under an older schema: drop it lazily here rather than
    // scanning the map on every DDL event.
    lru_.erase(it->second.lru_it);
    entries_.erase(it);
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    metrics.invalidations->Increment();
    metrics.misses->Increment();
    metrics.entries->Set(static_cast<std::int64_t>(entries_.size()));
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  hits_.fetch_add(1, std::memory_order_relaxed);
  metrics.hits->Increment();
  return it->second.entry;
}

void PlanCache::Insert(const std::string& text,
                       std::shared_ptr<const PlanEntry> entry) {
  if (!enabled() || max_entries_ == 0 || entry == nullptr) return;
  const std::uint64_t gen = generation_.load(std::memory_order_acquire);
  const PlanMetrics& metrics = PlanMetrics::Get();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(text);
  if (it != entries_.end()) {
    // Racing planners of the same text: keep the freshest.
    it->second.entry = std::move(entry);
    it->second.generation = gen;
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return;
  }
  while (entries_.size() >= max_entries_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    metrics.evictions->Increment();
  }
  lru_.push_front(text);
  entries_.emplace(text, Slot{std::move(entry), gen, lru_.begin()});
  inserts_.fetch_add(1, std::memory_order_relaxed);
  metrics.entries->Set(static_cast<std::int64_t>(entries_.size()));
}

void PlanCache::OnSchemaChange() {
  generation_.fetch_add(1, std::memory_order_acq_rel);
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
  PlanMetrics::Get().entries->Set(0);
}

PlanCache::Stats PlanCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.inserts = inserts_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.invalidations = invalidations_.load(std::memory_order_relaxed);
  s.schema_generation = generation_.load(std::memory_order_acquire);
  std::lock_guard<std::mutex> lock(mu_);
  s.entries = entries_.size();
  return s;
}

}  // namespace prometheus::cache
