#include <gtest/gtest.h>

#include "taxonomy/synthetic.h"

namespace prometheus::taxonomy {
namespace {

TEST(SyntheticFloraTest, GeneratesConfiguredShape) {
  FloraConfig config;
  config.families = 2;
  config.genera_per_family = 3;
  config.species_per_genus = 4;
  config.specimens_per_species = 2;
  TaxonomyDatabase tdb;
  auto flora = GenerateFlora(&tdb, config);
  ASSERT_TRUE(flora.ok()) << flora.status().ToString();
  EXPECT_EQ(flora.value().family_taxa.size(), 2u);
  EXPECT_EQ(flora.value().genus_taxa.size(), 6u);
  EXPECT_EQ(flora.value().species_taxa.size(), 24u);
  EXPECT_EQ(flora.value().specimens.size(), 48u);
  // One name per family, genus and species.
  EXPECT_EQ(flora.value().names.size(), 2u + 6u + 24u);
}

TEST(SyntheticFloraTest, ClassificationIsValid) {
  FloraConfig config;
  TaxonomyDatabase tdb;
  auto flora = GenerateFlora(&tdb, config);
  ASSERT_TRUE(flora.ok());
  EXPECT_TRUE(tdb.ValidateClassification(flora.value().classification).ok());
  // Every species circumscribes its specimens.
  for (Oid species : flora.value().species_taxa) {
    auto specimens =
        tdb.SpecimensUnder(flora.value().classification, species);
    ASSERT_TRUE(specimens.ok());
    EXPECT_EQ(specimens.value().size(),
              static_cast<std::size_t>(config.specimens_per_species));
  }
}

TEST(SyntheticFloraTest, NamesAreTypifiedAndDerivable) {
  FloraConfig config;
  config.families = 1;
  config.genera_per_family = 2;
  config.species_per_genus = 3;
  TaxonomyDatabase tdb;
  auto flora = GenerateFlora(&tdb, config);
  ASSERT_TRUE(flora.ok());
  // Derivation over the generated classification succeeds and reuses the
  // ascribed names (every species keeps its published binomial).
  ASSERT_TRUE(tdb.db().Begin().ok());
  Status st =
      tdb.DeriveAllNames(flora.value().classification, "Checker", 2001);
  EXPECT_TRUE(st.ok()) << st.ToString();
  for (Oid species : flora.value().species_taxa) {
    Oid calculated = tdb.CalculatedNameOf(species);
    Oid ascribed = tdb.AscribedNameOf(species);
    EXPECT_EQ(calculated, ascribed);
  }
  ASSERT_TRUE(tdb.db().Abort().ok());
}

TEST(SyntheticFloraTest, DeterministicInSeed) {
  FloraConfig config;
  TaxonomyDatabase a;
  TaxonomyDatabase b;
  auto fa = GenerateFlora(&a, config);
  auto fb = GenerateFlora(&b, config);
  ASSERT_TRUE(fa.ok());
  ASSERT_TRUE(fb.ok());
  EXPECT_EQ(fa.value().specimens.size(), fb.value().specimens.size());
  // Same collector sequence (both databases are isomorphic).
  for (std::size_t i = 0; i < fa.value().specimens.size(); ++i) {
    auto ca = a.db().GetAttribute(fa.value().specimens[i], "collector");
    auto cb = b.db().GetAttribute(fb.value().specimens[i], "collector");
    ASSERT_TRUE(ca.ok());
    ASSERT_TRUE(cb.ok());
    EXPECT_TRUE(ca.value().Equals(cb.value()));
  }
}

TEST(SyntheticFloraTest, RevisionOverlapsTheOriginal) {
  FloraConfig config;
  config.families = 1;
  config.genera_per_family = 3;
  config.species_per_genus = 4;
  config.specimens_per_species = 2;
  TaxonomyDatabase tdb;
  auto flora = GenerateFlora(&tdb, config);
  ASSERT_TRUE(flora.ok());
  auto revision = GenerateRevision(&tdb, flora.value(), 2, 7);
  ASSERT_TRUE(revision.ok()) << revision.status().ToString();
  // The revision covers exactly the same specimens.
  std::vector<Oid> roots = tdb.classifications().Roots(revision.value());
  ASSERT_EQ(roots.size(), 2u);
  std::size_t revision_specimens = 0;
  for (Oid root : roots) {
    revision_specimens +=
        tdb.SpecimensUnder(revision.value(), root).value().size();
  }
  EXPECT_EQ(revision_specimens, flora.value().specimens.size());
  // Each revised genus is at least a pro-parte synonym of some original.
  auto alignment = tdb.classifications().Align(
      revision.value(), flora.value().classification);
  for (const auto& entry : alignment) {
    EXPECT_NE(entry.kind, SynonymyKind::kNone);
  }
}

}  // namespace
}  // namespace prometheus::taxonomy
