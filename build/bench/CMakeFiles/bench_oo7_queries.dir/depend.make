# Empty dependencies file for bench_oo7_queries.
# This may be replaced when dependencies are built.
