#include "storage/snapshot.h"

#include <charconv>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

#include "storage/fault.h"

namespace prometheus::storage {

namespace {

constexpr char kMagic[] = "PROMETHEUS-SNAPSHOT-1";

/// Caps speculative `reserve` calls driven by untrusted length fields so a
/// corrupt count cannot trigger a huge allocation; vectors still grow
/// normally if the data really is that large.
constexpr std::size_t kMaxReserve = 1024;

// ---- exception-free numeric parsing (corrupt input must never throw) ----

Status BadNumber(const std::string& word) {
  return Status::IoError("corrupt record: bad number '" + word + "'");
}

Result<std::uint64_t> ParseU64(const std::string& word) {
  std::uint64_t value = 0;
  auto [ptr, ec] = std::from_chars(word.data(), word.data() + word.size(),
                                   value);
  if (ec != std::errc() || ptr != word.data() + word.size() || word.empty()) {
    return BadNumber(word);
  }
  return value;
}

Result<std::int64_t> ParseI64(const std::string& word) {
  std::int64_t value = 0;
  auto [ptr, ec] = std::from_chars(word.data(), word.data() + word.size(),
                                   value);
  if (ec != std::errc() || ptr != word.data() + word.size() || word.empty()) {
    return BadNumber(word);
  }
  return value;
}

Result<double> ParseDouble(const std::string& word) {
  if (word.empty()) return BadNumber(word);
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(word.c_str(), &end);
  if (end != word.c_str() + word.size() || errno == ERANGE) {
    return BadNumber(word);
  }
  return value;
}

/// Length-prefixed string: "<n>:<bytes>".
std::string EncodeString(const std::string& s) {
  return std::to_string(s.size()) + ":" + s;
}

Result<std::string> DecodeString(const std::string& text, std::size_t* pos) {
  std::size_t colon = text.find(':', *pos);
  if (colon == std::string::npos) {
    return Status::IoError("corrupt record: missing string length");
  }
  std::size_t len = 0;
  if (colon == *pos) {
    return Status::IoError("corrupt record: empty string length");
  }
  for (std::size_t i = *pos; i < colon; ++i) {
    char c = text[i];
    if (c < '0' || c > '9') {
      return Status::IoError("corrupt record: bad string length");
    }
    if (len > (text.size() / 10) + 1) {  // overflow / absurd length guard
      return Status::IoError("corrupt record: oversized string length");
    }
    len = len * 10 + static_cast<std::size_t>(c - '0');
  }
  if (colon + 1 + len > text.size()) {
    return Status::IoError("corrupt record: truncated string");
  }
  std::string out = text.substr(colon + 1, len);
  *pos = colon + 1 + len;
  return out;
}

/// Sorted attribute view for deterministic output.
std::map<std::string, Value> Sorted(
    const std::unordered_map<std::string, Value>& m) {
  return {m.begin(), m.end()};
}

void WriteAttributeDef(std::ostream& out, const AttributeDef& attr) {
  out << " " << EncodeString(attr.name) << " " << static_cast<int>(attr.type)
      << " " << EncodeString(attr.ref_class) << " "
      << EncodeValue(attr.default_value);
}

Result<AttributeDef> ReadAttributeDef(const std::string& line,
                                      std::size_t* pos) {
  auto skip_space = [&] {
    while (*pos < line.size() && line[*pos] == ' ') ++(*pos);
  };
  AttributeDef attr;
  skip_space();
  PROMETHEUS_ASSIGN_OR_RETURN(attr.name, DecodeString(line, pos));
  skip_space();
  std::size_t end = line.find(' ', *pos);
  if (end == std::string::npos) {
    return Status::IoError("corrupt record: attribute type");
  }
  PROMETHEUS_ASSIGN_OR_RETURN(std::int64_t type,
                              ParseI64(line.substr(*pos, end - *pos)));
  attr.type = static_cast<ValueType>(type);
  *pos = end;
  skip_space();
  PROMETHEUS_ASSIGN_OR_RETURN(attr.ref_class, DecodeString(line, pos));
  skip_space();
  PROMETHEUS_ASSIGN_OR_RETURN(attr.default_value, DecodeValue(line, pos));
  return attr;
}

struct LineCursor;
Result<RelationshipSemantics> ReadSemantics(LineCursor* cur);

/// Cursor helpers for reading a record line after its tag.
struct LineCursor {
  const std::string& line;
  std::size_t pos;

  void SkipSpace() {
    while (pos < line.size() && line[pos] == ' ') ++pos;
  }
  std::string Word() {
    SkipSpace();
    std::size_t end = line.find(' ', pos);
    if (end == std::string::npos) end = line.size();
    std::string w = line.substr(pos, end - pos);
    pos = end;
    return w;
  }
  Result<std::uint64_t> U64() { return ParseU64(Word()); }
  Result<std::uint32_t> U32() {
    PROMETHEUS_ASSIGN_OR_RETURN(std::uint64_t v, U64());
    if (v > 0xFFFFFFFFull) return Status::IoError("corrupt record: u32 range");
    return static_cast<std::uint32_t>(v);
  }
  Result<std::string> Str() {
    SkipSpace();
    return DecodeString(line, &pos);
  }
  Result<Value> Val() {
    SkipSpace();
    return DecodeValue(line, &pos);
  }
  Result<std::vector<AttrInit>> Attrs(std::size_t count) {
    std::vector<AttrInit> attrs;
    attrs.reserve(count < kMaxReserve ? count : kMaxReserve);
    for (std::size_t i = 0; i < count; ++i) {
      PROMETHEUS_ASSIGN_OR_RETURN(std::string name, Str());
      PROMETHEUS_ASSIGN_OR_RETURN(Value v, Val());
      attrs.emplace_back(std::move(name), std::move(v));
    }
    return attrs;
  }
};

Result<RelationshipSemantics> ReadSemantics(LineCursor* cur) {
  RelationshipSemantics sem;
  PROMETHEUS_ASSIGN_OR_RETURN(std::uint64_t kind, cur->U64());
  sem.kind = static_cast<RelationshipKind>(kind);
  sem.exclusive = cur->Word() == "1";
  PROMETHEUS_ASSIGN_OR_RETURN(sem.exclusivity_group, cur->Str());
  sem.shareable = cur->Word() == "1";
  sem.lifetime_dependent = cur->Word() == "1";
  sem.constant = cur->Word() == "1";
  sem.inherit_attributes = cur->Word() == "1";
  sem.directed = cur->Word() == "1";
  PROMETHEUS_ASSIGN_OR_RETURN(sem.max_out, cur->U32());
  PROMETHEUS_ASSIGN_OR_RETURN(sem.max_in, cur->U32());
  PROMETHEUS_ASSIGN_OR_RETURN(sem.min_out, cur->U32());
  PROMETHEUS_ASSIGN_OR_RETURN(sem.min_in, cur->U32());
  return sem;
}

}  // namespace

std::string EncodeValue(const Value& value) {
  switch (value.type()) {
    case ValueType::kNull:
      return "n";
    case ValueType::kBool:
      return value.AsBool() ? "b1" : "b0";
    case ValueType::kInt:
      return "i" + EncodeString(std::to_string(value.AsInt()));
    case ValueType::kDouble: {
      std::ostringstream os;
      os.precision(17);
      os << value.AsDouble();
      return "d" + EncodeString(os.str());
    }
    case ValueType::kString:
      return "s" + EncodeString(value.AsString());
    case ValueType::kRef:
      return "r" + EncodeString(std::to_string(value.AsRef()));
    case ValueType::kList: {
      std::string out = "l" + std::to_string(value.AsList().size()) + ":";
      for (const Value& v : value.AsList()) out += EncodeValue(v);
      return out;
    }
    case ValueType::kStruct: {
      std::string out = "t" + std::to_string(value.AsStruct().size()) + ":";
      for (const auto& [name, v] : value.AsStruct()) {
        out += EncodeString(name);
        out += EncodeValue(v);
      }
      return out;
    }
  }
  return "n";
}

Result<Value> DecodeValue(const std::string& text, std::size_t* pos) {
  if (*pos >= text.size()) {
    return Status::IoError("corrupt record: truncated value");
  }
  char tag = text[(*pos)++];
  switch (tag) {
    case 'n':
      return Value::Null();
    case 'b': {
      if (*pos >= text.size()) {
        return Status::IoError("corrupt record: truncated bool");
      }
      char b = text[(*pos)++];
      return Value::Bool(b == '1');
    }
    case 'i': {
      PROMETHEUS_ASSIGN_OR_RETURN(std::string s, DecodeString(text, pos));
      PROMETHEUS_ASSIGN_OR_RETURN(std::int64_t v, ParseI64(s));
      return Value::Int(v);
    }
    case 'd': {
      PROMETHEUS_ASSIGN_OR_RETURN(std::string s, DecodeString(text, pos));
      PROMETHEUS_ASSIGN_OR_RETURN(double v, ParseDouble(s));
      return Value::Double(v);
    }
    case 's': {
      PROMETHEUS_ASSIGN_OR_RETURN(std::string s, DecodeString(text, pos));
      return Value::String(std::move(s));
    }
    case 'r': {
      PROMETHEUS_ASSIGN_OR_RETURN(std::string s, DecodeString(text, pos));
      PROMETHEUS_ASSIGN_OR_RETURN(std::uint64_t v, ParseU64(s));
      return Value::Ref(v);
    }
    case 'l': {
      std::size_t colon = text.find(':', *pos);
      if (colon == std::string::npos) {
        return Status::IoError("corrupt record: bad list length");
      }
      PROMETHEUS_ASSIGN_OR_RETURN(std::uint64_t count,
                                  ParseU64(text.substr(*pos, colon - *pos)));
      *pos = colon + 1;
      Value::List items;
      items.reserve(count < kMaxReserve ? count : kMaxReserve);
      for (std::size_t i = 0; i < count; ++i) {
        PROMETHEUS_ASSIGN_OR_RETURN(Value v, DecodeValue(text, pos));
        items.push_back(std::move(v));
      }
      return Value::MakeList(std::move(items));
    }
    case 't': {
      std::size_t colon = text.find(':', *pos);
      if (colon == std::string::npos) {
        return Status::IoError("corrupt record: bad struct length");
      }
      PROMETHEUS_ASSIGN_OR_RETURN(std::uint64_t count,
                                  ParseU64(text.substr(*pos, colon - *pos)));
      *pos = colon + 1;
      Value::Struct fields;
      fields.reserve(count < kMaxReserve ? count : kMaxReserve);
      for (std::size_t i = 0; i < count; ++i) {
        PROMETHEUS_ASSIGN_OR_RETURN(std::string name, DecodeString(text, pos));
        PROMETHEUS_ASSIGN_OR_RETURN(Value v, DecodeValue(text, pos));
        fields.emplace_back(std::move(name), std::move(v));
      }
      return Value::MakeStruct(std::move(fields));
    }
    default:
      return Status::IoError("corrupt record: unknown value tag");
  }
}

namespace {

void WriteSemantics(std::ostream& out, const RelationshipSemantics& sem) {
  out << static_cast<int>(sem.kind) << " " << (sem.exclusive ? 1 : 0) << " "
      << EncodeString(sem.exclusivity_group) << " " << (sem.shareable ? 1 : 0)
      << " " << (sem.lifetime_dependent ? 1 : 0) << " "
      << (sem.constant ? 1 : 0) << " " << (sem.inherit_attributes ? 1 : 0)
      << " " << (sem.directed ? 1 : 0) << " " << sem.max_out << " "
      << sem.max_in << " " << sem.min_out << " " << sem.min_in;
}

}  // namespace

std::string ClassRecord(const Database& db, const std::string& name) {
  const ClassDef* cls = db.FindClass(name);
  if (cls == nullptr) return "";
  std::ostringstream out;
  out << "CLASS " << EncodeString(cls->name()) << " "
      << (cls->is_abstract() ? 1 : 0) << " " << cls->supers().size();
  for (const ClassDef* s : cls->supers()) {
    out << " " << EncodeString(s->name());
  }
  out << " " << cls->attributes().size();
  for (const AttributeDef& a : cls->attributes()) {
    WriteAttributeDef(out, a);
  }
  out << " " << cls->methods().size();
  for (const MethodDef& m : cls->methods()) {
    out << " " << EncodeString(m.name) << " "
        << EncodeString(m.return_type) << " " << m.parameters.size();
    for (const auto& [type, pname] : m.parameters) {
      out << " " << EncodeString(type) << " " << EncodeString(pname);
    }
  }
  return out.str();
}

std::string TemplateRecord(const Database& db, const std::string& name) {
  const RelationshipSemantics* sem = db.FindTemplateSemantics(name);
  const std::vector<AttributeDef>* attrs = db.FindTemplateAttributes(name);
  if (sem == nullptr || attrs == nullptr) return "";
  std::ostringstream out;
  out << "TMPL " << EncodeString(name) << " ";
  WriteSemantics(out, *sem);
  out << " " << attrs->size();
  for (const AttributeDef& a : *attrs) {
    WriteAttributeDef(out, a);
  }
  return out.str();
}

std::string RelationshipRecord(const Database& db, const std::string& name) {
  const RelationshipDef* rel = db.FindRelationship(name);
  if (rel == nullptr) return "";
  std::ostringstream out;
  out << "REL " << EncodeString(rel->name()) << " "
      << EncodeString(rel->source_class()->name()) << " "
      << EncodeString(rel->target_class()->name()) << " ";
  WriteSemantics(out, rel->semantics());
  out << " " << rel->supers().size();
  for (const RelationshipDef* s : rel->supers()) {
    out << " " << EncodeString(s->name());
  }
  out << " " << rel->attributes().size();
  for (const AttributeDef& a : rel->attributes()) {
    WriteAttributeDef(out, a);
  }
  return out.str();
}

std::vector<std::string> SchemaRecords(const Database& db) {
  std::vector<std::string> records;
  for (const ClassDef* cls : db.classes()) {
    records.push_back(ClassRecord(db, cls->name()));
  }
  for (const std::string& name : db.relationship_templates()) {
    std::string record = TemplateRecord(db, name);
    if (!record.empty()) records.push_back(std::move(record));
  }
  for (const RelationshipDef* rel : db.relationships()) {
    records.push_back(RelationshipRecord(db, rel->name()));
  }
  return records;
}

Status WriteSchemaRecords(const Database& db, std::ostream& out) {
  for (const std::string& record : SchemaRecords(db)) {
    out << record << "\n";
  }
  if (!out.good()) return Status::IoError("write failure");
  return Status::Ok();
}

std::string ObjectRecord(const Database& db, Oid oid) {
  const Object* obj = db.GetObject(oid);
  if (obj == nullptr) return "";
  std::ostringstream out;
  out << "OBJ " << oid << " " << EncodeString(obj->cls->name()) << " "
      << obj->attrs.size();
  for (const auto& [name, value] : Sorted(obj->attrs)) {
    out << " " << EncodeString(name) << " " << EncodeValue(value);
  }
  return out.str();
}

std::string LinkRecord(const Database& db, Oid oid) {
  const Link* link = db.GetLink(oid);
  if (link == nullptr) return "";
  std::ostringstream out;
  out << "LINK " << oid << " " << EncodeString(link->def->name()) << " "
      << link->source << " " << link->target << " " << link->context << " "
      << link->attrs.size();
  for (const auto& [name, value] : Sorted(link->attrs)) {
    out << " " << EncodeString(name) << " " << EncodeValue(value);
  }
  return out.str();
}

Status ApplyRecord(Database* db, const std::string& line, bool* end) {
  *end = false;
  if (line.empty()) return Status::Ok();
  std::size_t space = line.find(' ');
  std::string tag = space == std::string::npos ? line : line.substr(0, space);
  LineCursor cur{line, space == std::string::npos ? line.size() : space};
  if (tag == "END") {
    *end = true;
    return Status::Ok();
  }
  if (tag == "CLASS") {
    PROMETHEUS_ASSIGN_OR_RETURN(std::string name, cur.Str());
    bool is_abstract = cur.Word() == "1";
    PROMETHEUS_ASSIGN_OR_RETURN(std::uint64_t nsupers, cur.U64());
    std::vector<std::string> supers;
    supers.reserve(nsupers < kMaxReserve ? nsupers : kMaxReserve);
    for (std::size_t i = 0; i < nsupers; ++i) {
      PROMETHEUS_ASSIGN_OR_RETURN(std::string s, cur.Str());
      supers.push_back(std::move(s));
    }
    PROMETHEUS_ASSIGN_OR_RETURN(std::uint64_t nattrs, cur.U64());
    std::vector<AttributeDef> attrs;
    attrs.reserve(nattrs < kMaxReserve ? nattrs : kMaxReserve);
    for (std::size_t i = 0; i < nattrs; ++i) {
      PROMETHEUS_ASSIGN_OR_RETURN(AttributeDef a,
                                  ReadAttributeDef(line, &cur.pos));
      attrs.push_back(std::move(a));
    }
    PROMETHEUS_RETURN_IF_ERROR(
        db->DefineClass(name, supers, std::move(attrs), is_abstract)
            .status());
    // Method signatures (optional trailing section).
    cur.SkipSpace();
    if (cur.pos < line.size()) {
      PROMETHEUS_ASSIGN_OR_RETURN(std::uint64_t nmethods, cur.U64());
      for (std::size_t i = 0; i < nmethods; ++i) {
        MethodDef method;
        PROMETHEUS_ASSIGN_OR_RETURN(method.name, cur.Str());
        PROMETHEUS_ASSIGN_OR_RETURN(method.return_type, cur.Str());
        PROMETHEUS_ASSIGN_OR_RETURN(std::uint64_t nparams, cur.U64());
        for (std::size_t p = 0; p < nparams; ++p) {
          PROMETHEUS_ASSIGN_OR_RETURN(std::string type, cur.Str());
          PROMETHEUS_ASSIGN_OR_RETURN(std::string pname, cur.Str());
          method.parameters.emplace_back(std::move(type), std::move(pname));
        }
        PROMETHEUS_RETURN_IF_ERROR(db->DefineMethod(name, std::move(method)));
      }
    }
    return Status::Ok();
  }
  if (tag == "TMPL") {
    PROMETHEUS_ASSIGN_OR_RETURN(std::string name, cur.Str());
    PROMETHEUS_ASSIGN_OR_RETURN(RelationshipSemantics sem,
                                ReadSemantics(&cur));
    PROMETHEUS_ASSIGN_OR_RETURN(std::uint64_t nattrs, cur.U64());
    std::vector<AttributeDef> attrs;
    attrs.reserve(nattrs < kMaxReserve ? nattrs : kMaxReserve);
    for (std::size_t i = 0; i < nattrs; ++i) {
      PROMETHEUS_ASSIGN_OR_RETURN(AttributeDef a,
                                  ReadAttributeDef(line, &cur.pos));
      attrs.push_back(std::move(a));
    }
    return db->DefineRelationshipTemplate(name, sem, std::move(attrs));
  }
  if (tag == "REL") {
    PROMETHEUS_ASSIGN_OR_RETURN(std::string name, cur.Str());
    PROMETHEUS_ASSIGN_OR_RETURN(std::string src, cur.Str());
    PROMETHEUS_ASSIGN_OR_RETURN(std::string dst, cur.Str());
    PROMETHEUS_ASSIGN_OR_RETURN(RelationshipSemantics sem,
                                ReadSemantics(&cur));
    PROMETHEUS_ASSIGN_OR_RETURN(std::uint64_t nsupers, cur.U64());
    std::vector<std::string> supers;
    supers.reserve(nsupers < kMaxReserve ? nsupers : kMaxReserve);
    for (std::size_t i = 0; i < nsupers; ++i) {
      PROMETHEUS_ASSIGN_OR_RETURN(std::string s, cur.Str());
      supers.push_back(std::move(s));
    }
    PROMETHEUS_ASSIGN_OR_RETURN(std::uint64_t nattrs, cur.U64());
    std::vector<AttributeDef> attrs;
    attrs.reserve(nattrs < kMaxReserve ? nattrs : kMaxReserve);
    for (std::size_t i = 0; i < nattrs; ++i) {
      PROMETHEUS_ASSIGN_OR_RETURN(AttributeDef a,
                                  ReadAttributeDef(line, &cur.pos));
      attrs.push_back(std::move(a));
    }
    return db->DefineRelationship(name, src, dst, sem, std::move(attrs),
                                  supers)
        .status();
  }
  if (tag == "OBJ") {
    PROMETHEUS_ASSIGN_OR_RETURN(Oid oid, cur.U64());
    PROMETHEUS_ASSIGN_OR_RETURN(std::string cls, cur.Str());
    PROMETHEUS_ASSIGN_OR_RETURN(std::uint64_t nattrs, cur.U64());
    PROMETHEUS_ASSIGN_OR_RETURN(std::vector<AttrInit> attrs,
                                cur.Attrs(nattrs));
    return db->RestoreObjectRaw(oid, cls, std::move(attrs));
  }
  if (tag == "LINK") {
    PROMETHEUS_ASSIGN_OR_RETURN(Oid oid, cur.U64());
    PROMETHEUS_ASSIGN_OR_RETURN(std::string rel, cur.Str());
    PROMETHEUS_ASSIGN_OR_RETURN(Oid src, cur.U64());
    PROMETHEUS_ASSIGN_OR_RETURN(Oid dst, cur.U64());
    PROMETHEUS_ASSIGN_OR_RETURN(Oid ctx, cur.U64());
    PROMETHEUS_ASSIGN_OR_RETURN(std::uint64_t nattrs, cur.U64());
    PROMETHEUS_ASSIGN_OR_RETURN(std::vector<AttrInit> attrs,
                                cur.Attrs(nattrs));
    return db->RestoreLinkRaw(oid, rel, src, dst, ctx, std::move(attrs));
  }
  if (tag == "SYN") {
    PROMETHEUS_ASSIGN_OR_RETURN(Oid child, cur.U64());
    PROMETHEUS_ASSIGN_OR_RETURN(Oid parent, cur.U64());
    return db->RestoreSynonymRaw(child, parent);
  }
  if (tag == "DELO") {
    PROMETHEUS_ASSIGN_OR_RETURN(Oid oid, cur.U64());
    if (db->GetObject(oid) == nullptr) return Status::Ok();  // cascaded
    return db->DeleteObject(oid);
  }
  if (tag == "DELL") {
    PROMETHEUS_ASSIGN_OR_RETURN(Oid oid, cur.U64());
    if (db->GetLink(oid) == nullptr) return Status::Ok();  // cascaded
    return db->DeleteLink(oid);
  }
  if (tag == "SETA") {
    PROMETHEUS_ASSIGN_OR_RETURN(Oid oid, cur.U64());
    PROMETHEUS_ASSIGN_OR_RETURN(std::string name, cur.Str());
    PROMETHEUS_ASSIGN_OR_RETURN(Value v, cur.Val());
    return db->SetAttribute(oid, name, std::move(v));
  }
  if (tag == "SETL") {
    PROMETHEUS_ASSIGN_OR_RETURN(Oid oid, cur.U64());
    PROMETHEUS_ASSIGN_OR_RETURN(std::string name, cur.Str());
    PROMETHEUS_ASSIGN_OR_RETURN(Value v, cur.Val());
    return db->SetLinkAttribute(oid, name, std::move(v));
  }
  return Status::IoError("unknown record '" + tag + "'");
}

Status SaveSnapshot(const Database& db, std::ostream& out) {
  out << kMagic << "\n";
  PROMETHEUS_RETURN_IF_ERROR(WriteSchemaRecords(db, out));
  // Objects first (contexts are objects, so link records resolve), then
  // links, then synonym edges.
  for (const ClassDef* cls : db.classes()) {
    for (Oid oid : db.Extent(cls->name(), /*include_subclasses=*/false)) {
      out << ObjectRecord(db, oid) << "\n";
    }
  }
  if (!out.good()) return Status::IoError("write failure");
  for (const RelationshipDef* rel : db.relationships()) {
    for (Oid oid :
         db.LinkExtent(rel->name(), /*include_subrelationships=*/false)) {
      out << LinkRecord(db, oid) << "\n";
    }
  }
  for (const ClassDef* cls : db.classes()) {
    for (Oid oid : db.Extent(cls->name(), /*include_subclasses=*/false)) {
      Oid root = db.CanonicalOf(oid);
      if (root != oid) out << "SYN " << oid << " " << root << "\n";
    }
  }
  out << "END\n";
  out.flush();
  if (!out.good()) return Status::IoError("write failure");
  return Status::Ok();
}

Status SaveSnapshot(const Database& db, const std::string& path, Env* env) {
  if (env == nullptr) env = Env::Default();
  // Stage the full snapshot in memory, then write-to-temp + fsync + rename
  // so a crash at any point leaves an existing snapshot at `path` intact.
  std::ostringstream buffer;
  PROMETHEUS_RETURN_IF_ERROR(SaveSnapshot(db, buffer));
  const std::string tmp = path + ".tmp";
  {
    PROMETHEUS_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                                env->NewWritableFile(tmp, /*truncate=*/true));
    Status st = file->Append(buffer.str());
    if (st.ok()) st = file->Sync();
    Status close = file->Close();
    if (st.ok()) st = close;
    if (!st.ok()) {
      (void)env->RemoveFile(tmp);
      return st;
    }
  }
  Status st = env->RenameFile(tmp, path);
  if (!st.ok()) {
    (void)env->RemoveFile(tmp);
    return st;
  }
  std::string dir = ".";
  if (std::size_t slash = path.find_last_of('/'); slash != std::string::npos) {
    dir = path.substr(0, slash == 0 ? 1 : slash);
  }
  return env->SyncDir(dir);
}

Status SaveSnapshot(const Database& db, const std::string& path) {
  return SaveSnapshot(db, path, nullptr);
}

Status LoadSnapshot(Database* db, std::istream& in) {
  if (!db->classes().empty() || db->object_count() != 0) {
    return Status::FailedPrecondition(
        "snapshots load into an empty database");
  }
  std::string line;
  if (!std::getline(in, line) || line != kMagic) {
    return Status::IoError("not a Prometheus snapshot");
  }
  // Read the whole stream first and require the END record *before*
  // applying anything: a truncated snapshot must leave `db` untouched.
  std::vector<std::string> lines;
  bool saw_end = false;
  while (!saw_end && std::getline(in, line)) {
    if (line == "END") saw_end = true;
    lines.push_back(std::move(line));
  }
  if (!saw_end) return Status::IoError("truncated snapshot (no END record)");
  bool end = false;
  for (const std::string& record : lines) {
    Status st = ApplyRecord(db, record, &end);
    if (!st.ok()) {
      // Surface every corruption as kIoError; the message keeps the
      // underlying cause. The database may hold a partial prefix — callers
      // that need atomicity load into a scratch database (DurableStore does).
      if (st.code() == Status::Code::kIoError) return st;
      return Status::IoError("corrupt snapshot record: " + st.ToString());
    }
    if (end) break;
  }
  return Status::Ok();
}

Status LoadSnapshot(Database* db, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "'");
  return LoadSnapshot(db, in);
}

}  // namespace prometheus::storage
