#ifndef PROMETHEUS_CORE_SCHEMA_H_
#define PROMETHEUS_CORE_SCHEMA_H_

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/value.h"

namespace prometheus {

/// Declaration of an attribute of a class or of a relationship class
/// (thesis section 4.2: attributes are (type, name) pairs).
struct AttributeDef {
  /// Attribute name, unique within its class (including inherited names).
  std::string name;
  /// Declared type. `kNull` means "any" (untyped, ODMG `Object`).
  ValueType type = ValueType::kNull;
  /// For `kRef` attributes, the class the referenced object must belong to;
  /// empty means any class.
  std::string ref_class;
  /// Value given to freshly created instances; null if none.
  Value default_value;
};

/// Declaration of a method of a class (thesis 4.2: methods are
/// `C m(C1 r1, ..., Cn rn)` signatures). Prometheus stores method
/// signatures as schema metadata — behaviour lives in the host language,
/// as in the ODMG binding.
struct MethodDef {
  std::string name;
  /// Return type name; empty for void.
  std::string return_type;
  /// Parameter (type, name) pairs.
  std::vector<std::pair<std::string, std::string>> parameters;
};

/// A class of the ODMG-style schema (thesis 4.2).
///
/// Owns its directly declared attributes; inherited attributes are reached
/// by walking `supers()`. Instances are created through
/// `Database::CreateObject` and recorded in the class extent.
class ClassDef {
 public:
  /// Constructed by `Database::DefineClass` only.
  ClassDef(std::string name, bool is_abstract)
      : name_(std::move(name)), abstract_(is_abstract) {}

  ClassDef(const ClassDef&) = delete;
  ClassDef& operator=(const ClassDef&) = delete;

  const std::string& name() const { return name_; }

  /// Abstract classes cannot be instantiated.
  bool is_abstract() const { return abstract_; }

  /// Direct super-classes (multiple inheritance is allowed, as in ODMG).
  const std::vector<const ClassDef*>& supers() const { return supers_; }

  /// Direct sub-classes, maintained by the schema for extent queries.
  const std::vector<const ClassDef*>& subclasses() const {
    return subclasses_;
  }

  /// Attributes declared directly on this class.
  const std::vector<AttributeDef>& attributes() const { return attributes_; }

  /// Method signatures declared directly on this class.
  const std::vector<MethodDef>& methods() const { return methods_; }

  /// Finds `name` on this class or any super-class; nullptr if absent.
  const MethodDef* FindMethod(std::string_view name) const;

  /// True when this class is `other` or transitively inherits from it.
  bool IsSubclassOf(const ClassDef* other) const;

  /// Finds `name` on this class or any super-class; nullptr if absent.
  const AttributeDef* FindAttribute(std::string_view name) const;

  /// Appends all attributes, inherited first (super-class order), own last.
  void CollectAttributes(std::vector<const AttributeDef*>* out) const;

 private:
  friend class Database;

  std::string name_;
  bool abstract_;
  std::vector<const ClassDef*> supers_;
  std::vector<const ClassDef*> subclasses_;
  std::vector<AttributeDef> attributes_;
  std::vector<MethodDef> methods_;
};

/// Kind of a relationship class (thesis 4.3): aggregations model whole–part
/// composition (and participate in composite-object semantics); associations
/// model every other semantic link.
enum class RelationshipKind : std::uint8_t {
  kAssociation = 0,
  kAggregation,
};

/// Unbounded cardinality marker.
inline constexpr std::uint32_t kUnboundedCard =
    std::numeric_limits<std::uint32_t>::max();

/// The built-in semantic attributes of a relationship class
/// (thesis 4.4.3, figures 12–18). These are the feature the model adds over
/// plain ODMG references, and the feature whose runtime cost the OO7-derived
/// benchmark isolates.
struct RelationshipSemantics {
  RelationshipKind kind = RelationshipKind::kAssociation;

  /// Exclusivity (figure 12/15): a target object may participate as target
  /// of at most one link within the relationship's exclusivity group.
  bool exclusive = false;

  /// Exclusivity group name. Relationship classes sharing a group are
  /// mutually exclusive on their targets (the "crossed incoming arcs"
  /// notation). Defaults to the relationship class' own name.
  std::string exclusivity_group;

  /// Sharability (figure 13/16): when false, a target may be the target of
  /// at most one link *of this relationship class* (an unshared component).
  bool shareable = true;

  /// Lifetime dependency: deleting the source (whole) deletes its targets
  /// (parts) transitively. Typical for aggregations.
  bool lifetime_dependent = false;

  /// Constancy: once created, links of this class can neither be deleted
  /// explicitly nor have their attributes changed. (Cascade deletion caused
  /// by a participant's death still removes them.)
  bool constant = false;

  /// Attribute inheritance (figures 17–18, ADAM-style roles): attributes
  /// stored on a link become readable as derived attributes of the target
  /// object, giving objects context-dependent roles.
  bool inherit_attributes = false;

  /// Directionality (requirement 2). Undirected relationships are traversed
  /// both ways by `Database::Traverse`.
  bool directed = true;

  /// Maximum number of links of this class per source object.
  std::uint32_t max_out = kUnboundedCard;
  /// Maximum number of links of this class per target object.
  std::uint32_t max_in = kUnboundedCard;
  /// Minimum link counts, validated by `Database::ValidateCardinality`.
  std::uint32_t min_out = 0;
  std::uint32_t min_in = 0;
};

/// A relationship class (thesis 4.3, figure 10): a first-class, typed,
/// directed edge type between a source class and a target class, carrying
/// its own attributes and semantics.
///
/// Relationship classes may themselves inherit (figure 11); a link of a
/// sub-relationship is traversed by queries naming the super-relationship.
class RelationshipDef {
 public:
  /// Constructed by `Database::DefineRelationship` only.
  RelationshipDef(std::string name, const ClassDef* source,
                  const ClassDef* target, RelationshipSemantics semantics)
      : name_(std::move(name)),
        source_(source),
        target_(target),
        semantics_(std::move(semantics)) {}

  RelationshipDef(const RelationshipDef&) = delete;
  RelationshipDef& operator=(const RelationshipDef&) = delete;

  const std::string& name() const { return name_; }

  /// Class of permitted source objects.
  const ClassDef* source_class() const { return source_; }

  /// Class of permitted target objects.
  const ClassDef* target_class() const { return target_; }

  const RelationshipSemantics& semantics() const { return semantics_; }

  /// Attributes carried by each link of this class.
  const std::vector<AttributeDef>& attributes() const { return attributes_; }

  /// Direct super-relationship classes.
  const std::vector<const RelationshipDef*>& supers() const {
    return supers_;
  }

  /// Direct sub-relationship classes.
  const std::vector<const RelationshipDef*>& subrelationships() const {
    return subs_;
  }

  /// True when this relationship class is `other` or inherits from it.
  bool IsSubrelationshipOf(const RelationshipDef* other) const;

  /// Finds a link attribute on this class or a super; nullptr if absent.
  const AttributeDef* FindAttribute(std::string_view name) const;

  /// Appends all link attributes, inherited first.
  void CollectAttributes(std::vector<const AttributeDef*>* out) const;

 private:
  friend class Database;

  std::string name_;
  const ClassDef* source_;
  const ClassDef* target_;
  RelationshipSemantics semantics_;
  std::vector<AttributeDef> attributes_;
  std::vector<const RelationshipDef*> supers_;
  std::vector<const RelationshipDef*> subs_;
};

}  // namespace prometheus

#endif  // PROMETHEUS_CORE_SCHEMA_H_
