file(REMOVE_RECURSE
  "libprometheus_oo7.a"
)
