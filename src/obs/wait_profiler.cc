#include "obs/wait_profiler.h"

#include <algorithm>
#include <array>
#include <cstdio>

#include "common/stats.h"

namespace prometheus::obs {

const char* WaitStateName(WaitState state) {
  switch (state) {
    case WaitState::kAdmission:
      return "admission";
    case WaitState::kQueue:
      return "queue";
    case WaitState::kGuardShared:
      return "guard_shared";
    case WaitState::kGuardExclusive:
      return "guard_exclusive";
    case WaitState::kExecute:
      return "execute";
    case WaitState::kJournalAppend:
      return "journal_append";
    case WaitState::kJournalSync:
      return "journal_sync";
    case WaitState::kSerialize:
      return "serialize";
  }
  return "unknown";
}

const GuardInstruments& GuardInstruments::Get() {
  static const GuardInstruments g = [] {
    MetricsRegistry& reg = Registry();
    const char* wait_help =
        "Epoch-guard acquisition wait (microseconds) by lock mode";
    const char* hold_help =
        "Epoch-guard hold duration (microseconds) by lock mode";
    GuardInstruments gi;
    gi.shared_wait =
        reg.GetHistogram("guard_wait_micros{mode=\"shared\"}", wait_help);
    gi.exclusive_wait =
        reg.GetHistogram("guard_wait_micros{mode=\"exclusive\"}", wait_help);
    gi.shared_hold =
        reg.GetHistogram("guard_hold_micros{mode=\"shared\"}", hold_help);
    gi.exclusive_hold =
        reg.GetHistogram("guard_hold_micros{mode=\"exclusive\"}", hold_help);
    gi.blocked_readers = reg.GetGauge(
        "guard_blocked_readers",
        "Readers currently blocked acquiring the epoch guard shared");
    gi.blocked_writers = reg.GetGauge(
        "guard_blocked_writers",
        "Writers currently blocked acquiring the epoch guard exclusive");
    gi.writer_held = reg.GetGauge(
        "guard_writer_held", "1 while a writer holds the epoch guard");
    gi.writer_last_hold_micros = reg.GetGauge(
        "guard_writer_last_hold_micros",
        "Duration of the most recent completed exclusive hold");
    gi.writer_longest_wait = reg.GetGauge(
        "guard_writer_longest_wait_micros",
        "High-water mark of exclusive-guard acquisition wait — the "
        "writer-starvation watchdog's signal under single-writer MVCC");
    return gi;
  }();
  return g;
}

ThreadWaitAccumulator& ThreadWait() {
  thread_local ThreadWaitAccumulator acc;
  return acc;
}

const WaitInstruments& WaitInstruments::Get() {
  static const WaitInstruments w = [] {
    MetricsRegistry& reg = Registry();
    const char* help =
        "Request lifetime decomposed into named wait states (microseconds)";
    WaitInstruments wi;
    wi.admission =
        reg.GetHistogram("request_wait_micros{state=\"admission\"}", help);
    wi.queue = reg.GetHistogram("request_wait_micros{state=\"queue\"}", help);
    wi.execute =
        reg.GetHistogram("request_wait_micros{state=\"execute\"}", help);
    wi.serialize =
        reg.GetHistogram("request_wait_micros{state=\"serialize\"}", help);
    return wi;
  }();
  return w;
}

Histogram::Snapshot SnapshotDelta(const Histogram::Snapshot& now,
                                  const Histogram::Snapshot& then) {
  Histogram::Snapshot delta;
  delta.bounds = now.bounds;
  delta.counts.resize(now.counts.size(), 0);
  for (std::size_t i = 0; i < now.counts.size(); ++i) {
    const std::uint64_t before =
        i < then.counts.size() ? then.counts[i] : 0;
    delta.counts[i] = now.counts[i] >= before ? now.counts[i] - before : 0;
  }
  delta.count = now.count >= then.count ? now.count - then.count : 0;
  delta.sum = now.sum >= then.sum ? now.sum - then.sum : 0;
  return delta;
}

namespace {

/// Every histogram family the contention report assembles, in display
/// order. Guard and journal states live in their own metric families; the
/// server-side states live under request_wait_micros.
struct StateSource {
  WaitState state;
  Histogram* hist;
};

std::array<StateSource, 8> ReportSources() {
  const WaitInstruments& w = WaitInstruments::Get();
  const GuardInstruments& g = GuardInstruments::Get();
  MetricsRegistry& reg = Registry();
  Histogram* append = reg.GetHistogram(
      "journal_append_micros", "Latency of framed journal file appends");
  Histogram* sync = reg.GetHistogram("journal_sync_micros",
                                     "Latency of journal fsync barriers");
  return {{{WaitState::kAdmission, w.admission},
           {WaitState::kQueue, w.queue},
           {WaitState::kGuardShared, g.shared_wait},
           {WaitState::kGuardExclusive, g.exclusive_wait},
           {WaitState::kExecute, w.execute},
           {WaitState::kJournalAppend, append},
           {WaitState::kJournalSync, sync},
           {WaitState::kSerialize, w.serialize}}};
}

/// Previous windowed snapshots, one per report source. Process-wide like
/// the registry itself; the mutex only guards windowed report assembly.
struct WindowStore {
  std::mutex mu;
  std::array<Histogram::Snapshot, 8> last;

  static WindowStore& Get() {
    static WindowStore s;
    return s;
  }
};

void WriteStateJson(stats::JsonWriter& w, WaitState state,
                    const Histogram::Snapshot& snap) {
  w.Key(WaitStateName(state));
  w.BeginObject();
  w.Key("count").Uint(snap.count);
  w.Key("total_micros").Number(snap.sum);
  w.Key("mean_micros").Number(snap.mean());
  w.Key("p50_micros").Number(snap.Percentile(50));
  w.Key("p95_micros").Number(snap.Percentile(95));
  w.Key("p99_micros").Number(snap.Percentile(99));
  w.EndObject();
}

/// Cumulative or since-last-windowed-call snapshots, in ReportSources
/// order. Windowed reads advance the shared window store, so the HTTP
/// route and the shell command observe one common window.
std::array<Histogram::Snapshot, 8> CollectSnapshots(
    const std::array<StateSource, 8>& sources, bool windowed) {
  std::array<Histogram::Snapshot, 8> out;
  if (windowed) {
    WindowStore& store = WindowStore::Get();
    std::lock_guard<std::mutex> lock(store.mu);
    for (std::size_t i = 0; i < sources.size(); ++i) {
      Histogram::Snapshot now = sources[i].hist->snapshot();
      out[i] = SnapshotDelta(now, store.last[i]);
      store.last[i] = std::move(now);
    }
  } else {
    for (std::size_t i = 0; i < sources.size(); ++i) {
      out[i] = sources[i].hist->snapshot();
    }
  }
  return out;
}

}  // namespace

std::string RenderContentionJson(bool windowed) {
  const std::array<StateSource, 8> sources = ReportSources();
  const std::array<Histogram::Snapshot, 8> snaps =
      CollectSnapshots(sources, windowed);
  const GuardInstruments& g = GuardInstruments::Get();

  stats::JsonWriter w;
  w.BeginObject();
  w.Key("windowed").Bool(windowed);
  w.Key("states");
  w.BeginObject();
  for (std::size_t i = 0; i < sources.size(); ++i) {
    WriteStateJson(w, sources[i].state, snaps[i]);
  }
  w.EndObject();
  w.Key("guard");
  w.BeginObject();
  w.Key("blocked_readers").Int(g.blocked_readers->value());
  w.Key("blocked_writers").Int(g.blocked_writers->value());
  w.Key("writer_held").Int(g.writer_held->value());
  w.Key("writer_last_hold_micros").Int(g.writer_last_hold_micros->value());
  w.Key("writer_longest_wait_micros").Int(g.writer_longest_wait->value());
  w.EndObject();
  // MVCC retention/pinning gauges. Resolved by name: core maintains them
  // (mirrors of its always-on counters) and obs cannot link against core,
  // so the registry is the seam.
  {
    MetricsRegistry& reg = Registry();
    w.Key("mvcc");
    w.BeginObject();
    w.Key("retained_versions")
        .Int(reg.GetGauge("mvcc_retained_versions")->value());
    w.Key("live_snapshots").Int(reg.GetGauge("mvcc_live_snapshots")->value());
    w.Key("pinned_snapshots")
        .Int(reg.GetGauge("mvcc_pinned_snapshots")->value());
    w.Key("oldest_snapshot_epoch")
        .Int(reg.GetGauge("mvcc_oldest_snapshot_epoch")->value());
    w.EndObject();
  }
  w.EndObject();
  return w.str();
}

std::vector<ContentionStat> SnapshotContention() {
  const std::array<StateSource, 8> sources = ReportSources();
  std::vector<ContentionStat> out;
  out.reserve(sources.size());
  for (const StateSource& src : sources) {
    Histogram::Snapshot snap = src.hist->snapshot();
    ContentionStat stat;
    stat.state = WaitStateName(src.state);
    stat.count = snap.count;
    stat.total_micros = snap.sum;
    stat.mean_micros = snap.mean();
    stat.p50_micros = snap.Percentile(50);
    stat.p95_micros = snap.Percentile(95);
    stat.p99_micros = snap.Percentile(99);
    out.push_back(std::move(stat));
  }
  return out;
}

std::string RenderContentionText(bool windowed) {
  const std::array<StateSource, 8> sources = ReportSources();
  const std::array<Histogram::Snapshot, 8> snaps =
      CollectSnapshots(sources, windowed);
  const GuardInstruments& g = GuardInstruments::Get();

  std::string out = windowed ? "wait states (since last window):\n"
                             : "wait states (cumulative):\n";
  char line[192];
  std::snprintf(line, sizeof(line), "  %-16s %10s %14s %10s %10s %10s\n",
                "state", "count", "total_us", "mean_us", "p95_us", "p99_us");
  out += line;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const Histogram::Snapshot& s = snaps[i];
    std::snprintf(line, sizeof(line),
                  "  %-16s %10llu %14.0f %10.1f %10.1f %10.1f\n",
                  WaitStateName(sources[i].state),
                  static_cast<unsigned long long>(s.count), s.sum, s.mean(),
                  s.Percentile(95), s.Percentile(99));
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "guard: blocked_readers=%lld blocked_writers=%lld "
                "writer_held=%lld last_exclusive_hold=%lldus "
                "longest_writer_wait=%lldus\n",
                static_cast<long long>(g.blocked_readers->value()),
                static_cast<long long>(g.blocked_writers->value()),
                static_cast<long long>(g.writer_held->value()),
                static_cast<long long>(g.writer_last_hold_micros->value()),
                static_cast<long long>(g.writer_longest_wait->value()));
  out += line;
  MetricsRegistry& reg = Registry();
  std::snprintf(line, sizeof(line),
                "mvcc: retained_versions=%lld live_snapshots=%lld "
                "pinned_snapshots=%lld oldest_snapshot_epoch=%lld\n",
                static_cast<long long>(
                    reg.GetGauge("mvcc_retained_versions")->value()),
                static_cast<long long>(
                    reg.GetGauge("mvcc_live_snapshots")->value()),
                static_cast<long long>(
                    reg.GetGauge("mvcc_pinned_snapshots")->value()),
                static_cast<long long>(
                    reg.GetGauge("mvcc_oldest_snapshot_epoch")->value()));
  out += line;
  return out;
}

}  // namespace prometheus::obs
