#include "core/database.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "obs/metrics.h"

namespace prometheus {

namespace {

/// Cached gauge pointers mirroring the always-on mvcc counters into the
/// metrics registry (registration is get-or-create and mutex-protected, so
/// resolve once).
struct MvccGauges {
  obs::Gauge* retained;
  obs::Gauge* live;
  obs::Gauge* pinned;
  obs::Gauge* oldest;

  static const MvccGauges& Get() {
    static const MvccGauges g{
        obs::Registry().GetGauge(
            "mvcc_retained_versions",
            "Object/link versions retained by live snapshots"),
        obs::Registry().GetGauge("mvcc_live_snapshots",
                                 "DbSnapshot instances currently alive"),
        obs::Registry().GetGauge("mvcc_pinned_snapshots",
                                 "Snapshot handles currently pinned"),
        obs::Registry().GetGauge(
            "mvcc_oldest_snapshot_epoch",
            "GC watermark: oldest epoch a pinned snapshot still reads"),
    };
    return g;
  }
};

/// Type-checks `value` against an attribute declaration. Null is always
/// accepted (absent optional value).
Status CheckValueType(const AttributeDef& def, const Value& value) {
  if (value.is_null() || def.type == ValueType::kNull) return Status::Ok();
  if (value.type() == def.type) return Status::Ok();
  // Ints are acceptable where doubles are declared.
  if (def.type == ValueType::kDouble && value.type() == ValueType::kInt) {
    return Status::Ok();
  }
  return Status::TypeError("attribute '" + def.name + "' expects " +
                           ValueTypeName(def.type) + ", got " +
                           ValueTypeName(value.type()));
}

}  // namespace

/// One entry of the transaction undo log. Entries are applied in reverse
/// order by Abort(); each restores the state from just before its mutation.
struct Database::UndoRecord {
  enum class Kind {
    kCreateObject,
    kDeleteObject,
    kSetAttribute,
    kCreateLink,
    kDeleteLink,
    kSetLinkAttribute,
    kDeclareSynonym,
  };

  Kind kind;
  Oid oid = kNullOid;
  std::string name;
  Value old_value;
  std::unique_ptr<Object> object_snapshot;
  std::unique_ptr<Link> link_snapshot;
};

Database::Database() = default;
Database::~Database() = default;

// ------------------------------------------------------------------ schema

Result<const ClassDef*> Database::DefineClass(
    const std::string& name, const std::vector<std::string>& supers,
    std::vector<AttributeDef> attributes, bool is_abstract) {
  AssertExclusiveAccess();
  if (name.empty()) {
    return Status::InvalidArgument("class name must not be empty");
  }
  if (classes_by_name_.count(name) || rels_by_name_.count(name)) {
    return Status::InvalidArgument("name '" + name + "' already defined");
  }
  std::vector<const ClassDef*> super_defs;
  for (const std::string& s : supers) {
    const ClassDef* sd = FindClass(s);
    if (sd == nullptr) {
      return Status::NotFound("unknown super-class '" + s + "'");
    }
    super_defs.push_back(sd);
  }
  auto cls = std::make_shared<ClassDef>(name, is_abstract);
  cls->supers_ = super_defs;
  for (AttributeDef& a : attributes) {
    if (a.name.empty()) {
      return Status::InvalidArgument("attribute name must not be empty");
    }
    for (const ClassDef* s : super_defs) {
      if (s->FindAttribute(a.name) != nullptr) {
        return Status::InvalidArgument("attribute '" + a.name +
                                       "' collides with inherited attribute");
      }
    }
    for (const AttributeDef& prev : cls->attributes_) {
      if (prev.name == a.name) {
        return Status::InvalidArgument("duplicate attribute '" + a.name +
                                       "'");
      }
    }
    PROMETHEUS_RETURN_IF_ERROR(CheckValueType(a, a.default_value));
    cls->attributes_.push_back(std::move(a));
  }
  ClassDef* raw = cls.get();
  for (const ClassDef* s : super_defs) {
    const_cast<ClassDef*>(s)->subclasses_.push_back(raw);
  }
  classes_by_name_[name] = raw;
  extents_[raw] = {};
  class_storage_.push_back(std::move(cls));
  MarkSchemaDirty();
  Event ddl(EventKind::kAfterDefineClass);
  ddl.type_name = name;
  PROMETHEUS_RETURN_IF_ERROR(PublishEvent(ddl));
  return static_cast<const ClassDef*>(raw);
}

Result<const RelationshipDef*> Database::DefineRelationship(
    const std::string& name, const std::string& source_class,
    const std::string& target_class, RelationshipSemantics semantics,
    std::vector<AttributeDef> link_attributes,
    const std::vector<std::string>& supers) {
  AssertExclusiveAccess();
  if (name.empty()) {
    return Status::InvalidArgument("relationship name must not be empty");
  }
  if (classes_by_name_.count(name) || rels_by_name_.count(name)) {
    return Status::InvalidArgument("name '" + name + "' already defined");
  }
  const ClassDef* src = FindClass(source_class);
  if (src == nullptr) {
    return Status::NotFound("unknown source class '" + source_class + "'");
  }
  const ClassDef* dst = FindClass(target_class);
  if (dst == nullptr) {
    return Status::NotFound("unknown target class '" + target_class + "'");
  }
  // Table 3 of the thesis: not every combination of behaviours is
  // meaningful — reject the contradictory ones at definition time.
  if (semantics.max_out != kUnboundedCard &&
      semantics.min_out > semantics.max_out) {
    return Status::InvalidArgument("relationship '" + name +
                                   "': min_out exceeds max_out");
  }
  if (semantics.max_in != kUnboundedCard &&
      semantics.min_in > semantics.max_in) {
    return Status::InvalidArgument("relationship '" + name +
                                   "': min_in exceeds max_in");
  }
  if (!semantics.directed && semantics.inherit_attributes) {
    return Status::InvalidArgument(
        "relationship '" + name +
        "': attribute inheritance flows along the link direction and "
        "requires a directed relationship");
  }
  if (!semantics.directed && semantics.lifetime_dependent) {
    return Status::InvalidArgument(
        "relationship '" + name +
        "': lifetime dependency (whole deletes part) requires a directed "
        "relationship");
  }
  if (semantics.exclusive && semantics.exclusivity_group.empty()) {
    semantics.exclusivity_group = name;
  }
  std::vector<const RelationshipDef*> super_defs;
  for (const std::string& s : supers) {
    const RelationshipDef* sd = FindRelationship(s);
    if (sd == nullptr) {
      return Status::NotFound("unknown super-relationship '" + s + "'");
    }
    // Covariance: the refined relationship must relate refined classes.
    if (!src->IsSubclassOf(sd->source_class()) ||
        !dst->IsSubclassOf(sd->target_class())) {
      return Status::InvalidArgument(
          "relationship '" + name +
          "' does not covariantly refine super-relationship '" + s + "'");
    }
    super_defs.push_back(sd);
  }
  auto rel = std::make_shared<RelationshipDef>(name, src, dst,
                                               std::move(semantics));
  rel->supers_ = super_defs;
  for (AttributeDef& a : link_attributes) {
    if (a.name.empty()) {
      return Status::InvalidArgument("attribute name must not be empty");
    }
    PROMETHEUS_RETURN_IF_ERROR(CheckValueType(a, a.default_value));
    rel->attributes_.push_back(std::move(a));
  }
  RelationshipDef* raw = rel.get();
  for (const RelationshipDef* s : super_defs) {
    const_cast<RelationshipDef*>(s)->subs_.push_back(raw);
  }
  rels_by_name_[name] = raw;
  link_extents_[raw] = {};
  rel_storage_.push_back(std::move(rel));
  MarkSchemaDirty();
  Event ddl(EventKind::kAfterDefineRelationship);
  ddl.type_name = name;
  PROMETHEUS_RETURN_IF_ERROR(PublishEvent(ddl));
  return static_cast<const RelationshipDef*>(raw);
}

Status Database::DefineMethod(const std::string& class_name,
                              MethodDef method) {
  AssertExclusiveAccess();
  auto it = classes_by_name_.find(class_name);
  if (it == classes_by_name_.end()) {
    return Status::NotFound("unknown class '" + class_name + "'");
  }
  if (method.name.empty()) {
    return Status::InvalidArgument("method name must not be empty");
  }
  if (it->second->FindMethod(method.name) != nullptr) {
    return Status::InvalidArgument("method '" + method.name +
                                   "' already declared");
  }
  it->second->methods_.push_back(std::move(method));
  MarkSchemaDirty();
  return Status::Ok();
}

Status Database::DefineRelationshipTemplate(
    const std::string& name, RelationshipSemantics semantics,
    std::vector<AttributeDef> link_attributes) {
  AssertExclusiveAccess();
  if (name.empty()) {
    return Status::InvalidArgument("template name must not be empty");
  }
  if (rel_templates_.count(name)) {
    return Status::InvalidArgument("template '" + name +
                                   "' already defined");
  }
  rel_templates_[name] =
      RelationshipTemplate{std::move(semantics), std::move(link_attributes)};
  rel_template_order_.push_back(name);
  Event ddl(EventKind::kAfterDefineTemplate);
  ddl.type_name = name;
  return PublishEvent(ddl);
}

Result<const RelationshipDef*> Database::InstantiateRelationship(
    const std::string& template_name, const std::string& rel_name,
    const std::string& source_class, const std::string& target_class) {
  AssertExclusiveAccess();
  auto it = rel_templates_.find(template_name);
  if (it == rel_templates_.end()) {
    return Status::NotFound("unknown relationship template '" +
                            template_name + "'");
  }
  return DefineRelationship(rel_name, source_class, target_class,
                            it->second.semantics, it->second.attributes);
}

std::vector<std::string> Database::relationship_templates() const {
  return rel_template_order_;
}

const RelationshipSemantics* Database::FindTemplateSemantics(
    const std::string& name) const {
  auto it = rel_templates_.find(name);
  return it == rel_templates_.end() ? nullptr : &it->second.semantics;
}

const std::vector<AttributeDef>* Database::FindTemplateAttributes(
    const std::string& name) const {
  auto it = rel_templates_.find(name);
  return it == rel_templates_.end() ? nullptr : &it->second.attributes;
}

const ClassDef* Database::FindClass(std::string_view name) const {
  auto it = classes_by_name_.find(std::string(name));
  return it == classes_by_name_.end() ? nullptr : it->second;
}

const RelationshipDef* Database::FindRelationship(
    std::string_view name) const {
  auto it = rels_by_name_.find(std::string(name));
  return it == rels_by_name_.end() ? nullptr : it->second;
}

std::vector<const ClassDef*> Database::classes() const {
  std::vector<const ClassDef*> out;
  out.reserve(class_storage_.size());
  for (const auto& c : class_storage_) out.push_back(c.get());
  return out;
}

std::vector<const RelationshipDef*> Database::relationships() const {
  std::vector<const RelationshipDef*> out;
  out.reserve(rel_storage_.size());
  for (const auto& r : rel_storage_) out.push_back(r.get());
  return out;
}

// --------------------------------------------------------------- internals

Object* Database::MutableObject(Oid oid) {
  auto it = objects_.find(oid);
  if (it == objects_.end()) return nullptr;
  // Conservative dirty mark: callers hold this pointer to mutate (or to
  // probe — the occasional spurious version copy at publish is harmless).
  MarkObjectDirty(oid);
  return it->second.get();
}

Link* Database::MutableLink(Oid oid) {
  auto it = links_.find(oid);
  if (it == links_.end()) return nullptr;
  MarkLinkDirty(oid);
  return it->second.get();
}

Status Database::PublishEvent(const Event& event) {
  if (!events_enabled_) return Status::Ok();
  return bus_.Publish(event);
}

void Database::RecordUndo(UndoRecord record) {
  undo_log_.push_back(std::move(record));
}

void Database::RemoveFromExtent(Object* obj) {
  MarkExtentDirty(obj->cls);
  MarkObjectDirty(obj->oid);
  std::vector<Oid>& extent = extents_[obj->cls];
  std::size_t pos = obj->extent_pos;
  extent[pos] = extent.back();
  if (Object* moved = MutableObject(extent[pos])) moved->extent_pos = pos;
  extent.pop_back();
}

void Database::RestoreToExtent(Object* obj) {
  MarkExtentDirty(obj->cls);
  MarkObjectDirty(obj->oid);
  std::vector<Oid>& extent = extents_[obj->cls];
  obj->extent_pos = extent.size();
  extent.push_back(obj->oid);
}

void Database::DetachLinkFromEndpoints(const Link& link) {
  if (Object* src = MutableObject(link.source)) {
    auto& v = src->out_links;
    v.erase(std::remove(v.begin(), v.end(), link.oid), v.end());
  }
  if (Object* dst = MutableObject(link.target)) {
    auto& v = dst->in_links;
    v.erase(std::remove(v.begin(), v.end(), link.oid), v.end());
  }
}

void Database::AttachLinkToEndpoints(const Link& link) {
  if (Object* src = MutableObject(link.source)) {
    src->out_links.push_back(link.oid);
  }
  if (Object* dst = MutableObject(link.target)) {
    dst->in_links.push_back(link.oid);
  }
}

void Database::AddToContextIndex(Link* link) {
  if (link->context == kNullOid) return;
  MarkContextDirty(link->context);
  MarkLinkDirty(link->oid);
  std::vector<Oid>& bucket = context_index_[link->context];
  link->ctx_pos = bucket.size();
  bucket.push_back(link->oid);
}

void Database::RemoveFromContextIndex(Link* link) {
  if (link->context == kNullOid) return;
  MarkContextDirty(link->context);
  MarkLinkDirty(link->oid);
  std::vector<Oid>& bucket = context_index_[link->context];
  std::size_t pos = link->ctx_pos;
  bucket[pos] = bucket.back();
  if (Link* moved = MutableLink(bucket[pos])) moved->ctx_pos = pos;
  bucket.pop_back();
}

void Database::RemoveLinkFromExtent(Link* link) {
  MarkLinkExtentDirty(link->def);
  MarkLinkDirty(link->oid);
  std::vector<Oid>& extent = link_extents_[link->def];
  std::size_t pos = link->extent_pos;
  extent[pos] = extent.back();
  if (Link* moved = MutableLink(extent[pos])) moved->extent_pos = pos;
  extent.pop_back();
}

void Database::RestoreLinkToExtent(Link* link) {
  MarkLinkExtentDirty(link->def);
  MarkLinkDirty(link->oid);
  std::vector<Oid>& extent = link_extents_[link->def];
  link->extent_pos = extent.size();
  extent.push_back(link->oid);
}

// ----------------------------------------------------------------- objects

Result<Oid> Database::CreateObject(const std::string& class_name,
                                   std::vector<AttrInit> inits) {
  AssertExclusiveAccess();
  const ClassDef* cls = FindClass(class_name);
  if (cls == nullptr) {
    return Status::NotFound("unknown class '" + class_name + "'");
  }
  if (cls->is_abstract()) {
    return Status::InvalidArgument("class '" + class_name + "' is abstract");
  }
  Oid oid = next_oid_++;

  Event before{EventKind::kBeforeCreateObject};
  before.subject = oid;
  before.type_name = cls->name();
  PROMETHEUS_RETURN_IF_ERROR(PublishEvent(before));

  auto obj = std::make_unique<Object>();
  obj->oid = oid;
  obj->cls = cls;
  std::vector<const AttributeDef*> all_attrs;
  cls->CollectAttributes(&all_attrs);
  for (const AttributeDef* a : all_attrs) {
    obj->attrs[a->name] = a->default_value;
  }
  for (AttrInit& init : inits) {
    const AttributeDef* a = cls->FindAttribute(init.first);
    if (a == nullptr) {
      return Status::NotFound("class '" + class_name + "' has no attribute '" +
                              init.first + "'");
    }
    PROMETHEUS_RETURN_IF_ERROR(CheckValueType(*a, init.second));
    obj->attrs[init.first] = std::move(init.second);
  }
  Object* raw = obj.get();
  objects_[oid] = std::move(obj);
  RestoreToExtent(raw);
  ++live_objects_;

  UndoRecord undo{};
  undo.kind = UndoRecord::Kind::kCreateObject;
  undo.oid = oid;
  RecordUndo(std::move(undo));

  Event after = before;
  after.kind = EventKind::kAfterCreateObject;
  Status violation = PublishEvent(after);
  if (!in_transaction_) {
    if (violation.ok()) {
      undo_log_.clear();
    } else {
      UndoAll();
      return violation;
    }
  } else if (!violation.ok()) {
    return violation;
  }
  return oid;
}

Status Database::DeleteObject(Oid oid) {
  AssertExclusiveAccess();
  Object* obj = MutableObject(oid);
  if (obj == nullptr) {
    return Status::NotFound("no object @" + std::to_string(oid));
  }
  Event before{EventKind::kBeforeDeleteObject};
  before.subject = oid;
  before.type_name = obj->cls->name();
  PROMETHEUS_RETURN_IF_ERROR(PublishEvent(before));

  std::vector<Oid> cascade;
  Status st = DeleteObjectInternal(oid, &cascade);
  // Lifetime-dependent targets die with their whole (thesis 4.4.3).
  std::unordered_set<Oid> seen;
  while (st.ok() && !cascade.empty()) {
    Oid next = cascade.back();
    cascade.pop_back();
    if (!seen.insert(next).second) continue;
    if (MutableObject(next) == nullptr) continue;  // already gone
    st = DeleteObjectInternal(next, &cascade);
  }
  if (!in_transaction_) {
    if (st.ok()) {
      undo_log_.clear();
    } else {
      UndoAll();
    }
  }
  return st;
}

Status Database::DeleteObjectInternal(Oid oid, std::vector<Oid>* cascade) {
  Object* obj = MutableObject(oid);
  if (obj == nullptr) return Status::Ok();

  // Remove incident links first. Participant death always removes the link,
  // even for constant relationships.
  std::vector<Oid> incident = obj->out_links;
  incident.insert(incident.end(), obj->in_links.begin(), obj->in_links.end());
  for (Oid lid : incident) {
    Link* link = MutableLink(lid);
    if (link == nullptr) continue;
    if (link->source == oid && link->def->semantics().lifetime_dependent) {
      cascade->push_back(link->target);
    }
    PROMETHEUS_RETURN_IF_ERROR(DeleteLinkInternal(lid, true));
  }

  Event after{EventKind::kAfterDeleteObject};
  after.subject = oid;
  after.type_name = obj->cls->name();

  RemoveFromExtent(obj);
  --live_objects_;
  UndoRecord undo{};
  undo.kind = UndoRecord::Kind::kDeleteObject;
  undo.oid = oid;
  auto it = objects_.find(oid);
  undo.object_snapshot = std::move(it->second);
  objects_.erase(it);
  RecordUndo(std::move(undo));

  return PublishEvent(after);
}

Status Database::SetAttribute(Oid oid, const std::string& name, Value value) {
  AssertExclusiveAccess();
  Object* obj = MutableObject(oid);
  if (obj == nullptr) {
    return Status::NotFound("no object @" + std::to_string(oid));
  }
  const AttributeDef* attr = obj->cls->FindAttribute(name);
  if (attr == nullptr) {
    return Status::NotFound("class '" + obj->cls->name() +
                            "' has no attribute '" + name + "'");
  }
  PROMETHEUS_RETURN_IF_ERROR(CheckValueType(*attr, value));
  if (semantics_enabled_ && !attr->ref_class.empty() &&
      value.type() == ValueType::kRef) {
    if (!IsInstanceOf(value.AsRef(), attr->ref_class)) {
      return Status::TypeError("attribute '" + name + "' must reference a " +
                               attr->ref_class);
    }
  }
  Value old = obj->attrs[name];

  Event before{EventKind::kBeforeSetAttribute};
  before.subject = oid;
  before.type_name = obj->cls->name();
  before.attribute = name;
  before.old_value = old;
  before.new_value = value;
  PROMETHEUS_RETURN_IF_ERROR(PublishEvent(before));

  obj->attrs[name] = std::move(value);
  UndoRecord undo{};
  undo.kind = UndoRecord::Kind::kSetAttribute;
  undo.oid = oid;
  undo.name = name;
  undo.old_value = std::move(old);
  RecordUndo(std::move(undo));

  Event after = before;
  after.kind = EventKind::kAfterSetAttribute;
  Status violation = PublishEvent(after);
  if (!in_transaction_) {
    if (violation.ok()) {
      undo_log_.clear();
    } else {
      UndoAll();
      return violation;
    }
  } else if (!violation.ok()) {
    return violation;
  }
  return Status::Ok();
}

Result<Value> Database::GetAttribute(Oid oid, const std::string& name) const {
  AssertSharedAccess();
  const Object* obj = GetObject(oid);
  if (obj == nullptr) {
    return Status::NotFound("no object @" + std::to_string(oid));
  }
  auto it = obj->attrs.find(name);
  if (it != obj->attrs.end()) return it->second;
  // Attribute inheritance over incoming links (thesis 4.4.5).
  for (Oid lid : obj->in_links) {
    const Link* link = GetLink(lid);
    if (link == nullptr || !link->def->semantics().inherit_attributes) {
      continue;
    }
    if (link->def->FindAttribute(name) != nullptr) {
      auto ait = link->attrs.find(name);
      if (ait != link->attrs.end()) return ait->second;
      return Value::Null();
    }
  }
  return Status::NotFound("object @" + std::to_string(oid) +
                          " has no attribute '" + name + "'");
}

const Object* Database::GetObject(Oid oid) const {
  AssertSharedAccess();
  auto it = objects_.find(oid);
  return it == objects_.end() ? nullptr : it->second.get();
}

bool Database::IsInstanceOf(Oid oid, std::string_view class_name) const {
  const Object* obj = GetObject(oid);
  if (obj == nullptr) return false;
  const ClassDef* cls = FindClass(class_name);
  return cls != nullptr && obj->cls->IsSubclassOf(cls);
}

std::vector<Oid> Database::Extent(const std::string& class_name,
                                  bool include_subclasses) const {
  AssertSharedAccess();
  const ClassDef* cls = FindClass(class_name);
  if (cls == nullptr) return {};
  std::vector<Oid> out;
  std::deque<const ClassDef*> work{cls};
  while (!work.empty()) {
    const ClassDef* c = work.front();
    work.pop_front();
    auto it = extents_.find(c);
    if (it != extents_.end()) {
      out.insert(out.end(), it->second.begin(), it->second.end());
    }
    if (include_subclasses) {
      for (const ClassDef* sub : c->subclasses()) work.push_back(sub);
    }
  }
  return out;
}

// ------------------------------------------------------------------- links

Status Database::CheckLinkSemantics(const RelationshipDef* def,
                                    const Object& source,
                                    const Object& target) const {
  const RelationshipSemantics& sem = def->semantics();
  // Cardinality maxima.
  if (sem.max_out != kUnboundedCard) {
    std::uint32_t n = 0;
    for (Oid lid : source.out_links) {
      const Link* l = GetLink(lid);
      if (l != nullptr && l->def->IsSubrelationshipOf(def)) ++n;
    }
    if (n >= sem.max_out) {
      return Status::ConstraintViolation(
          "cardinality: source @" + std::to_string(source.oid) +
          " already has " + std::to_string(n) + " '" + def->name() +
          "' links (max " + std::to_string(sem.max_out) + ")");
    }
  }
  if (sem.max_in != kUnboundedCard) {
    std::uint32_t n = 0;
    for (Oid lid : target.in_links) {
      const Link* l = GetLink(lid);
      if (l != nullptr && l->def->IsSubrelationshipOf(def)) ++n;
    }
    if (n >= sem.max_in) {
      return Status::ConstraintViolation(
          "cardinality: target @" + std::to_string(target.oid) +
          " already has " + std::to_string(n) + " '" + def->name() +
          "' links (max " + std::to_string(sem.max_in) + ")");
    }
  }
  // Exclusivity across the group (figure 15).
  if (sem.exclusive) {
    for (Oid lid : target.in_links) {
      const Link* l = GetLink(lid);
      if (l == nullptr) continue;
      const RelationshipSemantics& other = l->def->semantics();
      if (other.exclusive &&
          other.exclusivity_group == sem.exclusivity_group) {
        return Status::ConstraintViolation(
            "exclusivity: target @" + std::to_string(target.oid) +
            " already participates in exclusive group '" +
            sem.exclusivity_group + "' via '" + l->def->name() + "'");
      }
    }
  }
  // Sharability (figure 16).
  if (!sem.shareable) {
    for (Oid lid : target.in_links) {
      const Link* l = GetLink(lid);
      if (l != nullptr && l->def->IsSubrelationshipOf(def)) {
        return Status::ConstraintViolation(
            "sharability: target @" + std::to_string(target.oid) +
            " is an unshared component of '" + def->name() + "'");
      }
    }
  }
  return Status::Ok();
}

Result<Oid> Database::CreateLink(const std::string& rel_name, Oid source,
                                 Oid target, Oid context,
                                 std::vector<AttrInit> inits) {
  AssertExclusiveAccess();
  const RelationshipDef* def = FindRelationship(rel_name);
  if (def == nullptr) {
    return Status::NotFound("unknown relationship '" + rel_name + "'");
  }
  Object* src = MutableObject(source);
  if (src == nullptr) {
    return Status::NotFound("no source object @" + std::to_string(source));
  }
  Object* dst = MutableObject(target);
  if (dst == nullptr) {
    return Status::NotFound("no target object @" + std::to_string(target));
  }
  if (semantics_enabled_) {
    if (!src->cls->IsSubclassOf(def->source_class())) {
      return Status::TypeError("source @" + std::to_string(source) + " (" +
                               src->cls->name() + ") is not a " +
                               def->source_class()->name());
    }
    if (!dst->cls->IsSubclassOf(def->target_class())) {
      return Status::TypeError("target @" + std::to_string(target) + " (" +
                               dst->cls->name() + ") is not a " +
                               def->target_class()->name());
    }
    PROMETHEUS_RETURN_IF_ERROR(CheckLinkSemantics(def, *src, *dst));
    if (context != kNullOid && GetObject(context) == nullptr) {
      return Status::NotFound("no context object @" +
                              std::to_string(context));
    }
  }
  Oid oid = next_oid_++;

  Event before{EventKind::kBeforeCreateLink};
  before.subject = oid;
  before.type_name = def->name();
  before.source = source;
  before.target = target;
  before.context = context;
  PROMETHEUS_RETURN_IF_ERROR(PublishEvent(before));

  auto link = std::make_unique<Link>();
  link->oid = oid;
  link->def = def;
  link->source = source;
  link->target = target;
  link->context = context;
  std::vector<const AttributeDef*> all_attrs;
  def->CollectAttributes(&all_attrs);
  for (const AttributeDef* a : all_attrs) {
    link->attrs[a->name] = a->default_value;
  }
  for (AttrInit& init : inits) {
    const AttributeDef* a = def->FindAttribute(init.first);
    if (a == nullptr) {
      return Status::NotFound("relationship '" + rel_name +
                              "' has no attribute '" + init.first + "'");
    }
    PROMETHEUS_RETURN_IF_ERROR(CheckValueType(*a, init.second));
    link->attrs[init.first] = std::move(init.second);
  }
  Link* raw = link.get();
  links_[oid] = std::move(link);
  AttachLinkToEndpoints(*raw);
  RestoreLinkToExtent(raw);
  AddToContextIndex(raw);
  ++live_links_;

  UndoRecord undo{};
  undo.kind = UndoRecord::Kind::kCreateLink;
  undo.oid = oid;
  RecordUndo(std::move(undo));

  Event after = before;
  after.kind = EventKind::kAfterCreateLink;
  Status violation = PublishEvent(after);
  if (!in_transaction_) {
    if (violation.ok()) {
      undo_log_.clear();
    } else {
      UndoAll();
      return violation;
    }
  } else if (!violation.ok()) {
    return violation;
  }
  return oid;
}

Status Database::DeleteLink(Oid oid) {
  AssertExclusiveAccess();
  Link* link = MutableLink(oid);
  if (link == nullptr) {
    return Status::NotFound("no link @" + std::to_string(oid));
  }
  if (semantics_enabled_ && link->def->semantics().constant) {
    return Status::ConstraintViolation("link @" + std::to_string(oid) +
                                       " of constant relationship '" +
                                       link->def->name() +
                                       "' cannot be deleted");
  }
  Status st = DeleteLinkInternal(oid, false);
  if (!in_transaction_) {
    if (st.ok()) {
      undo_log_.clear();
    } else {
      UndoAll();
    }
  }
  return st;
}

Status Database::DeleteLinkInternal(Oid oid, bool ignore_constancy) {
  Link* link = MutableLink(oid);
  if (link == nullptr) return Status::Ok();
  (void)ignore_constancy;  // constancy is checked by the public entry point

  Event before{EventKind::kBeforeDeleteLink};
  before.subject = oid;
  before.type_name = link->def->name();
  before.source = link->source;
  before.target = link->target;
  before.context = link->context;
  PROMETHEUS_RETURN_IF_ERROR(PublishEvent(before));

  DetachLinkFromEndpoints(*link);
  RemoveLinkFromExtent(link);
  RemoveFromContextIndex(link);
  --live_links_;

  Event after = before;
  after.kind = EventKind::kAfterDeleteLink;

  UndoRecord undo{};
  undo.kind = UndoRecord::Kind::kDeleteLink;
  undo.oid = oid;
  auto it = links_.find(oid);
  undo.link_snapshot = std::move(it->second);
  links_.erase(it);
  RecordUndo(std::move(undo));

  return PublishEvent(after);
}

Status Database::SetLinkAttribute(Oid oid, const std::string& name,
                                  Value value) {
  AssertExclusiveAccess();
  Link* link = MutableLink(oid);
  if (link == nullptr) {
    return Status::NotFound("no link @" + std::to_string(oid));
  }
  if (semantics_enabled_ && link->def->semantics().constant) {
    return Status::ConstraintViolation("link @" + std::to_string(oid) +
                                       " of constant relationship '" +
                                       link->def->name() +
                                       "' cannot be modified");
  }
  const AttributeDef* attr = link->def->FindAttribute(name);
  if (attr == nullptr) {
    return Status::NotFound("relationship '" + link->def->name() +
                            "' has no attribute '" + name + "'");
  }
  PROMETHEUS_RETURN_IF_ERROR(CheckValueType(*attr, value));
  Value old = link->attrs[name];

  Event before{EventKind::kBeforeSetLinkAttribute};
  before.subject = oid;
  before.type_name = link->def->name();
  before.source = link->source;
  before.target = link->target;
  before.context = link->context;
  before.attribute = name;
  before.old_value = old;
  before.new_value = value;
  PROMETHEUS_RETURN_IF_ERROR(PublishEvent(before));

  link->attrs[name] = std::move(value);
  UndoRecord undo{};
  undo.kind = UndoRecord::Kind::kSetLinkAttribute;
  undo.oid = oid;
  undo.name = name;
  undo.old_value = std::move(old);
  RecordUndo(std::move(undo));

  Event after = before;
  after.kind = EventKind::kAfterSetLinkAttribute;
  Status violation = PublishEvent(after);
  if (!in_transaction_) {
    if (violation.ok()) {
      undo_log_.clear();
    } else {
      UndoAll();
      return violation;
    }
  } else if (!violation.ok()) {
    return violation;
  }
  return Status::Ok();
}

Result<Value> Database::GetLinkAttribute(Oid oid,
                                         const std::string& name) const {
  AssertSharedAccess();
  const Link* link = GetLink(oid);
  if (link == nullptr) {
    return Status::NotFound("no link @" + std::to_string(oid));
  }
  auto it = link->attrs.find(name);
  if (it == link->attrs.end()) {
    return Status::NotFound("relationship '" + link->def->name() +
                            "' has no attribute '" + name + "'");
  }
  return it->second;
}

const Link* Database::GetLink(Oid oid) const {
  AssertSharedAccess();
  auto it = links_.find(oid);
  return it == links_.end() ? nullptr : it->second.get();
}

std::vector<Oid> Database::LinkExtent(const std::string& rel_name,
                                      bool include_subrelationships) const {
  AssertSharedAccess();
  const RelationshipDef* def = FindRelationship(rel_name);
  if (def == nullptr) return {};
  std::vector<Oid> out;
  std::deque<const RelationshipDef*> work{def};
  while (!work.empty()) {
    const RelationshipDef* d = work.front();
    work.pop_front();
    auto it = link_extents_.find(d);
    if (it != link_extents_.end()) {
      out.insert(out.end(), it->second.begin(), it->second.end());
    }
    if (include_subrelationships) {
      for (const RelationshipDef* sub : d->subrelationships()) {
        work.push_back(sub);
      }
    }
  }
  return out;
}

const std::vector<Oid>& Database::LinksInContext(Oid context) const {
  AssertSharedAccess();
  static const std::vector<Oid> kEmpty;
  auto it = context_index_.find(context);
  return it == context_index_.end() ? kEmpty : it->second;
}

// --------------------------------------------------------------- traversal

std::vector<Oid> Database::IncidentLinks(Oid oid, Direction dir,
                                         const RelationshipDef* def,
                                         Oid context) const {
  AssertSharedAccess();
  const Object* obj = GetObject(oid);
  if (obj == nullptr) return {};
  std::vector<Oid> out;
  auto consider = [&](const std::vector<Oid>& side) {
    for (Oid lid : side) {
      const Link* link = GetLink(lid);
      if (link == nullptr) continue;
      if (def != nullptr && !link->def->IsSubrelationshipOf(def)) continue;
      if (context != kNullOid && link->context != context) continue;
      out.push_back(lid);
    }
  };
  bool want_out = dir != Direction::kIn;
  bool want_in = dir != Direction::kOut;
  if (def != nullptr && !def->semantics().directed) {
    want_out = want_in = true;
  }
  if (want_out) consider(obj->out_links);
  if (want_in) consider(obj->in_links);
  return out;
}

std::vector<Oid> Database::Neighbors(Oid oid, const std::string& rel_name,
                                     Direction dir, Oid context) const {
  AssertSharedAccess();
  const RelationshipDef* def = FindRelationship(rel_name);
  if (def == nullptr) return {};
  std::vector<Oid> out;
  for (Oid lid : IncidentLinks(oid, dir, def, context)) {
    const Link* link = GetLink(lid);
    out.push_back(link->source == oid ? link->target : link->source);
  }
  return out;
}

Result<std::vector<Oid>> Database::Traverse(Oid start,
                                            const std::string& rel_name,
                                            std::uint32_t min_depth,
                                            std::uint32_t max_depth,
                                            Direction dir, Oid context) const {
  AssertSharedAccess();
  const RelationshipDef* def = FindRelationship(rel_name);
  if (def == nullptr) {
    return Status::NotFound("unknown relationship '" + rel_name + "'");
  }
  if (GetObject(start) == nullptr) {
    return Status::NotFound("no object @" + std::to_string(start));
  }
  if (max_depth != 0 && min_depth > max_depth) {
    return Status::InvalidArgument("min_depth exceeds max_depth");
  }
  std::vector<Oid> result;
  std::unordered_set<Oid> visited{start};
  std::deque<std::pair<Oid, std::uint32_t>> frontier{{start, 0}};
  if (min_depth == 0) result.push_back(start);
  while (!frontier.empty()) {
    auto [oid, depth] = frontier.front();
    frontier.pop_front();
    if (max_depth != 0 && depth == max_depth) continue;
    for (Oid next : Neighbors(oid, rel_name, dir, context)) {
      if (!visited.insert(next).second) continue;
      std::uint32_t d = depth + 1;
      if (d >= min_depth) result.push_back(next);
      frontier.emplace_back(next, d);
    }
  }
  return result;
}

// ---------------------------------------------------------------- synonyms

Status Database::DeclareSynonym(Oid a, Oid b) {
  AssertExclusiveAccess();
  if (GetObject(a) == nullptr || GetObject(b) == nullptr) {
    return Status::NotFound("synonym declaration requires two live objects");
  }
  Oid ra = CanonicalOf(a);
  Oid rb = CanonicalOf(b);
  if (ra == rb) return Status::Ok();
  // Attach the larger oid's root under the smaller so the canonical
  // representative is deterministic (the oldest object).
  if (rb < ra) std::swap(ra, rb);
  synonym_parent_[rb] = ra;
  MarkSynonymsDirty();
  UndoRecord undo{};
  undo.kind = UndoRecord::Kind::kDeclareSynonym;
  undo.oid = rb;
  RecordUndo(std::move(undo));
  Event after(EventKind::kAfterDeclareSynonym);
  after.source = ra;
  after.target = rb;
  PublishEvent(after);
  if (!in_transaction_) undo_log_.clear();
  return Status::Ok();
}

bool Database::AreSynonyms(Oid a, Oid b) const {
  return CanonicalOf(a) == CanonicalOf(b);
}

Oid Database::CanonicalOf(Oid oid) const {
  Oid cur = oid;
  for (;;) {
    auto it = synonym_parent_.find(cur);
    if (it == synonym_parent_.end()) return cur;
    cur = it->second;
  }
}

std::vector<Oid> Database::SynonymSet(Oid oid) const {
  AssertSharedAccess();
  Oid root = CanonicalOf(oid);
  std::vector<Oid> out;
  if (GetObject(root) != nullptr) out.push_back(root);
  for (const auto& [child, parent] : synonym_parent_) {
    (void)parent;
    if (child != root && CanonicalOf(child) == root &&
        GetObject(child) != nullptr) {
      out.push_back(child);
    }
  }
  return out;
}

// ------------------------------------------------------ storage substrate

Status Database::RestoreObjectRaw(Oid oid, const std::string& class_name,
                                  std::vector<AttrInit> attrs) {
  AssertExclusiveAccess();
  if (in_transaction_) {
    return Status::FailedPrecondition(
        "raw restore is not valid inside a transaction");
  }
  if (oid == kNullOid || objects_.count(oid) || links_.count(oid)) {
    return Status::InvalidArgument("oid @" + std::to_string(oid) +
                                   " is unavailable");
  }
  const ClassDef* cls = FindClass(class_name);
  if (cls == nullptr) {
    return Status::NotFound("unknown class '" + class_name + "'");
  }
  auto obj = std::make_unique<Object>();
  obj->oid = oid;
  obj->cls = cls;
  for (AttrInit& a : attrs) obj->attrs[a.first] = std::move(a.second);
  Object* raw = obj.get();
  objects_[oid] = std::move(obj);
  RestoreToExtent(raw);
  ++live_objects_;
  EnsureNextOidAbove(oid);
  return Status::Ok();
}

Status Database::RestoreLinkRaw(Oid oid, const std::string& rel_name,
                                Oid source, Oid target, Oid context,
                                std::vector<AttrInit> attrs) {
  AssertExclusiveAccess();
  if (in_transaction_) {
    return Status::FailedPrecondition(
        "raw restore is not valid inside a transaction");
  }
  if (oid == kNullOid || objects_.count(oid) || links_.count(oid)) {
    return Status::InvalidArgument("oid @" + std::to_string(oid) +
                                   " is unavailable");
  }
  const RelationshipDef* def = FindRelationship(rel_name);
  if (def == nullptr) {
    return Status::NotFound("unknown relationship '" + rel_name + "'");
  }
  if (GetObject(source) == nullptr || GetObject(target) == nullptr) {
    return Status::NotFound("link endpoints must be restored first");
  }
  auto link = std::make_unique<Link>();
  link->oid = oid;
  link->def = def;
  link->source = source;
  link->target = target;
  link->context = context;
  for (AttrInit& a : attrs) link->attrs[a.first] = std::move(a.second);
  Link* raw = link.get();
  links_[oid] = std::move(link);
  AttachLinkToEndpoints(*raw);
  RestoreLinkToExtent(raw);
  AddToContextIndex(raw);
  ++live_links_;
  EnsureNextOidAbove(oid);
  return Status::Ok();
}

Status Database::RestoreSynonymRaw(Oid child, Oid parent) {
  AssertExclusiveAccess();
  if (child == parent) return Status::Ok();
  synonym_parent_[child] = parent;
  MarkSynonymsDirty();
  return Status::Ok();
}

void Database::EnsureNextOidAbove(Oid oid) {
  if (next_oid_ <= oid) next_oid_ = oid + 1;
}

Status Database::Clear() {
  AssertExclusiveAccess();
  if (in_transaction_) {
    return Status::FailedPrecondition("cannot clear inside a transaction");
  }
  undo_log_.clear();
  synonym_parent_.clear();
  context_index_.clear();
  link_extents_.clear();
  extents_.clear();
  links_.clear();
  objects_.clear();
  rel_template_order_.clear();
  rel_templates_.clear();
  rels_by_name_.clear();
  rel_storage_.clear();
  classes_by_name_.clear();
  class_storage_.clear();
  live_objects_ = 0;
  live_links_ = 0;
  next_oid_ = 1;
  // Everything changed at once (and the dirty sets may hold pointers into
  // the schema storage just dropped): force a from-scratch rebuild at the
  // next publish. Snapshots taken before the clear stay fully readable —
  // their SchemaTables keep-alives own the old definitions.
  if (TrackDirty()) {
    dirty_ = DirtyState{};
    dirty_.full = true;
    dirty_.any = true;
  }
  return Status::Ok();
}

// ------------------------------------------------------------ transactions

Status Database::Begin() {
  AssertExclusiveAccess();
  if (in_transaction_) {
    return Status::FailedPrecondition("nested transactions are unsupported");
  }
  in_transaction_ = true;
  undo_log_.clear();
  Event ev{EventKind::kTransactionBegin};
  PublishEvent(ev);
  return Status::Ok();
}

Status Database::Commit() {
  AssertExclusiveAccess();
  if (!in_transaction_) {
    return Status::FailedPrecondition("no transaction in progress");
  }
  Event pre{EventKind::kBeforeCommit};
  Status st = PublishEvent(pre);
  if (!st.ok()) {
    UndoAll();
    in_transaction_ = false;
    Event ab{EventKind::kAfterAbort};
    PublishEvent(ab);
    return Status::Aborted("commit vetoed: " + st.ToString());
  }
  undo_log_.clear();
  in_transaction_ = false;
  Event post{EventKind::kAfterCommit};
  PublishEvent(post);
  return Status::Ok();
}

Status Database::Abort() {
  AssertExclusiveAccess();
  if (!in_transaction_) {
    return Status::FailedPrecondition("no transaction in progress");
  }
  UndoAll();
  in_transaction_ = false;
  Event ev{EventKind::kAfterAbort};
  PublishEvent(ev);
  return Status::Ok();
}

void Database::UndoAll() {
  while (!undo_log_.empty()) {
    UndoRecord rec = std::move(undo_log_.back());
    undo_log_.pop_back();
    // Each branch restores the pre-mutation state and publishes a
    // compensating after-event describing the inverse mutation so derived
    // state (indexes, views, classification caches) stays consistent.
    Event comp;
    comp.compensating = true;
    switch (rec.kind) {
      case UndoRecord::Kind::kCreateObject: {
        Object* obj = MutableObject(rec.oid);
        if (obj == nullptr) break;
        comp.kind = EventKind::kAfterDeleteObject;
        comp.subject = rec.oid;
        comp.type_name = obj->cls->name();
        RemoveFromExtent(obj);
        --live_objects_;
        objects_.erase(rec.oid);
        PublishEvent(comp);
        break;
      }
      case UndoRecord::Kind::kDeleteObject: {
        Object* raw = rec.object_snapshot.get();
        objects_[rec.oid] = std::move(rec.object_snapshot);
        // Incident-link vectors are rebuilt by the link undo records that
        // precede this record in the log (and hence follow it in undo
        // order), so clear them here.
        raw->out_links.clear();
        raw->in_links.clear();
        RestoreToExtent(raw);
        ++live_objects_;
        comp.kind = EventKind::kAfterCreateObject;
        comp.subject = rec.oid;
        comp.type_name = raw->cls->name();
        PublishEvent(comp);
        break;
      }
      case UndoRecord::Kind::kSetAttribute: {
        Object* obj = MutableObject(rec.oid);
        if (obj == nullptr) break;
        comp.kind = EventKind::kAfterSetAttribute;
        comp.subject = rec.oid;
        comp.type_name = obj->cls->name();
        comp.attribute = rec.name;
        comp.old_value = obj->attrs[rec.name];
        comp.new_value = rec.old_value;
        obj->attrs[rec.name] = std::move(rec.old_value);
        PublishEvent(comp);
        break;
      }
      case UndoRecord::Kind::kCreateLink: {
        Link* link = MutableLink(rec.oid);
        if (link == nullptr) break;
        comp.kind = EventKind::kAfterDeleteLink;
        comp.subject = rec.oid;
        comp.type_name = link->def->name();
        comp.source = link->source;
        comp.target = link->target;
        comp.context = link->context;
        DetachLinkFromEndpoints(*link);
        RemoveLinkFromExtent(link);
        RemoveFromContextIndex(link);
        --live_links_;
        links_.erase(rec.oid);
        PublishEvent(comp);
        break;
      }
      case UndoRecord::Kind::kDeleteLink: {
        Link* raw = rec.link_snapshot.get();
        links_[rec.oid] = std::move(rec.link_snapshot);
        AttachLinkToEndpoints(*raw);
        RestoreLinkToExtent(raw);
        AddToContextIndex(raw);
        ++live_links_;
        comp.kind = EventKind::kAfterCreateLink;
        comp.subject = rec.oid;
        comp.type_name = raw->def->name();
        comp.source = raw->source;
        comp.target = raw->target;
        comp.context = raw->context;
        PublishEvent(comp);
        break;
      }
      case UndoRecord::Kind::kSetLinkAttribute: {
        Link* link = MutableLink(rec.oid);
        if (link == nullptr) break;
        comp.kind = EventKind::kAfterSetLinkAttribute;
        comp.subject = rec.oid;
        comp.type_name = link->def->name();
        comp.source = link->source;
        comp.target = link->target;
        comp.context = link->context;
        comp.attribute = rec.name;
        comp.old_value = link->attrs[rec.name];
        comp.new_value = rec.old_value;
        link->attrs[rec.name] = std::move(rec.old_value);
        PublishEvent(comp);
        break;
      }
      case UndoRecord::Kind::kDeclareSynonym: {
        synonym_parent_.erase(rec.oid);
        MarkSynonymsDirty();
        break;
      }
    }
  }
}

// ------------------------------------------------------ MVCC publication

std::shared_ptr<const SchemaTables> Database::BuildSchemaTables() const {
  auto t = std::make_shared<SchemaTables>();
  t->class_keep_alive.reserve(class_storage_.size());
  t->classes_in_order.reserve(class_storage_.size());
  for (const auto& c : class_storage_) {
    t->class_keep_alive.push_back(c);
    t->classes_in_order.push_back(c.get());
    t->classes_by_name[c->name()] = c.get();
    if (!c->subclasses().empty()) t->subclasses[c.get()] = c->subclasses();
  }
  t->rel_keep_alive.reserve(rel_storage_.size());
  t->rels_in_order.reserve(rel_storage_.size());
  for (const auto& r : rel_storage_) {
    t->rel_keep_alive.push_back(r);
    t->rels_in_order.push_back(r.get());
    t->rels_by_name[r->name()] = r.get();
    if (!r->subrelationships().empty()) {
      t->subrels[r.get()] = r->subrelationships();
    }
  }
  return t;
}

std::shared_ptr<DbSnapshot> Database::BuildFullSnapshot(
    std::uint64_t epoch) const {
  std::shared_ptr<DbSnapshot> snap(new DbSnapshot());
  snap->epoch_ = epoch;
  snap->schema_ = BuildSchemaTables();
  for (const auto& [oid, obj] : objects_) {
    snap->objects_.Set(oid, mvcc::MakeVersion(*obj));
  }
  for (const auto& [oid, link] : links_) {
    snap->links_.Set(oid, mvcc::MakeVersion(*link));
  }
  for (const auto& [cls, extent] : extents_) {
    if (!extent.empty()) {
      snap->extents_[cls] = std::make_shared<const std::vector<Oid>>(extent);
    }
  }
  for (const auto& [def, extent] : link_extents_) {
    if (!extent.empty()) {
      snap->link_extents_[def] =
          std::make_shared<const std::vector<Oid>>(extent);
    }
  }
  for (const auto& [ctx, bucket] : context_index_) {
    if (!bucket.empty()) {
      snap->context_index_[ctx] =
          std::make_shared<const std::vector<Oid>>(bucket);
    }
  }
  snap->synonym_parent_ =
      std::make_shared<const std::unordered_map<Oid, Oid>>(synonym_parent_);
  snap->live_objects_ = live_objects_;
  snap->live_links_ = live_links_;
  return snap;
}

std::shared_ptr<DbSnapshot> Database::BuildNextSnapshot(
    const DbSnapshot& prev, std::uint64_t epoch) const {
  // Structural share of the previous cut, then replace exactly what the
  // dirty set names. Cost: O(changed records × trie depth) version copies
  // plus a wholesale copy of each *dirty* extent/context bucket — fine for
  // transaction-sized commits; a known cost for single-record commits
  // against a huge extent (future work: persistent extent trees).
  std::shared_ptr<DbSnapshot> snap(new DbSnapshot(prev));
  snap->epoch_ = epoch;
  if (dirty_.schema) snap->schema_ = BuildSchemaTables();
  for (Oid oid : dirty_.objects) {
    auto it = objects_.find(oid);
    if (it == objects_.end()) {
      snap->objects_.Erase(oid);
    } else {
      snap->objects_.Set(oid, mvcc::MakeVersion(*it->second));
    }
  }
  for (Oid oid : dirty_.links) {
    auto it = links_.find(oid);
    if (it == links_.end()) {
      snap->links_.Erase(oid);
    } else {
      snap->links_.Set(oid, mvcc::MakeVersion(*it->second));
    }
  }
  for (const ClassDef* cls : dirty_.extents) {
    auto it = extents_.find(cls);
    if (it == extents_.end() || it->second.empty()) {
      snap->extents_.erase(cls);
    } else {
      snap->extents_[cls] =
          std::make_shared<const std::vector<Oid>>(it->second);
    }
  }
  for (const RelationshipDef* def : dirty_.link_extents) {
    auto it = link_extents_.find(def);
    if (it == link_extents_.end() || it->second.empty()) {
      snap->link_extents_.erase(def);
    } else {
      snap->link_extents_[def] =
          std::make_shared<const std::vector<Oid>>(it->second);
    }
  }
  for (Oid ctx : dirty_.contexts) {
    auto it = context_index_.find(ctx);
    if (it == context_index_.end() || it->second.empty()) {
      snap->context_index_.erase(ctx);
    } else {
      snap->context_index_[ctx] =
          std::make_shared<const std::vector<Oid>>(it->second);
    }
  }
  if (dirty_.synonyms) {
    snap->synonym_parent_ =
        std::make_shared<const std::unordered_map<Oid, Oid>>(synonym_parent_);
  }
  snap->live_objects_ = live_objects_;
  snap->live_links_ = live_links_;
  return snap;
}

void Database::PublishSnapshot() {
  if (!mvcc_engaged_.load(std::memory_order_relaxed)) {
    dirty_ = DirtyState{};
    return;
  }
  std::shared_ptr<const DbSnapshot> prev;
  {
    std::lock_guard<std::mutex> lk(snap_mu_);
    prev = current_snapshot_;
  }
  // Stamped with the epoch the closing write section commits as. Even a
  // no-op section republishes (an O(1) restamped share) so the snapshot
  // epoch tracks the database epoch exactly — the result cache's
  // epoch-equality check depends on that.
  const std::uint64_t next_epoch =
      epoch_.load(std::memory_order_relaxed) + 1;
  std::shared_ptr<DbSnapshot> snap;
  if (snapshot_stale_.load(std::memory_order_acquire) || dirty_.full ||
      prev == nullptr) {
    snap = BuildFullSnapshot(next_epoch);
    snapshot_stale_.store(false, std::memory_order_release);
  } else {
    snap = BuildNextSnapshot(*prev, next_epoch);
  }
  dirty_ = DirtyState{};
  {
    std::lock_guard<std::mutex> lk(snap_mu_);
    current_snapshot_ = std::move(snap);
  }
  prev.reset();  // drop the superseded cut before reporting retention
  UpdateMvccGauges();
}

void Database::RebuildSnapshotSlow() {
  std::lock_guard<std::mutex> rebuild_lk(snap_rebuild_mu_);
  if (mvcc_engaged_.load(std::memory_order_acquire) &&
      !snapshot_stale_.load(std::memory_order_acquire)) {
    return;  // another acquirer already rebuilt
  }
  // The shared guard excludes writers, so the live state is a consistent
  // cut at the *current* epoch (no bump happens without a write section).
  ReadGuard guard(*this);
  auto snap = BuildFullSnapshot(epoch());
  {
    std::lock_guard<std::mutex> lk(snap_mu_);
    current_snapshot_ = std::move(snap);
  }
  snapshot_stale_.store(false, std::memory_order_release);
  mvcc_engaged_.store(true, std::memory_order_release);
  UpdateMvccGauges();
}

SnapshotHandle Database::AcquireSnapshot() {
  if (!mvcc_engaged_.load(std::memory_order_acquire) ||
      snapshot_stale_.load(std::memory_order_acquire)) {
    RebuildSnapshotSlow();
  }
  std::shared_ptr<const DbSnapshot> snap;
  {
    std::lock_guard<std::mutex> lk(snap_mu_);
    snap = current_snapshot_;
  }
  RegisterPin(snap->epoch());
  return SnapshotHandle(std::move(snap), this);
}

void Database::RegisterPin(std::uint64_t epoch) {
  {
    std::lock_guard<std::mutex> lk(snap_reg_mu_);
    pinned_epochs_.insert(epoch);
  }
  UpdateMvccGauges();
}

void Database::ReleasePin(std::uint64_t epoch) {
  {
    std::lock_guard<std::mutex> lk(snap_reg_mu_);
    auto it = pinned_epochs_.find(epoch);
    if (it != pinned_epochs_.end()) pinned_epochs_.erase(it);
  }
  UpdateMvccGauges();
}

std::size_t Database::pinned_snapshots() const {
  std::lock_guard<std::mutex> lk(snap_reg_mu_);
  return pinned_epochs_.size();
}

std::uint64_t Database::oldest_pinned_epoch() const {
  std::lock_guard<std::mutex> lk(snap_reg_mu_);
  return pinned_epochs_.empty() ? epoch() : *pinned_epochs_.begin();
}

void Database::UpdateMvccGauges() const {
  if (!obs::MetricsEnabled()) return;
  const MvccGauges& g = MvccGauges::Get();
  g.retained->Set(static_cast<std::int64_t>(mvcc::RetainedVersions()));
  g.live->Set(static_cast<std::int64_t>(mvcc::LiveSnapshots()));
  std::lock_guard<std::mutex> lk(snap_reg_mu_);
  g.pinned->Set(static_cast<std::int64_t>(pinned_epochs_.size()));
  g.oldest->Set(static_cast<std::int64_t>(
      pinned_epochs_.empty() ? epoch() : *pinned_epochs_.begin()));
}

// ------------------------------------------------------------- validation

Status Database::ValidateCardinality() const {
  for (const auto& rel : rel_storage_) {
    const RelationshipSemantics& sem = rel->semantics();
    if (sem.min_out == 0 && sem.min_in == 0) continue;
    if (sem.min_out > 0) {
      for (Oid oid : Extent(rel->source_class()->name())) {
        const Object* obj = GetObject(oid);
        std::uint32_t n = 0;
        for (Oid lid : obj->out_links) {
          const Link* l = GetLink(lid);
          if (l != nullptr && l->def->IsSubrelationshipOf(rel.get())) ++n;
        }
        if (n < sem.min_out) {
          return Status::ConstraintViolation(
              "object @" + std::to_string(oid) + " has " + std::to_string(n) +
              " outgoing '" + rel->name() + "' links (min " +
              std::to_string(sem.min_out) + ")");
        }
      }
    }
    if (sem.min_in > 0) {
      for (Oid oid : Extent(rel->target_class()->name())) {
        const Object* obj = GetObject(oid);
        std::uint32_t n = 0;
        for (Oid lid : obj->in_links) {
          const Link* l = GetLink(lid);
          if (l != nullptr && l->def->IsSubrelationshipOf(rel.get())) ++n;
        }
        if (n < sem.min_in) {
          return Status::ConstraintViolation(
              "object @" + std::to_string(oid) + " has " + std::to_string(n) +
              " incoming '" + rel->name() + "' links (min " +
              std::to_string(sem.min_in) + ")");
        }
      }
    }
  }
  return Status::Ok();
}

}  // namespace prometheus
