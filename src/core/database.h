#ifndef PROMETHEUS_CORE_DATABASE_H_
#define PROMETHEUS_CORE_DATABASE_H_

#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/oid.h"
#include "common/result.h"
#include "common/value.h"
#include "core/instance.h"
#include "core/read_view.h"
#include "core/schema.h"
#include "core/snapshot.h"
#include "event/event_bus.h"
#include "obs/wait_profiler.h"

namespace prometheus {

/// The Prometheus database: schema registry, object store, first-class
/// relationship store, instance synonyms and transactions, publishing every
/// mutation on an `EventBus` (thesis chapter 4 model; chapter 6
/// architecture: event layer + object layer).
///
/// Thread model: a `Database` used from one thread (the embedded mode, and
/// the thesis' single-user prototype) needs no locking at all. Concurrent
/// use is MVCC: writers (every mutation, transaction, or journal-observed
/// change) serialize through the exclusive `WriteGuard` below, and the end
/// of each write section **publishes an immutable `DbSnapshot`** of the
/// whole database. Readers call `AcquireSnapshot()` and execute against
/// the pinned snapshot with no lock held — a reader can never be blocked,
/// starved, or torn by a writer, and a writer stalled mid-section (e.g. in
/// a journal fsync) degrades write latency only. `ReadGuard` remains for
/// callers that genuinely need the *live* state quiesced (snapshot
/// bootstrap, storage checkpointing, tests). Debug builds assert the
/// protocol on every extent/instance access.
///
/// Version retention is reference-counted, not scheduled: superseded
/// versions are freed the moment the last snapshot reaching them is
/// released (watermark = oldest pinned epoch, visible as
/// `mvcc_oldest_snapshot_epoch`; retention volume as
/// `mvcc_retained_versions`).
class Database : public ReadView {
 public:
  Database();
  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // -------------------------------------------- concurrency (epoch guard)

  /// RAII shared (read) lock over the database. Many may be held at once;
  /// none while a `WriteGuard` is live. While held, every const method is
  /// safe to call from this thread and the observed state cannot change —
  /// the epoch seen at acquisition stays the epoch until release.
  ///
  /// With metrics enabled, acquisition is timed into
  /// `guard_wait_micros{mode="shared"}` (a blocked reader also shows in
  /// the `guard_blocked_readers` gauge while it waits) and the hold into
  /// `guard_hold_micros{mode="shared"}` — the attribution that tells a
  /// stalled read fleet from a slow query. Disabled, the only extra cost
  /// is one relaxed load and branch.
  class ReadGuard {
   public:
    explicit ReadGuard(const Database& db)
        : db_(db), lock_(db.guard_, std::defer_lock) {
      if (obs::MetricsEnabled()) {
        const obs::GuardInstruments& g = obs::GuardInstruments::Get();
        const auto start = std::chrono::steady_clock::now();
        // Uncontended fast path: one try_lock, no gauge traffic. Only a
        // reader that actually blocks appears as blocked.
        if (!lock_.try_lock()) {
          g.blocked_readers->Add(1);
          lock_.lock();
          g.blocked_readers->Sub(1);
        }
        acquired_at_ = std::chrono::steady_clock::now();
        wait_micros_ = std::chrono::duration<double, std::micro>(
                           acquired_at_ - start)
                           .count();
        g.shared_wait->Observe(wait_micros_);
        timed_ = true;
      } else {
        lock_.lock();
      }
      db_.readers_.fetch_add(1, std::memory_order_acq_rel);
    }
    ~ReadGuard() {
      db_.readers_.fetch_sub(1, std::memory_order_acq_rel);
      if (timed_) {
        obs::GuardInstruments::Get().shared_hold->Observe(
            std::chrono::duration<double, std::micro>(
                std::chrono::steady_clock::now() - acquired_at_)
                .count());
      }
    }

    ReadGuard(const ReadGuard&) = delete;
    ReadGuard& operator=(const ReadGuard&) = delete;

    /// The guarded database's epoch (stable for the guard's lifetime).
    std::uint64_t epoch() const { return db_.epoch(); }

    /// Microseconds this guard spent blocked in acquisition (0 with
    /// metrics disabled). The server copies it into the request's wait
    /// breakdown.
    double wait_micros() const { return wait_micros_; }

   private:
    const Database& db_;
    std::shared_lock<std::shared_mutex> lock_;
    std::chrono::steady_clock::time_point acquired_at_{};
    double wait_micros_ = 0;
    bool timed_ = false;
  };

  /// RAII exclusive (write) lock. Completing an exclusive section bumps
  /// the epoch, so readers can detect whether any writer ran between two
  /// of their own critical sections.
  ///
  /// With metrics enabled, acquisition is timed into
  /// `guard_wait_micros{mode="exclusive"}`, the hold into
  /// `guard_hold_micros{mode="exclusive"}` plus the
  /// `guard_writer_last_hold_micros` gauge, and `guard_writer_held` is 1
  /// for the duration — the writer-hold telemetry that explains reader
  /// guard waits.
  class WriteGuard {
   public:
    explicit WriteGuard(Database& db)
        : db_(db), lock_(db.guard_, std::defer_lock) {
      if (obs::MetricsEnabled()) {
        const obs::GuardInstruments& g = obs::GuardInstruments::Get();
        const auto start = std::chrono::steady_clock::now();
        if (!lock_.try_lock()) {
          g.blocked_writers->Add(1);
          lock_.lock();
          g.blocked_writers->Sub(1);
        }
        acquired_at_ = std::chrono::steady_clock::now();
        wait_micros_ = std::chrono::duration<double, std::micro>(
                           acquired_at_ - start)
                           .count();
        g.exclusive_wait->Observe(wait_micros_);
        // High-water mark of writer wait: single-writer MVCC makes writer
        // admission the choke point, so starvation must be visible.
        // Writers are serialized here (the lock is already held), so the
        // read-compare-set cannot lose an update.
        if (wait_micros_ >
            static_cast<double>(g.writer_longest_wait->value())) {
          g.writer_longest_wait->Set(static_cast<std::int64_t>(wait_micros_));
        }
        g.writer_held->Set(1);
        timed_ = true;
      } else {
        lock_.lock();
      }
      db_.writer_thread_.store(std::this_thread::get_id(),
                               std::memory_order_relaxed);
      db_.writer_active_.store(true, std::memory_order_release);
    }
    ~WriteGuard() {
      // Publish the post-section snapshot while still exclusive, *before*
      // the epoch bump becomes observable: a reader that sees epoch E+1
      // must be able to acquire a snapshot stamped E+1 (a reader seeing
      // the new snapshot before the bump is harmless — snapshots only ever
      // run ahead of the observable epoch, never behind).
      db_.PublishSnapshot();
      db_.writer_active_.store(false, std::memory_order_release);
      db_.epoch_.fetch_add(1, std::memory_order_acq_rel);
      if (timed_) {
        const double hold = std::chrono::duration<double, std::micro>(
                                std::chrono::steady_clock::now() -
                                acquired_at_)
                                .count();
        const obs::GuardInstruments& g = obs::GuardInstruments::Get();
        g.exclusive_hold->Observe(hold);
        g.writer_last_hold_micros->Set(static_cast<std::int64_t>(hold));
        g.writer_held->Set(0);
      }
    }

    WriteGuard(const WriteGuard&) = delete;
    WriteGuard& operator=(const WriteGuard&) = delete;

    /// Microseconds this guard spent blocked in acquisition (0 with
    /// metrics disabled).
    double wait_micros() const { return wait_micros_; }

   private:
    Database& db_;
    std::unique_lock<std::shared_mutex> lock_;
    std::chrono::steady_clock::time_point acquired_at_{};
    double wait_micros_ = 0;
    bool timed_ = false;
  };

  /// Monotonic count of completed exclusive (write) sections. A reader
  /// observing the same epoch before and after a computation is guaranteed
  /// that no guarded mutation interleaved.
  std::uint64_t epoch() const override {
    return epoch_.load(std::memory_order_acquire);
  }

  /// The live view accepts any index state (index mutations track the live
  /// database by construction).
  std::uint64_t index_epoch_ceiling() const override {
    return std::numeric_limits<std::uint64_t>::max();
  }

  /// The epoch the in-progress write section will commit as (epoch()+1
  /// under a live WriteGuard, epoch() otherwise). Derived-state maintainers
  /// (indexes) stamp their mutations with this so snapshot readers can tell
  /// "index state as of my epoch" from "index already running ahead".
  std::uint64_t pending_epoch() const {
    return epoch() +
           (writer_active_.load(std::memory_order_acquire) ? 1 : 0);
  }

  // ------------------------------------------------- MVCC snapshot reads

  /// Pins the current published snapshot and returns a handle to it. The
  /// first call engages MVCC publication (until then, single-threaded
  /// embedded use pays nothing for versioning); afterwards every write
  /// section refreshes the published snapshot incrementally.
  ///
  /// Never blocks on a writer once engaged — the fast path is one brief
  /// mutex-protected shared_ptr copy plus the pin-registry insert, neither
  /// held across a write section. Must not be called by a thread that
  /// holds this database's guard (the engagement slow path takes the guard
  /// shared).
  SnapshotHandle AcquireSnapshot();

  /// Number of currently pinned snapshot handles (test/ops visibility;
  /// also exported as `mvcc_pinned_snapshots`).
  std::size_t pinned_snapshots() const;

  /// The GC watermark: the oldest epoch a pinned handle still reads, or
  /// the current epoch when nothing is pinned. Versions older than this
  /// are unreachable and already freed (refcount reclamation).
  std::uint64_t oldest_pinned_epoch() const;

  /// Debug checks of the locking protocol; no-ops in NDEBUG builds.
  /// Shared access is legal unless a *foreign* thread holds the write
  /// guard; exclusive access is legal when this thread holds the write
  /// guard or nobody holds the guard at all (single-threaded mode).
  void AssertSharedAccess() const {
#ifndef NDEBUG
    assert(!writer_active_.load(std::memory_order_acquire) ||
           writer_thread_.load(std::memory_order_relaxed) ==
               std::this_thread::get_id());
#endif
  }
  void AssertExclusiveAccess() const {
#ifndef NDEBUG
    if (writer_active_.load(std::memory_order_acquire)) {
      assert(writer_thread_.load(std::memory_order_relaxed) ==
                 std::this_thread::get_id() &&
             "mutation while another thread holds the write guard");
    } else {
      assert(readers_.load(std::memory_order_acquire) == 0 &&
             "mutation while readers hold the epoch guard shared");
    }
#endif
  }

  // ---------------------------------------------------------------- schema

  /// Defines a class. `supers` name previously defined classes.
  /// Fails with kInvalidArgument on duplicate names, unknown supers, or
  /// attribute names that collide with inherited attributes.
  Result<const ClassDef*> DefineClass(
      const std::string& name, const std::vector<std::string>& supers = {},
      std::vector<AttributeDef> attributes = {}, bool is_abstract = false);

  /// Defines a relationship class between two existing classes.
  /// `link_attributes` are carried by each link; `supers` name previously
  /// defined relationship classes (source/target must covariantly refine
  /// the super's).
  Result<const RelationshipDef*> DefineRelationship(
      const std::string& name, const std::string& source_class,
      const std::string& target_class,
      RelationshipSemantics semantics = RelationshipSemantics{},
      std::vector<AttributeDef> link_attributes = {},
      const std::vector<std::string>& supers = {});

  /// Declares a method signature on an existing class (thesis 4.2). The
  /// signature is schema metadata; behaviour is implemented host-side, as
  /// in the ODMG language bindings.
  Status DefineMethod(const std::string& class_name, MethodDef method);

  /// Defines a relationship *template* (thesis figure 34): a reusable
  /// bundle of semantics and link attributes that can be instantiated
  /// against concrete classes any number of times.
  Status DefineRelationshipTemplate(const std::string& name,
                                    RelationshipSemantics semantics,
                                    std::vector<AttributeDef> link_attributes);

  /// Instantiates a template into a concrete relationship class.
  Result<const RelationshipDef*> InstantiateRelationship(
      const std::string& template_name, const std::string& rel_name,
      const std::string& source_class, const std::string& target_class);

  /// Names of the defined relationship templates.
  std::vector<std::string> relationship_templates() const;

  /// A template's semantics / link attributes; nullptr when absent.
  const RelationshipSemantics* FindTemplateSemantics(
      const std::string& name) const;
  const std::vector<AttributeDef>* FindTemplateAttributes(
      const std::string& name) const;

  /// Looks up a class by name; nullptr when absent.
  const ClassDef* FindClass(std::string_view name) const override;

  /// Looks up a relationship class by name; nullptr when absent.
  const RelationshipDef* FindRelationship(
      std::string_view name) const override;

  /// All defined classes, in definition order.
  std::vector<const ClassDef*> classes() const override;

  /// All defined relationship classes, in definition order.
  std::vector<const RelationshipDef*> relationships() const override;

  // --------------------------------------------------------------- objects

  /// Creates an instance of `class_name` with defaults applied and `inits`
  /// overriding them. Vetoable by before-rules.
  Result<Oid> CreateObject(const std::string& class_name,
                           std::vector<AttrInit> inits = {});

  /// Deletes an object: removes incident links (cascading through
  /// lifetime-dependent relationships) and removes it from its extent.
  Status DeleteObject(Oid oid);

  /// Sets an attribute, type-checked against the declaration.
  Status SetAttribute(Oid oid, const std::string& name, Value value);

  /// Reads an attribute. Falls back to attributes inherited from incoming
  /// links whose relationship class enables `inherit_attributes`
  /// (thesis 4.4.5, figures 17–18).
  Result<Value> GetAttribute(Oid oid, const std::string& name) const override;

  /// Non-owning instance lookup; nullptr when the oid is dead or unknown.
  const Object* GetObject(Oid oid) const override;

  /// True when `oid` designates a live object of `class_name` (or one of
  /// its subclasses).
  bool IsInstanceOf(Oid oid, std::string_view class_name) const override;

  /// The extent of a class; with `include_subclasses` (the default) this is
  /// the deep extent.
  std::vector<Oid> Extent(const std::string& class_name,
                          bool include_subclasses = true) const override;

  /// Number of live objects.
  std::size_t object_count() const override { return live_objects_; }

  // ----------------------------------------------------------------- links

  /// Creates a link of `rel_name` from `source` to `target`, optionally in
  /// classification `context`. Enforces typing, cardinality, exclusivity
  /// and sharability; vetoable by before-rules.
  Result<Oid> CreateLink(const std::string& rel_name, Oid source, Oid target,
                         Oid context = kNullOid,
                         std::vector<AttrInit> inits = {});

  /// Deletes a link. Vetoed for constant relationships.
  Status DeleteLink(Oid oid);

  /// Sets a link attribute. Vetoed for constant relationships.
  Status SetLinkAttribute(Oid oid, const std::string& name, Value value);

  /// Reads a link attribute.
  Result<Value> GetLinkAttribute(Oid oid,
                                 const std::string& name) const override;

  /// Non-owning link lookup; nullptr when dead or unknown.
  const Link* GetLink(Oid oid) const override;

  /// All live links of a relationship class (its extent); with
  /// `include_subrelationships`, links of sub-relationship classes too.
  std::vector<Oid> LinkExtent(const std::string& rel_name,
                              bool include_subrelationships = true)
      const override;

  /// All live links whose classification context is `context` (thesis
  /// 4.6.2: a classification *is* the set of links created in its context).
  /// Maintained incrementally; O(result).
  const std::vector<Oid>& LinksInContext(Oid context) const override;

  /// Number of live links.
  std::size_t link_count() const override { return live_links_; }

  // ------------------------------------------------------------- traversal

  /// Links incident to `oid` in `dir`, optionally restricted to a
  /// relationship class (and its subs) and/or a classification context.
  std::vector<Oid> IncidentLinks(Oid oid, Direction dir,
                                 const RelationshipDef* def = nullptr,
                                 Oid context = kNullOid) const override;

  /// Objects one hop away from `oid` over `rel_name` links.
  /// `context == kNullOid` means "any context".
  std::vector<Oid> Neighbors(Oid oid, const std::string& rel_name,
                             Direction dir = Direction::kOut,
                             Oid context = kNullOid) const override;

  /// Recursive closure (requirement 9): every object reachable from `start`
  /// over `rel_name` links within `[min_depth, max_depth]` hops
  /// (`max_depth == 0` means unbounded). Breadth-first; each object is
  /// reported once at its smallest depth. The start itself is reported only
  /// when `min_depth == 0`.
  Result<std::vector<Oid>> Traverse(Oid start, const std::string& rel_name,
                                    std::uint32_t min_depth,
                                    std::uint32_t max_depth,
                                    Direction dir = Direction::kOut,
                                    Oid context = kNullOid) const override;

  // ----------------------------------------------- instance synonyms (4.5)

  /// Declares that two objects denote the same real-world entity
  /// (thesis 4.5). Synonymy is an equivalence relation maintained with a
  /// union-find structure; it never merges storage.
  Status DeclareSynonym(Oid a, Oid b);

  /// True when the two oids are in the same synonym set (reflexive).
  bool AreSynonyms(Oid a, Oid b) const override;

  /// Canonical representative of `oid`'s synonym set (itself if alone).
  Oid CanonicalOf(Oid oid) const override;

  /// All *live* members of `oid`'s synonym set, including `oid` when it is
  /// alive. Synonym chains survive member deletion (the remaining
  /// duplicates stay unified), but deleted members are not reported.
  std::vector<Oid> SynonymSet(Oid oid) const override;

  // ---------------------------------------------------------- transactions

  /// Begins a transaction. Nested transactions are not supported.
  Status Begin();

  /// Runs deferred rules (kBeforeCommit event); on veto the transaction is
  /// rolled back and kAborted returned. Otherwise makes changes permanent.
  Status Commit();

  /// Rolls back every mutation since Begin().
  Status Abort();

  bool in_transaction() const { return in_transaction_; }

  // ------------------------------------------------------------ validation

  /// Verifies min-cardinality of every live object against every
  /// relationship class (thesis: deferred structural constraints).
  Status ValidateCardinality() const;

  // ----------------------------------------------------- storage substrate

  /// Raw restore of an object under a chosen oid — used by the storage
  /// layer when loading a snapshot. Bypasses events, rules and semantic
  /// checks (a snapshot is already consistent). Fails when the oid is in
  /// use or the class is unknown. Not valid inside a transaction.
  Status RestoreObjectRaw(Oid oid, const std::string& class_name,
                          std::vector<AttrInit> attrs);

  /// Raw restore of a link under a chosen oid (see RestoreObjectRaw). The
  /// endpoints must already exist.
  Status RestoreLinkRaw(Oid oid, const std::string& rel_name, Oid source,
                        Oid target, Oid context, std::vector<AttrInit> attrs);

  /// Raw restore of a synonym edge (child's set is merged under parent).
  Status RestoreSynonymRaw(Oid child, Oid parent);

  /// Guarantees future oids are allocated strictly above `oid`.
  void EnsureNextOidAbove(Oid oid);

  /// Drops every schema definition, instance, link, synonym and the oid
  /// counter, returning the database to its just-constructed state while
  /// keeping identity: the event bus (and its subscribers) and the epoch
  /// guard survive, so holders of a `Database*` stay valid. Used by a
  /// replication follower to rebootstrap from a fresh leader snapshot in
  /// place. No events are published. Fails inside a transaction.
  Status Clear();

  // --------------------------------------------------------------- plumbing

  /// The event bus all mutations are published on.
  EventBus& bus() { return bus_; }
  const EventBus& bus() const { return bus_; }

  /// When false, before/after events are not published (used by the
  /// feature-cost benchmark E7 to isolate the event layer's overhead).
  void set_events_enabled(bool enabled) { events_enabled_ = enabled; }
  bool events_enabled() const { return events_enabled_; }

  /// When false, relationship semantic checks (exclusivity, sharability,
  /// cardinality, constancy) are skipped (feature-cost benchmark only).
  void set_semantics_enabled(bool enabled) { semantics_enabled_ = enabled; }
  bool semantics_enabled() const { return semantics_enabled_; }

 private:
  friend class SnapshotHandle;

  // Undo machinery (transactions).
  struct UndoRecord;

  Object* MutableObject(Oid oid);
  Link* MutableLink(Oid oid);

  // ------------------------------------------------------ MVCC internals

  /// What the current write section touched, consumed by the incremental
  /// snapshot build at publish. Plain members: only the single writer
  /// reads or writes them, always under the exclusive guard.
  struct DirtyState {
    bool any = false;       ///< anything at all changed
    bool full = false;      ///< rebuild from scratch (Clear, engagement)
    bool schema = false;    ///< class/relationship/method definitions
    bool synonyms = false;  ///< the union-find parent map
    std::unordered_set<Oid> objects;
    std::unordered_set<Oid> links;
    std::unordered_set<Oid> contexts;
    std::unordered_set<const ClassDef*> extents;
    std::unordered_set<const RelationshipDef*> link_extents;
  };

  /// Gate for dirty tracking. False before the first AcquireSnapshot
  /// (embedded single-threaded use pays one relaxed load per mutation and
  /// nothing else). Once engaged, a mutation outside a WriteGuard (legal
  /// in single-threaded mode) cannot be published incrementally — it marks
  /// the published snapshot stale instead, forcing a full rebuild at the
  /// next acquire/publish.
  bool TrackDirty() {
    if (!mvcc_engaged_.load(std::memory_order_relaxed)) return false;
    if (!writer_active_.load(std::memory_order_relaxed)) {
      snapshot_stale_.store(true, std::memory_order_release);
      return false;
    }
    return true;
  }
  void MarkObjectDirty(Oid oid) {
    if (TrackDirty()) {
      dirty_.any = true;
      dirty_.objects.insert(oid);
    }
  }
  void MarkLinkDirty(Oid oid) {
    if (TrackDirty()) {
      dirty_.any = true;
      dirty_.links.insert(oid);
    }
  }
  void MarkExtentDirty(const ClassDef* cls) {
    if (TrackDirty()) {
      dirty_.any = true;
      dirty_.extents.insert(cls);
    }
  }
  void MarkLinkExtentDirty(const RelationshipDef* def) {
    if (TrackDirty()) {
      dirty_.any = true;
      dirty_.link_extents.insert(def);
    }
  }
  void MarkContextDirty(Oid context) {
    if (context != kNullOid && TrackDirty()) {
      dirty_.any = true;
      dirty_.contexts.insert(context);
    }
  }
  void MarkSynonymsDirty() {
    if (TrackDirty()) {
      dirty_.any = true;
      dirty_.synonyms = true;
    }
  }
  void MarkSchemaDirty() {
    if (TrackDirty()) {
      dirty_.any = true;
      dirty_.schema = true;
    }
  }

  /// End-of-write-section hook (WriteGuard destructor, pre-epoch-bump):
  /// derives the next snapshot from the published one and the dirty set,
  /// stamps it epoch()+1 and publishes it.
  void PublishSnapshot();
  std::shared_ptr<DbSnapshot> BuildFullSnapshot(std::uint64_t epoch) const;
  std::shared_ptr<DbSnapshot> BuildNextSnapshot(const DbSnapshot& prev,
                                                std::uint64_t epoch) const;
  std::shared_ptr<const SchemaTables> BuildSchemaTables() const;

  /// Engagement / staleness slow path: quiesces writers with a ReadGuard,
  /// builds a full snapshot of the current state and publishes it.
  void RebuildSnapshotSlow();

  void RegisterPin(std::uint64_t epoch);
  void ReleasePin(std::uint64_t epoch);
  void UpdateMvccGauges() const;

  Status CheckLinkSemantics(const RelationshipDef* def, const Object& source,
                            const Object& target) const;
  Status DeleteLinkInternal(Oid oid, bool ignore_constancy);
  Status DeleteObjectInternal(Oid oid, std::vector<Oid>* cascade);
  Status PublishEvent(const Event& event);
  void RecordUndo(UndoRecord record);
  void RemoveFromExtent(Object* obj);
  void RestoreToExtent(Object* obj);
  void DetachLinkFromEndpoints(const Link& link);
  void AttachLinkToEndpoints(const Link& link);
  void AddToContextIndex(Link* link);
  void RemoveFromContextIndex(Link* link);
  void RemoveLinkFromExtent(Link* link);
  void RestoreLinkToExtent(Link* link);

  // Rollback helpers used by Abort().
  void UndoAll();

  // Epoch guard (see ReadGuard/WriteGuard). `guard_` is mutable so const
  // readers can take the shared side; the counters only exist to let the
  // debug assertions and `epoch()` observe the guard's state.
  mutable std::shared_mutex guard_;
  std::atomic<std::uint64_t> epoch_{0};
  mutable std::atomic<int> readers_{0};
  std::atomic<bool> writer_active_{false};
  std::atomic<std::thread::id> writer_thread_{};

  EventBus bus_;
  bool events_enabled_ = true;
  bool semantics_enabled_ = true;

  // MVCC publication state. `current_snapshot_` is swapped under the tiny
  // `snap_mu_` (held only for a shared_ptr copy — a stalled writer never
  // holds it, so snapshot acquisition cannot block on a write section).
  std::atomic<bool> mvcc_engaged_{false};
  std::atomic<bool> snapshot_stale_{false};
  mutable std::mutex snap_mu_;
  std::shared_ptr<const DbSnapshot> current_snapshot_;
  std::mutex snap_rebuild_mu_;
  DirtyState dirty_;

  // Pin registry feeding the GC watermark gauges. A multiset because many
  // handles may pin the same epoch.
  mutable std::mutex snap_reg_mu_;
  std::multiset<std::uint64_t> pinned_epochs_;

  // Schema. Definitions are shared_ptr-owned so a snapshot's SchemaTables
  // can keep them (and the `cls`/`def` pointers inside retained object
  // versions) alive across Clear().
  std::vector<std::shared_ptr<ClassDef>> class_storage_;
  std::unordered_map<std::string, ClassDef*> classes_by_name_;
  std::vector<std::shared_ptr<RelationshipDef>> rel_storage_;
  std::unordered_map<std::string, RelationshipDef*> rels_by_name_;
  struct RelationshipTemplate {
    RelationshipSemantics semantics;
    std::vector<AttributeDef> attributes;
  };
  std::unordered_map<std::string, RelationshipTemplate> rel_templates_;
  std::vector<std::string> rel_template_order_;

  // Instances.
  std::unordered_map<Oid, std::unique_ptr<Object>> objects_;
  std::unordered_map<Oid, std::unique_ptr<Link>> links_;
  std::unordered_map<const ClassDef*, std::vector<Oid>> extents_;
  std::unordered_map<const RelationshipDef*, std::vector<Oid>> link_extents_;
  std::unordered_map<Oid, std::vector<Oid>> context_index_;
  std::size_t live_objects_ = 0;
  std::size_t live_links_ = 0;
  Oid next_oid_ = 1;

  // Synonyms: parent pointers of a union-find without path compression
  // (undoability); absent key == singleton set.
  std::unordered_map<Oid, Oid> synonym_parent_;

  // Transactions.
  bool in_transaction_ = false;
  std::vector<UndoRecord> undo_log_;
};

}  // namespace prometheus

#endif  // PROMETHEUS_CORE_DATABASE_H_
