#include "taxonomy/rank.h"

#include <algorithm>
#include <cctype>

namespace prometheus::taxonomy {

namespace {

constexpr const char* kNames[kRankCount] = {
    "Regnum",     "Subregnum",   "Divisio",  "Subdivisio", "Classis",
    "Subclassis", "Ordo",        "Subordo",  "Familia",    "Subfamilia",
    "Tribus",     "Subtribus",   "Genus",    "Subgenus",   "Sectio",
    "Subsectio",  "Series",      "Subseries", "Species",   "Subspecies",
    "Varietas",   "Subvarietas", "Forma",    "Subforma",
};

}  // namespace

int RankOrder(Rank rank) { return static_cast<int>(rank); }

const char* RankName(Rank rank) {
  int i = static_cast<int>(rank);
  return (i >= 0 && i < kRankCount) ? kNames[i] : "?";
}

Result<Rank> RankFromName(const std::string& name) {
  std::string lower = name;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  for (int i = 0; i < kRankCount; ++i) {
    std::string candidate = kNames[i];
    std::transform(candidate.begin(), candidate.end(), candidate.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (candidate == lower) return static_cast<Rank>(i);
  }
  // Common aliases.
  if (lower == "phyllum" || lower == "phylum") return Rank::kDivisio;
  if (lower == "family") return Rank::kFamilia;
  if (lower == "order") return Rank::kOrdo;
  if (lower == "class") return Rank::kClassis;
  if (lower == "kingdom") return Rank::kRegnum;
  return Status::NotFound("unknown rank '" + name + "'");
}

bool IsPrimaryRank(Rank rank) {
  switch (rank) {
    case Rank::kRegnum:
    case Rank::kDivisio:
    case Rank::kClassis:
    case Rank::kOrdo:
    case Rank::kFamilia:
    case Rank::kGenus:
    case Rank::kSpecies:
      return true;
    default:
      return false;
  }
}

bool IsSecondaryRank(Rank rank) {
  switch (rank) {
    case Rank::kTribus:
    case Rank::kSectio:
    case Rank::kSeries:
    case Rank::kVarietas:
    case Rank::kForma:
      return true;
    default:
      return false;
  }
}

bool IsSubRank(Rank rank) {
  // Sub ranks are exactly the odd positions: each follows the rank whose
  // name it derives from.
  return static_cast<int>(rank) % 2 == 1;
}

bool IsBelow(Rank a, Rank b) { return RankOrder(a) > RankOrder(b); }

bool IsMultinomial(Rank rank) {
  return RankOrder(rank) >= RankOrder(Rank::kSpecies);
}

const std::vector<Rank>& AllRanks() {
  static const auto& kAll = *new std::vector<Rank>([] {
    std::vector<Rank> all;
    for (int i = 0; i < kRankCount; ++i) all.push_back(static_cast<Rank>(i));
    return all;
  }());
  return kAll;
}

}  // namespace prometheus::taxonomy
