#ifndef PROMETHEUS_CORE_READ_VIEW_H_
#define PROMETHEUS_CORE_READ_VIEW_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/oid.h"
#include "common/result.h"
#include "common/value.h"

namespace prometheus {

class ClassDef;
class RelationshipDef;
class Object;
class Link;

/// Direction selector for link traversal.
enum class Direction : std::uint8_t {
  kOut,   ///< follow links from source to target
  kIn,    ///< follow links from target to source
  kBoth,  ///< follow links either way (undirected view)
};

/// Named initial attribute assignment used at object/link creation.
using AttrInit = std::pair<std::string, Value>;

/// The read-side surface of the database: everything a query, view or
/// traversal needs, with no mutation entry points. Two implementations
/// exist — the live `Database` (reads see the current state; callers must
/// follow the epoch-guard protocol) and `DbSnapshot` (an immutable
/// consistent cut at a fixed epoch; reads need no lock at all). Query
/// execution is written against this interface so the same engine serves
/// embedded single-threaded use and MVCC snapshot reads.
class ReadView {
 public:
  virtual ~ReadView() = default;

  /// Epoch this view observes. For the live database it is the current
  /// epoch (moving); for a snapshot it is the epoch of the cut (fixed).
  virtual std::uint64_t epoch() const = 0;

  /// Largest index `dirty_epoch` this view may consume (see
  /// `IndexManager::Lookup`'s `as_of`). The live database accepts any
  /// index state (`UINT64_MAX`); a snapshot accepts only indexes untouched
  /// since its epoch.
  virtual std::uint64_t index_epoch_ceiling() const = 0;

  // ---------------------------------------------------------------- schema
  virtual const ClassDef* FindClass(std::string_view name) const = 0;
  virtual const RelationshipDef* FindRelationship(
      std::string_view name) const = 0;
  virtual std::vector<const ClassDef*> classes() const = 0;
  virtual std::vector<const RelationshipDef*> relationships() const = 0;

  // --------------------------------------------------------------- objects
  virtual Result<Value> GetAttribute(Oid oid, const std::string& name)
      const = 0;
  virtual const Object* GetObject(Oid oid) const = 0;
  virtual bool IsInstanceOf(Oid oid, std::string_view class_name) const = 0;
  virtual std::vector<Oid> Extent(const std::string& class_name,
                                  bool include_subclasses = true) const = 0;
  virtual std::size_t object_count() const = 0;

  // ----------------------------------------------------------------- links
  virtual Result<Value> GetLinkAttribute(Oid oid, const std::string& name)
      const = 0;
  virtual const Link* GetLink(Oid oid) const = 0;
  virtual std::vector<Oid> LinkExtent(
      const std::string& rel_name,
      bool include_subrelationships = true) const = 0;
  virtual const std::vector<Oid>& LinksInContext(Oid context) const = 0;
  virtual std::size_t link_count() const = 0;

  // ------------------------------------------------------------- traversal
  virtual std::vector<Oid> IncidentLinks(Oid oid, Direction dir,
                                         const RelationshipDef* def = nullptr,
                                         Oid context = kNullOid) const = 0;
  virtual std::vector<Oid> Neighbors(Oid oid, const std::string& rel_name,
                                     Direction dir = Direction::kOut,
                                     Oid context = kNullOid) const = 0;
  virtual Result<std::vector<Oid>> Traverse(Oid start,
                                            const std::string& rel_name,
                                            std::uint32_t min_depth,
                                            std::uint32_t max_depth,
                                            Direction dir = Direction::kOut,
                                            Oid context = kNullOid) const = 0;

  // -------------------------------------------------------------- synonyms
  virtual bool AreSynonyms(Oid a, Oid b) const = 0;
  virtual Oid CanonicalOf(Oid oid) const = 0;
  virtual std::vector<Oid> SynonymSet(Oid oid) const = 0;
};

namespace internal {
/// The view the current thread's query execution reads through. Set by
/// `ScopedReadView` (the server installs the request's pinned snapshot
/// before calling the engine); null means "read the live database".
inline thread_local const ReadView* g_current_read_view = nullptr;
}  // namespace internal

/// The thread's active read view, or null when execution should fall back
/// to the live database (embedded mode, writer-thread rule callbacks).
inline const ReadView* CurrentReadView() {
  return internal::g_current_read_view;
}

/// RAII installer for the thread's read view. Nests: the previous view is
/// restored on destruction.
class ScopedReadView {
 public:
  explicit ScopedReadView(const ReadView* view)
      : prev_(internal::g_current_read_view) {
    internal::g_current_read_view = view;
  }
  ~ScopedReadView() { internal::g_current_read_view = prev_; }

  ScopedReadView(const ScopedReadView&) = delete;
  ScopedReadView& operator=(const ScopedReadView&) = delete;

 private:
  const ReadView* prev_;
};

}  // namespace prometheus

#endif  // PROMETHEUS_CORE_READ_VIEW_H_
