#ifndef PROMETHEUS_TAXONOMY_REPORT_H_
#define PROMETHEUS_TAXONOMY_REPORT_H_

#include <string>

#include "common/result.h"
#include "taxonomy/taxonomy_db.h"

namespace prometheus::taxonomy {

/// Human-readable reports over a taxonomic database — the working-practice
/// outputs taxonomists otherwise compile by hand on "several sheets of
/// paper" (thesis 1.1): classification trees, nomenclature dossiers and
/// cross-classification synonymy overviews.

/// Renders a classification as an indented tree. Each taxon line shows
/// rank, working name, and ascribed/calculated name when present;
/// specimens appear as leaf entries with collector and sheet number.
/// Multi-rooted and overlapping structures render every root.
Result<std::string> RenderClassificationTree(const TaxonomyDatabase& tdb,
                                             Oid classification);

/// Renders the nomenclatural dossier of a name: full name, rank, status,
/// publication, placement chain, taxonomic types (with kinds) and the
/// names it typifies.
Result<std::string> RenderNameDossier(const TaxonomyDatabase& tdb, Oid name);

/// Renders a synonymy overview between two classifications: for each
/// internal group of the first, its best-aligned group of the second with
/// the overlap class (full / pro parte / none) and similarity.
Result<std::string> RenderSynonymyReport(const TaxonomyDatabase& tdb,
                                         Oid classification_a,
                                         Oid classification_b);

}  // namespace prometheus::taxonomy

#endif  // PROMETHEUS_TAXONOMY_REPORT_H_
