# Empty compiler generated dependencies file for prometheus_views.
# This may be replaced when dependencies are built.
