#ifndef PROMETHEUS_CORE_SNAPSHOT_H_
#define PROMETHEUS_CORE_SNAPSHOT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/oid.h"
#include "common/result.h"
#include "common/value.h"
#include "core/instance.h"
#include "core/oid_trie.h"
#include "core/read_view.h"
#include "core/schema.h"

namespace prometheus {

class Database;

namespace mvcc {
namespace internal {
// Version/snapshot accounting. Deliberately *not* behind the
// `obs::MetricsEnabled()` kill switch: tests assert GC behaviour
// (superseded versions actually freed) with metrics off, and two relaxed
// counters cost nothing measurable. The same numbers are mirrored into the
// `mvcc_*` gauges for /debug/contention and /metrics.
extern std::atomic<std::uint64_t> g_retained_versions;
extern std::atomic<std::uint64_t> g_live_snapshots;
}  // namespace internal

/// Object/link versions currently alive (live store + every version kept
/// alive only by a published or pinned snapshot).
inline std::uint64_t RetainedVersions() {
  return internal::g_retained_versions.load(std::memory_order_relaxed);
}

/// DbSnapshot instances currently alive (the published one + pinned ones).
inline std::uint64_t LiveSnapshots() {
  return internal::g_live_snapshots.load(std::memory_order_relaxed);
}

/// Deep-copies `src` into a counted immutable version. The custom deleter
/// decrements the retained-version count, so `RetainedVersions()` tracks
/// exactly the versions still reachable from some snapshot — the number GC
/// (snapshot release dropping the last reference) must drive back down.
template <typename T>
std::shared_ptr<const T> MakeVersion(const T& src) {
  internal::g_retained_versions.fetch_add(1, std::memory_order_relaxed);
  return std::shared_ptr<const T>(new T(src), [](const T* p) {
    internal::g_retained_versions.fetch_sub(1, std::memory_order_relaxed);
    delete p;
  });
}
}  // namespace mvcc

/// Immutable schema tables of one snapshot: name→definition maps plus the
/// *copied* children adjacency (`subclasses`/`subrels`). The copies matter:
/// the live `ClassDef::subclasses_` / `RelationshipDef::subs_` vectors are
/// appended to by later DDL, so a snapshot's extent BFS must not read them.
/// Everything else on a definition (name, supers, attributes, semantics,
/// endpoints) is frozen once defined and safely shared.
///
/// The keep-alive vectors pin the definition objects themselves so object
/// versions retained by old snapshots keep valid `cls`/`def` pointers even
/// across `Database::Clear()` (follower rebootstrap).
struct SchemaTables {
  std::unordered_map<std::string, const ClassDef*> classes_by_name;
  std::unordered_map<std::string, const RelationshipDef*> rels_by_name;
  std::vector<const ClassDef*> classes_in_order;
  std::vector<const RelationshipDef*> rels_in_order;
  std::unordered_map<const ClassDef*, std::vector<const ClassDef*>>
      subclasses;
  std::unordered_map<const RelationshipDef*,
                     std::vector<const RelationshipDef*>>
      subrels;
  std::vector<std::shared_ptr<const ClassDef>> class_keep_alive;
  std::vector<std::shared_ptr<const RelationshipDef>> rel_keep_alive;
};

/// A consistent immutable cut of the whole database at one epoch. Readers
/// traverse it with **no lock of any kind**: every container reachable from
/// here is frozen at publish time, and structure shared with newer versions
/// is copy-on-write (`OidTrie` path copying, per-extent vector replacement).
///
/// Built and published by `Database` at the end of every write section;
/// acquired by readers as a `SnapshotHandle`. All `ReadView` methods give
/// exactly the answers the live database would have given at `epoch()`.
class DbSnapshot final : public ReadView {
 public:
  ~DbSnapshot() override;

  DbSnapshot& operator=(const DbSnapshot&) = delete;

  std::uint64_t epoch() const override { return epoch_; }
  std::uint64_t index_epoch_ceiling() const override { return epoch_; }

  const ClassDef* FindClass(std::string_view name) const override;
  const RelationshipDef* FindRelationship(
      std::string_view name) const override;
  std::vector<const ClassDef*> classes() const override;
  std::vector<const RelationshipDef*> relationships() const override;

  Result<Value> GetAttribute(Oid oid, const std::string& name) const override;
  const Object* GetObject(Oid oid) const override;
  bool IsInstanceOf(Oid oid, std::string_view class_name) const override;
  std::vector<Oid> Extent(const std::string& class_name,
                          bool include_subclasses = true) const override;
  std::size_t object_count() const override { return live_objects_; }

  Result<Value> GetLinkAttribute(Oid oid,
                                 const std::string& name) const override;
  const Link* GetLink(Oid oid) const override;
  std::vector<Oid> LinkExtent(const std::string& rel_name,
                              bool include_subrelationships = true)
      const override;
  const std::vector<Oid>& LinksInContext(Oid context) const override;
  std::size_t link_count() const override { return live_links_; }

  std::vector<Oid> IncidentLinks(Oid oid, Direction dir,
                                 const RelationshipDef* def = nullptr,
                                 Oid context = kNullOid) const override;
  std::vector<Oid> Neighbors(Oid oid, const std::string& rel_name,
                             Direction dir = Direction::kOut,
                             Oid context = kNullOid) const override;
  Result<std::vector<Oid>> Traverse(Oid start, const std::string& rel_name,
                                    std::uint32_t min_depth,
                                    std::uint32_t max_depth,
                                    Direction dir = Direction::kOut,
                                    Oid context = kNullOid) const override;

  bool AreSynonyms(Oid a, Oid b) const override;
  Oid CanonicalOf(Oid oid) const override;
  std::vector<Oid> SynonymSet(Oid oid) const override;

 private:
  friend class Database;

  DbSnapshot();
  /// Incremental build: the next snapshot starts as an O(1) structural
  /// share of the previous one; the writer then replaces only what a dirty
  /// set names.
  DbSnapshot(const DbSnapshot& prev);

  const std::vector<const ClassDef*>* SubclassesOf(const ClassDef* c) const;
  const std::vector<const RelationshipDef*>* SubrelsOf(
      const RelationshipDef* d) const;

  std::uint64_t epoch_ = 0;

  // Record versions (deep copies of live Object/Link state, shared across
  // consecutive snapshots until superseded).
  OidTrie<Object> objects_;
  OidTrie<Link> links_;

  // Secondary structures: whole-vector replacement on change, shared
  // otherwise. Absent key == empty.
  std::unordered_map<const ClassDef*, std::shared_ptr<const std::vector<Oid>>>
      extents_;
  std::unordered_map<const RelationshipDef*,
                     std::shared_ptr<const std::vector<Oid>>>
      link_extents_;
  std::unordered_map<Oid, std::shared_ptr<const std::vector<Oid>>>
      context_index_;

  std::shared_ptr<const std::unordered_map<Oid, Oid>> synonym_parent_;
  std::shared_ptr<const SchemaTables> schema_;

  std::size_t live_objects_ = 0;
  std::size_t live_links_ = 0;
};

/// Move-only RAII pin of one snapshot. While alive, the snapshot (and every
/// version it reaches) is retained and the database's GC watermark
/// (`mvcc_oldest_snapshot_epoch`) cannot advance past its epoch.
/// Destruction unpins; versions whose last reference this was are freed on
/// the spot (shared_ptr reclamation — there is no separate GC thread).
class SnapshotHandle {
 public:
  SnapshotHandle() = default;
  SnapshotHandle(SnapshotHandle&& other) noexcept
      : snap_(std::move(other.snap_)), db_(other.db_) {
    other.db_ = nullptr;
  }
  SnapshotHandle& operator=(SnapshotHandle&& other) noexcept {
    if (this != &other) {
      Release();
      snap_ = std::move(other.snap_);
      db_ = other.db_;
      other.db_ = nullptr;
    }
    return *this;
  }
  ~SnapshotHandle() { Release(); }

  SnapshotHandle(const SnapshotHandle&) = delete;
  SnapshotHandle& operator=(const SnapshotHandle&) = delete;

  const DbSnapshot& operator*() const { return *snap_; }
  const DbSnapshot* operator->() const { return snap_.get(); }
  const DbSnapshot* get() const { return snap_.get(); }
  explicit operator bool() const { return snap_ != nullptr; }

  /// Shares ownership of the snapshot beyond the handle (e.g. a cache entry
  /// that outlives the request). The shared copy retains versions but does
  /// not hold the pin-registry entry — the watermark follows handles only.
  std::shared_ptr<const DbSnapshot> shared() const { return snap_; }

 private:
  friend class Database;
  SnapshotHandle(std::shared_ptr<const DbSnapshot> snap, Database* db)
      : snap_(std::move(snap)), db_(db) {}

  void Release();

  std::shared_ptr<const DbSnapshot> snap_;
  Database* db_ = nullptr;
};

}  // namespace prometheus

#endif  // PROMETHEUS_CORE_SNAPSHOT_H_
