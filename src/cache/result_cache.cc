#include "cache/result_cache.h"

#include <functional>
#include <utility>

#include "obs/metrics.h"

namespace prometheus::cache {

namespace {

/// obs mirrors of the result tier's counters (see PlanMetrics in
/// plan_cache.cc for the split between these and the internal atomics).
struct ResultMetrics {
  obs::Counter* hits;
  obs::Counter* misses;
  obs::Counter* inserts;
  obs::Counter* evictions;
  obs::Counter* invalidations;
  obs::Gauge* entries;
  obs::Gauge* bytes;
  obs::Gauge* hit_rate;

  static const ResultMetrics& Get() {
    static const ResultMetrics m = [] {
      obs::MetricsRegistry& reg = obs::Registry();
      ResultMetrics rm;
      rm.hits = reg.GetCounter(
          "cache_result_hits_total",
          "Queries answered from the result cache (no guard, no execution)");
      rm.misses = reg.GetCounter("cache_result_misses_total",
                                 "Result-cache lookups that executed");
      rm.inserts = reg.GetCounter("cache_result_inserts_total",
                                  "Results materialized into the cache");
      rm.evictions = reg.GetCounter(
          "cache_result_evictions_total",
          "Cached results evicted by the LRU byte budget");
      rm.invalidations = reg.GetCounter(
          "cache_result_invalidations_total",
          "Cached results dropped stale (database epoch moved)");
      rm.entries =
          reg.GetGauge("cache_result_entries", "Results currently cached");
      rm.bytes = reg.GetGauge("cache_result_bytes",
                              "Approximate bytes held by the result cache");
      rm.hit_rate = reg.GetGauge(
          "cache_result_hit_rate_percent",
          "Result-cache hits as a percentage of lookups since start");
      return rm;
    }();
    return m;
  }
};

}  // namespace

ResultCache::ResultCache(const Config& config)
    : max_bytes_(config.max_bytes),
      per_shard_bytes_(config.max_bytes /
                       (config.shards == 0 ? 1 : config.shards)),
      max_entry_bytes_(config.max_entry_bytes),
      enabled_(config.enabled) {
  const std::size_t n = config.shards == 0 ? 1 : config.shards;
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ResultCache::Shard& ResultCache::ShardFor(const std::string& text) {
  return *shards_[std::hash<std::string>{}(text) % shards_.size()];
}

void ResultCache::RecordHitRate() {
  const std::uint64_t h = hits_.load(std::memory_order_relaxed);
  const std::uint64_t m = misses_.load(std::memory_order_relaxed);
  if (h + m == 0) return;
  ResultMetrics::Get().hit_rate->Set(
      static_cast<std::int64_t>((100 * h) / (h + m)));
}

std::shared_ptr<const pool::ResultSet> ResultCache::Lookup(
    const std::string& text, std::uint64_t epoch) {
  if (!enabled()) return nullptr;
  const ResultMetrics& metrics = ResultMetrics::Get();
  Shard& shard = ShardFor(text);
  std::shared_ptr<const pool::ResultSet> found;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(text);
    if (it != shard.entries.end()) {
      if (it->second.epoch == epoch) {
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
        found = it->second.rows;
      } else {
        // A write section completed since this result was built; the
        // lookup that discovers it pays the erase.
        const std::size_t stale_bytes = it->second.bytes;
        shard.bytes -= stale_bytes;
        shard.lru.erase(it->second.lru_it);
        shard.entries.erase(it);
        invalidations_.fetch_add(1, std::memory_order_relaxed);
        metrics.invalidations->Increment();
        metrics.entries->Sub(1);
        metrics.bytes->Sub(static_cast<std::int64_t>(stale_bytes));
      }
    }
  }
  if (found != nullptr) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    metrics.hits->Increment();
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
    metrics.misses->Increment();
  }
  RecordHitRate();
  return found;
}

void ResultCache::Insert(const std::string& text, std::uint64_t epoch,
                         std::shared_ptr<const pool::ResultSet> rows,
                         std::size_t bytes) {
  if (!enabled() || rows == nullptr || max_bytes_ == 0) return;
  if (bytes > max_entry_bytes_ || bytes > per_shard_bytes_) {
    oversize_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const ResultMetrics& metrics = ResultMetrics::Get();
  Shard& shard = ShardFor(text);
  std::int64_t entries_delta = 0;
  std::int64_t bytes_delta = 0;
  std::uint64_t evicted = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(text);
    if (it != shard.entries.end()) {
      // Replace in place (a fresher epoch, or a racing twin of the same
      // miss — identical content either way).
      shard.bytes -= it->second.bytes;
      bytes_delta -= static_cast<std::int64_t>(it->second.bytes);
      it->second.rows = std::move(rows);
      it->second.epoch = epoch;
      it->second.bytes = bytes;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
    } else {
      shard.lru.push_front(text);
      shard.entries.emplace(
          text, Entry{std::move(rows), epoch, bytes, shard.lru.begin()});
      ++entries_delta;
    }
    shard.bytes += bytes;
    bytes_delta += static_cast<std::int64_t>(bytes);
    while (shard.bytes > per_shard_bytes_ && !shard.lru.empty()) {
      auto victim = shard.entries.find(shard.lru.back());
      shard.bytes -= victim->second.bytes;
      bytes_delta -= static_cast<std::int64_t>(victim->second.bytes);
      shard.entries.erase(victim);
      shard.lru.pop_back();
      --entries_delta;
      ++evicted;
    }
  }
  inserts_.fetch_add(1, std::memory_order_relaxed);
  metrics.inserts->Increment();
  if (evicted > 0) {
    evictions_.fetch_add(evicted, std::memory_order_relaxed);
    metrics.evictions->Increment(evicted);
  }
  metrics.entries->Add(entries_delta);
  metrics.bytes->Add(bytes_delta);
}

void ResultCache::Clear() {
  const ResultMetrics& metrics = ResultMetrics::Get();
  std::int64_t entries_delta = 0;
  std::int64_t bytes_delta = 0;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    entries_delta -= static_cast<std::int64_t>(shard->entries.size());
    bytes_delta -= static_cast<std::int64_t>(shard->bytes);
    shard->entries.clear();
    shard->lru.clear();
    shard->bytes = 0;
  }
  metrics.entries->Add(entries_delta);
  metrics.bytes->Add(bytes_delta);
}

void ResultCache::set_enabled(bool on) {
  enabled_.store(on, std::memory_order_release);
}

ResultCache::Stats ResultCache::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.inserts = inserts_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.invalidations = invalidations_.load(std::memory_order_relaxed);
  s.oversize = oversize_.load(std::memory_order_relaxed);
  s.shards = shards_.size();
  s.max_bytes = max_bytes_;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    s.entries += shard->entries.size();
    s.bytes += shard->bytes;
  }
  if (s.hits + s.misses > 0) {
    s.hit_rate_percent =
        100.0 * static_cast<double>(s.hits) /
        static_cast<double>(s.hits + s.misses);
  }
  return s;
}

}  // namespace prometheus::cache
