// Ablation — storage substrate throughput: snapshot save/load and journal
// write/replay over OO7-shaped databases. Expected shape: snapshot cost is
// linear in database size; journal appends add a small constant per
// mutation; replay costs roughly one Create* call per record.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <sstream>

#include "bench_util.h"
#include "oo7/oo7.h"
#include "storage/journal.h"
#include "storage/snapshot.h"

namespace {

using prometheus::Database;
using prometheus::oo7::Config;
using prometheus::oo7::PrometheusOo7;

Config MakeConfig(int composites) {
  Config config;
  config.composite_parts = composites;
  config.assembly_levels = 4;
  return config;
}

void PrintSeries() {
  prometheus::bench::PrintTableHeader(
      "Ablation: storage substrate (snapshot & journal)",
      "  comps  objects  links   save_ms   load_ms   journal_ms  replay_ms");
  for (int comps : {10, 40}) {
    Config config = MakeConfig(comps);
    PrometheusOo7 prom(config);
    Database& db = prom.db();

    std::string snapshot_text;
    double save_ms = prometheus::bench::MedianMillis(
        [&] {
          std::ostringstream out;
          benchmark::DoNotOptimize(
              prometheus::storage::SaveSnapshot(db, out).ok());
          snapshot_text = out.str();
        },
        3);
    double load_ms = prometheus::bench::MedianMillis(
        [&] {
          Database fresh;
          std::istringstream in(snapshot_text);
          benchmark::DoNotOptimize(
              prometheus::storage::LoadSnapshot(&fresh, in).ok());
        },
        3);
    // Journal: time only the journalled S1 workload (database build and
    // journal open are outside the timed region).
    const std::string journal_path = "/tmp/prometheus_bench_journal.log";
    double journal_ms;
    {
      std::vector<double> samples;
      for (int rep = 0; rep < 3; ++rep) {
        PrometheusOo7 tmp(config);
        auto journal =
            prometheus::storage::Journal::Open(&tmp.db(), journal_path);
        samples.push_back(prometheus::bench::MedianMillis(
            [&] { benchmark::DoNotOptimize(tmp.InsertS1(5).ok()); }, 1));
      }
      std::sort(samples.begin(), samples.end());
      journal_ms = samples[samples.size() / 2];
    }
    double replay_ms = prometheus::bench::MedianMillis(
        [&] {
          Database fresh;
          benchmark::DoNotOptimize(
              prometheus::storage::Journal::Replay(&fresh, journal_path)
                  .ok());
        },
        3);
    std::printf("  %5d  %7zu  %5zu   %7.3f   %7.3f   %9.3f  %8.3f\n", comps,
                db.object_count(), db.link_count(), save_ms, load_ms,
                journal_ms, replay_ms);
  }
}

void BM_SnapshotSave(benchmark::State& state) {
  PrometheusOo7 prom(MakeConfig(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    std::ostringstream out;
    benchmark::DoNotOptimize(
        prometheus::storage::SaveSnapshot(prom.db(), out).ok());
  }
}
BENCHMARK(BM_SnapshotSave)->Arg(10)->Arg(40)->Unit(benchmark::kMillisecond);

void BM_SnapshotLoad(benchmark::State& state) {
  PrometheusOo7 prom(MakeConfig(static_cast<int>(state.range(0))));
  std::ostringstream out;
  (void)prometheus::storage::SaveSnapshot(prom.db(), out);
  std::string text = out.str();
  for (auto _ : state) {
    Database fresh;
    std::istringstream in(text);
    benchmark::DoNotOptimize(
        prometheus::storage::LoadSnapshot(&fresh, in).ok());
  }
}
BENCHMARK(BM_SnapshotLoad)->Arg(10)->Arg(40)->Unit(benchmark::kMillisecond);

void BM_JournalledCreate(benchmark::State& state) {
  // Per-object creation cost with (1) / without (0) a journal attached.
  Database db;
  prometheus::AttributeDef attr;
  attr.name = "n";
  attr.type = prometheus::ValueType::kInt;
  (void)db.DefineClass("Node", {}, {attr});
  std::unique_ptr<prometheus::storage::Journal> journal;
  if (state.range(0) == 1) {
    auto opened = prometheus::storage::Journal::Open(
        &db, "/tmp/prometheus_bench_journal2.log");
    if (opened.ok()) journal = std::move(opened).value();
  }
  std::int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        db.CreateObject("Node", {{"n", prometheus::Value::Int(i++)}}).ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_JournalledCreate)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  PrintSeries();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
