#ifndef PROMETHEUS_QUERY_SYSTEM_CATALOG_H_
#define PROMETHEUS_QUERY_SYSTEM_CATALOG_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/value.h"

namespace prometheus::pool {

/// The virtual system catalog: a family of read-only `sys.*` classes whose
/// extents are materialized on demand from live server state instead of
/// stored objects. The query engine treats a registered catalog class like
/// any other extent — predicates, joins, sorting, projection and PROFILE all
/// work — except that rows are `Value` structs (there are no Oids to hand
/// out), no index ever applies, and results are excluded from the result
/// cache (they describe a moving target, not an epoch-stable database
/// state).
///
/// Providers are plain closures registered once at server construction, so
/// this module stays dependency-light: it knows nothing about the obs /
/// cache / replication layers it ends up describing. Materialization happens
/// at most once per query execution (the engine installs a per-query scope),
/// which is what makes a self-join of `sys.requests` against itself — or a
/// join against a real taxon extent — see one consistent point-in-time row
/// set.
class SystemCatalog {
 public:
  using Provider = std::function<std::vector<Value>()>;

  struct ClassInfo {
    std::string name;                     // "sys.metrics"
    std::string help;                     // one-line description
    std::vector<std::string> attributes;  // field names, declaration order
  };

  /// True for any name in the reserved `sys.` namespace, registered or not.
  static bool IsCatalogName(const std::string& name);

  /// Registers a catalog class. Not thread-safe: call during single-threaded
  /// server construction, before any query runs.
  void Register(std::string name, std::string help,
                std::vector<std::string> attributes, Provider provider);

  bool Has(const std::string& name) const;

  /// Runs the provider and returns the materialized rows. Returns an empty
  /// vector for unregistered names.
  std::vector<Value> Materialize(const std::string& name) const;

  /// Registered classes in registration order (used by `sys.catalog` and the
  /// shell's `.sys` listing).
  const std::vector<ClassInfo>& ListClasses() const { return infos_; }

 private:
  struct Entry {
    ClassInfo info;
    Provider provider;
  };
  std::vector<Entry> entries_;
  std::vector<ClassInfo> infos_;
};

/// Returns true when the query text references the `sys.` namespace outside
/// a string literal (case-insensitive). The server uses this to bypass the
/// result cache for catalog queries; a false positive only costs a cache
/// bypass, never a wrong answer.
bool QueryTouchesCatalog(const std::string& text);

/// Lock-free per-class heat counters maintained inline in the engine's
/// scan and index paths. `sys.storage` snapshots them so the future
/// partition planner has per-extent evidence (which classes are scanned hot,
/// which are served by indexes). Counters are cumulative since process
/// start; relaxed atomics are fine because rows are advisory statistics.
class ExtentHeat {
 public:
  struct Counters {
    std::string class_name;
    std::uint64_t scans = 0;         // full extent scans
    std::uint64_t index_hits = 0;    // index-served range resolutions
    std::uint64_t rows_scanned = 0;  // candidate rows produced by scans
  };

  static ExtentHeat& Instance();

  void RecordScan(const std::string& class_name, std::uint64_t rows);
  void RecordIndexHit(const std::string& class_name, std::uint64_t rows);

  /// Point-in-time copy of every tracked class's counters.
  std::vector<Counters> Snapshot() const;

 private:
  // Fixed-size open hash table of heap-allocated slots published with a CAS;
  // slots are never removed or resized (the class universe is small), so
  // readers need no locks and writers only race on first-touch publication.
  struct Slot {
    std::string name;
    std::atomic<std::uint64_t> scans{0};
    std::atomic<std::uint64_t> index_hits{0};
    std::atomic<std::uint64_t> rows_scanned{0};
  };

  static constexpr std::size_t kSlots = 512;

  Slot* FindOrInsert(const std::string& class_name);

  std::atomic<Slot*> slots_[kSlots] = {};
};

}  // namespace prometheus::pool

#endif  // PROMETHEUS_QUERY_SYSTEM_CATALOG_H_
