file(REMOVE_RECURSE
  "CMakeFiles/prometheus_oo7.dir/oo7.cc.o"
  "CMakeFiles/prometheus_oo7.dir/oo7.cc.o.d"
  "libprometheus_oo7.a"
  "libprometheus_oo7.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prometheus_oo7.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
