// What-if scenarios and the constraint machinery (thesis 7.1.3.2 and
// 7.1.4): ICBN rules vetoing invalid nomenclature, an interactive rule
// consulting the taxonomist, PCL-defined constraints, a speculative
// re-classification run inside a transaction and rolled back, and a
// snapshot round-trip through the storage substrate.

#include <cstdio>

#include "rules/pcl.h"
#include "storage/snapshot.h"
#include "taxonomy/synthetic.h"
#include "taxonomy/taxonomy_db.h"

using namespace prometheus;
using namespace prometheus::taxonomy;

namespace {

void Check(const Status& st, const char* what) {
  if (!st.ok()) {
    std::printf("FAILED %s: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  TaxonomyDatabase tdb;
  Check(tdb.InstallIcbnRules(), "install ICBN rules");

  // --- Rules in action -------------------------------------------------
  std::printf("--- ICBN rules ---\n");
  Status bad_family =
      tdb.PublishName("Apium", Rank::kFamilia, "L.", 1753).status();
  std::printf("family without -aceae: %s\n", bad_family.ToString().c_str());
  Status bad_genus =
      tdb.PublishName("apium", Rank::kGenus, "L.", 1753).status();
  std::printf("lowercase genus:       %s\n", bad_genus.ToString().c_str());

  // Interactive rules (thesis 5.2.1.4): the taxonomist may knowingly
  // override. Here the handler allows one historical exception.
  Check(InstallPcl(&tdb.rules(),
                   "context NomenclaturalTaxon interactive inv "
                   "post_linnaean: self.year >= 1753")
            .status(),
        "install interactive rule");
  tdb.rules().set_interactive_handler([](const RuleViolation& v) {
    std::printf("  interactive rule '%s' fired -> taxonomist allows it\n",
                v.rule_name.c_str());
    return true;  // allow
  });
  Status pre_linnaean =
      tdb.PublishName("Vetustum", Rank::kGenus, "Anon.", 1700).status();
  std::printf("pre-Linnaean name allowed interactively: %s\n",
              pre_linnaean.ToString().c_str());

  // --- What-if scenario -------------------------------------------------
  std::printf("\n--- what-if: speculative revision ---\n");
  FloraConfig config;
  config.families = 1;
  config.genera_per_family = 3;
  config.species_per_genus = 4;
  config.specimens_per_species = 3;
  TaxonomyDatabase flora_db;  // fresh database without the strict rules
  auto flora = GenerateFlora(&flora_db, config);
  Check(flora.status(), "generate flora");
  auto revision = GenerateRevision(&flora_db, flora.value(), 2, 7);
  Check(revision.status(), "generate revision");

  Database& db = flora_db.db();
  std::size_t names_before = db.Extent(kNameClass).size();
  Check(db.Begin(), "begin what-if");
  Check(flora_db.DeriveAllNames(revision.value(), "Reviser", 2001),
        "derive speculative names");
  std::printf("speculative names for the revised genera:\n");
  for (Oid root : flora_db.classifications().Roots(revision.value())) {
    Oid name = flora_db.CalculatedNameOf(root);
    if (name != kNullOid) {
      std::printf("  %s\n", flora_db.FullName(name).value().c_str());
    }
  }
  Check(db.Abort(), "abort what-if");
  std::printf("after abort: %zu names (was %zu) — nothing was published\n",
              db.Extent(kNameClass).size(), names_before);

  // --- Persistence ------------------------------------------------------
  std::printf("\n--- snapshot round-trip ---\n");
  const std::string path = "/tmp/prometheus_whatif.pdb";
  Check(storage::SaveSnapshot(db, path), "save snapshot");
  Database loaded;
  Check(storage::LoadSnapshot(&loaded, path), "load snapshot");
  std::printf("restored %zu objects and %zu links from %s\n",
              loaded.object_count(), loaded.link_count(), path.c_str());

  std::printf("whatif_and_rules OK\n");
  return 0;
}
