#include "server/client.h"

#include <algorithm>
#include <random>
#include <thread>
#include <utility>

namespace prometheus::server {

namespace {

/// Full-jitter backoff before retry `attempt` (1-based): uniform in
/// [0, min(initial * multiplier^(attempt-1), max)].
std::chrono::microseconds JitteredBackoff(const RetryPolicy& policy,
                                          int attempt) {
  double ceiling = static_cast<double>(policy.initial_backoff.count());
  for (int i = 1; i < attempt; ++i) ceiling *= policy.multiplier;
  ceiling = std::min(ceiling, static_cast<double>(policy.max_backoff.count()));
  if (ceiling <= 0) return std::chrono::microseconds(0);
  thread_local std::mt19937_64 rng{std::random_device{}()};
  std::uniform_real_distribution<double> dist(0.0, ceiling);
  return std::chrono::microseconds(static_cast<std::int64_t>(dist(rng)));
}

}  // namespace

Client::Client(Server* server)
    : server_(server), session_(server->Connect()) {}

Client::~Client() { server_->sessions().Close(session_->id()); }

Status Client::TransportStatus(const Response& resp) {
  // For executed requests the database-level status is authoritative; for
  // rejected / shutdown requests the server already phrased the transport
  // failure as a Status.
  return resp.status;
}

Result<pool::ResultSet> Client::Query(const std::string& pool_text) {
  Response resp = Call(Request::Query(pool_text));
  if (!resp.ok()) return TransportStatus(resp);
  return std::move(resp.result);
}

Result<Oid> Client::CreateObject(std::string class_name,
                                 std::vector<AttrInit> inits) {
  Response resp =
      Call(Request::CreateObject(std::move(class_name), std::move(inits)));
  if (!resp.ok()) return TransportStatus(resp);
  return resp.oid;
}

Status Client::SetAttribute(Oid oid, std::string attribute, Value value) {
  return TransportStatus(
      Call(Request::SetAttribute(oid, std::move(attribute), std::move(value))));
}

Status Client::DeleteObject(Oid oid) {
  return TransportStatus(Call(Request::DeleteObject(oid)));
}

Result<Oid> Client::CreateLink(std::string rel_name, Oid source, Oid dest,
                               Oid context, std::vector<AttrInit> inits) {
  Response resp = Call(Request::CreateLink(std::move(rel_name), source, dest,
                                           context, std::move(inits)));
  if (!resp.ok()) return TransportStatus(resp);
  return resp.oid;
}

Status Client::SetLinkAttribute(Oid oid, std::string attribute, Value value) {
  return TransportStatus(Call(
      Request::SetLinkAttribute(oid, std::move(attribute), std::move(value))));
}

Status Client::DeleteLink(Oid oid) {
  return TransportStatus(Call(Request::DeleteLink(oid)));
}

Status Client::Mutate(std::function<Status(Database&)> fn) {
  return TransportStatus(Call(Request::Custom(std::move(fn))));
}

Result<std::uint64_t> Client::Ping() {
  Response resp = Call(Request::Ping());
  if (!resp.ok()) return TransportStatus(resp);
  return resp.epoch;
}

Result<std::string> Client::Stats(StatsFormat format) {
  Response resp = Call(Request::Stats(format));
  if (!resp.ok()) return TransportStatus(resp);
  return std::move(resp.text);
}

Result<std::string> Client::Health() {
  Response resp = Call(Request::Health());
  if (!resp.ok()) return TransportStatus(resp);
  return std::move(resp.text);
}

Server::Health Client::HealthInfo() { return server_->health(); }

Status Client::Checkpoint() {
  return TransportStatus(Call(Request::Checkpoint()));
}

bool Client::Retryable(const Response& resp) {
  if (resp.code == ResponseCode::kRejected) return true;
  // Timed out before a worker picked it up: provably never ran. A request
  // that timed out *during* execution is final — a mutation may have
  // partially applied, and a fresh attempt would expire immediately
  // against the same absolute deadline anyway.
  return resp.code == ResponseCode::kTimedOut && !resp.executed;
}

Response Client::CallWithRetry(Request req, const RetryPolicy& policy) {
  // Pin a trace id before the loop: every attempt then submits under the
  // same id, so the flight recorder shows one logical request's retries as
  // one trace instead of N unrelated ones. (The server would otherwise
  // stamp each resubmission afresh.)
  if (req.trace_id.empty()) {
    thread_local std::mt19937_64 trace_rng{std::random_device{}()};
    req.trace_id = "retry-" + std::to_string(trace_rng());
  }
  const auto start = DeadlineClock::now();
  for (int attempt = 1;; ++attempt) {
    Response resp = Call(req);  // copy: each attempt submits afresh
    if (!Retryable(resp) || attempt >= policy.max_attempts) return resp;
    const auto backoff = JitteredBackoff(policy, attempt);
    const auto resume = DeadlineClock::now() + backoff;
    // The retry budget and the request's own deadline both bound the
    // retrying; give up (returning the last outcome) rather than submit a
    // request that cannot finish in time.
    if (resume - start > policy.budget) return resp;
    if (req.deadline != kNoDeadline && resume >= req.deadline) return resp;
    std::this_thread::sleep_for(backoff);
  }
}

Result<pool::ResultSet> Client::QueryWithRetry(const std::string& pool_text,
                                               const RetryPolicy& policy) {
  Response resp = CallWithRetry(Request::Query(pool_text), policy);
  if (!resp.ok()) return TransportStatus(resp);
  return std::move(resp.result);
}

Result<Client::ProfiledQuery> Client::Profile(const std::string& pool_text) {
  std::string query = pool::IsProfileQuery(pool_text)
                          ? pool_text
                          : "profile " + pool_text;
  Response resp = Call(Request::Query(std::move(query)));
  if (!resp.ok()) return TransportStatus(resp);
  ProfiledQuery out;
  out.stages = std::move(resp.result);
  out.tree = std::move(resp.text);
  return out;
}

Response Client::Call(Request req) { return session_->Call(std::move(req)); }

std::future<Response> Client::Submit(Request req) {
  return session_->Submit(std::move(req));
}

}  // namespace prometheus::server
