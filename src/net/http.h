#ifndef PROMETHEUS_NET_HTTP_H_
#define PROMETHEUS_NET_HTTP_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace prometheus::net {

/// Hard caps on what the parser will buffer — a remote peer can never make
/// the front-end allocate more than these, whatever it sends.
struct HttpLimits {
  std::size_t max_request_line = 8 * 1024;  ///< method + target + version
  std::size_t max_header_bytes = 16 * 1024; ///< all header lines together
  std::size_t max_headers = 64;
  std::size_t max_body_bytes = 1 * 1024 * 1024;
};

/// A parsed HTTP/1.x request. Header names are stored lower-cased (field
/// names are case-insensitive); values are trimmed of surrounding spaces.
struct HttpRequest {
  std::string method;   ///< "GET", "POST", ... (verbatim)
  std::string target;   ///< request target, e.g. "/metrics"
  std::string version;  ///< "HTTP/1.1" or "HTTP/1.0"
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// First header with the given lower-case name, or nullptr.
  const std::string* Header(const std::string& lower_name) const;

  /// Whether the connection should stay open after this exchange
  /// (HTTP/1.1 default keep-alive, overridden by `Connection:`).
  bool KeepAlive() const;
};

/// A parsed HTTP/1.x response (client side).
struct HttpResponse {
  int status_code = 0;
  std::string reason;
  std::string version;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  const std::string* Header(const std::string& lower_name) const;
};

enum class ParseResult {
  kComplete,    ///< one full message parsed; `*consumed` bytes used
  kIncomplete,  ///< need more bytes; nothing consumed
  kBad,         ///< malformed — the connection should be closed
  kTooLarge,    ///< exceeds HttpLimits — close with 431/413 semantics
};

/// Incremental request parse over a connection buffer. On kComplete the
/// request (line, headers, and Content-Length body) occupied the first
/// `*consumed` bytes of `in`; the caller erases them and may find a second
/// pipelined request behind. On kBad/kTooLarge `*error` names the offence.
/// `Transfer-Encoding` is not supported and parses as kBad.
ParseResult ParseHttpRequest(std::string_view in, std::size_t* consumed,
                             HttpRequest* out, std::string* error,
                             const HttpLimits& limits = HttpLimits{});

/// Incremental response parse (for the in-repo client); same contract.
ParseResult ParseHttpResponse(std::string_view in, std::size_t* consumed,
                              HttpResponse* out, std::string* error,
                              const HttpLimits& limits = HttpLimits{});

/// The canonical reason phrase for a status code ("OK", "Not Found", ...).
const char* ReasonPhrase(int status_code);

/// Splits a request target into its path and query string ("/a/b?x=1" →
/// "/a/b", "x=1"; no '?' → empty query). Views into `target`.
void SplitTarget(std::string_view target, std::string_view* path,
                 std::string_view* query);

/// Looks up `key` in a query string ("a=1&b=2"). Returns false when absent;
/// a bare key ("a&b=2") yields an empty value. No percent-decoding — the
/// replication protocol only passes integers and file-safe identifiers.
bool QueryParam(std::string_view query, std::string_view key,
                std::string* value);

/// Serializes a response head + body with Content-Length and Connection
/// headers. `extra_headers` are emitted verbatim (name, value).
std::string SerializeHttpResponse(
    int status_code, const std::string& content_type, std::string_view body,
    bool keep_alive,
    const std::vector<std::pair<std::string, std::string>>& extra_headers =
        {});

/// Serializes a request head + body (client side).
std::string SerializeHttpRequest(
    const std::string& method, const std::string& target,
    std::string_view body,
    const std::vector<std::pair<std::string, std::string>>& headers = {});

}  // namespace prometheus::net

#endif  // PROMETHEUS_NET_HTTP_H_
