#include <gtest/gtest.h>

#include "taxonomy/rank.h"

namespace prometheus::taxonomy {
namespace {

TEST(RankTest, OrderIsStrictlyIncreasing) {
  const auto& all = AllRanks();
  ASSERT_EQ(all.size(), static_cast<std::size_t>(kRankCount));
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_LT(RankOrder(all[i - 1]), RankOrder(all[i]));
  }
}

TEST(RankTest, FigureOneOrdering) {
  // Spot checks of the figure 1 hierarchy.
  EXPECT_TRUE(IsBelow(Rank::kSpecies, Rank::kGenus));
  EXPECT_TRUE(IsBelow(Rank::kGenus, Rank::kFamilia));
  EXPECT_TRUE(IsBelow(Rank::kSubspecies, Rank::kSpecies));
  EXPECT_TRUE(IsBelow(Rank::kSectio, Rank::kSubgenus));
  EXPECT_TRUE(IsBelow(Rank::kSeries, Rank::kSectio));
  EXPECT_FALSE(IsBelow(Rank::kGenus, Rank::kSpecies));
  EXPECT_FALSE(IsBelow(Rank::kGenus, Rank::kGenus));
}

TEST(RankTest, SevenPrimaryRanks) {
  int primaries = 0;
  for (Rank r : AllRanks()) {
    if (IsPrimaryRank(r)) ++primaries;
  }
  EXPECT_EQ(primaries, 7);
  EXPECT_TRUE(IsPrimaryRank(Rank::kRegnum));
  EXPECT_TRUE(IsPrimaryRank(Rank::kSpecies));
  EXPECT_FALSE(IsPrimaryRank(Rank::kTribus));
  EXPECT_FALSE(IsPrimaryRank(Rank::kSubgenus));
}

TEST(RankTest, FiveSecondaryRanks) {
  int secondaries = 0;
  for (Rank r : AllRanks()) {
    if (IsSecondaryRank(r)) ++secondaries;
  }
  EXPECT_EQ(secondaries, 5);
  EXPECT_TRUE(IsSecondaryRank(Rank::kSectio));
  EXPECT_FALSE(IsSecondaryRank(Rank::kGenus));
}

TEST(RankTest, SubRanksFollowTheirBase) {
  // Each "sub" rank immediately follows the rank it subdivides.
  EXPECT_TRUE(IsSubRank(Rank::kSubgenus));
  EXPECT_TRUE(IsSubRank(Rank::kSubspecies));
  EXPECT_FALSE(IsSubRank(Rank::kGenus));
  EXPECT_EQ(RankOrder(Rank::kSubgenus), RankOrder(Rank::kGenus) + 1);
  EXPECT_EQ(RankOrder(Rank::kSubfamilia), RankOrder(Rank::kFamilia) + 1);
}

TEST(RankTest, EveryRankIsExactlyOneCategory) {
  for (Rank r : AllRanks()) {
    int categories = (IsPrimaryRank(r) ? 1 : 0) +
                     (IsSecondaryRank(r) ? 1 : 0) + (IsSubRank(r) ? 1 : 0);
    EXPECT_EQ(categories, 1) << RankName(r);
  }
}

TEST(RankTest, MultinomialThreshold) {
  EXPECT_FALSE(IsMultinomial(Rank::kGenus));
  EXPECT_FALSE(IsMultinomial(Rank::kSeries));
  EXPECT_TRUE(IsMultinomial(Rank::kSpecies));
  EXPECT_TRUE(IsMultinomial(Rank::kSubspecies));
  EXPECT_TRUE(IsMultinomial(Rank::kForma));
}

class RankNameRoundTrip : public ::testing::TestWithParam<Rank> {};

TEST_P(RankNameRoundTrip, NameParsesBack) {
  Rank r = GetParam();
  auto parsed = RankFromName(RankName(r));
  ASSERT_TRUE(parsed.ok()) << RankName(r);
  EXPECT_EQ(parsed.value(), r);
  // Case-insensitive.
  std::string lower = RankName(r);
  for (char& c : lower) c = static_cast<char>(std::tolower(c));
  EXPECT_EQ(RankFromName(lower).value(), r);
}

INSTANTIATE_TEST_SUITE_P(AllRanks, RankNameRoundTrip,
                         ::testing::ValuesIn(AllRanks()),
                         [](const ::testing::TestParamInfo<Rank>& info) {
                           return RankName(info.param);
                         });

TEST(RankTest, AliasesAndErrors) {
  EXPECT_EQ(RankFromName("Phyllum").value(), Rank::kDivisio);
  EXPECT_EQ(RankFromName("family").value(), Rank::kFamilia);
  EXPECT_EQ(RankFromName("nonsense").status().code(),
            Status::Code::kNotFound);
}

}  // namespace
}  // namespace prometheus::taxonomy
