file(REMOVE_RECURSE
  "CMakeFiles/bench_oo7_queries.dir/bench_oo7_queries.cc.o"
  "CMakeFiles/bench_oo7_queries.dir/bench_oo7_queries.cc.o.d"
  "bench_oo7_queries"
  "bench_oo7_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_oo7_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
