#include <gtest/gtest.h>

#include "oo7/oo7.h"
#include "query/query_engine.h"

namespace prometheus::oo7 {
namespace {

Config SmallConfig() {
  Config config;
  config.composite_parts = 8;
  config.atomic_per_composite = 10;
  config.connections_per_atomic = 3;
  config.assembly_fanout = 2;
  config.assembly_levels = 3;
  config.components_per_base = 2;
  config.seed = 7;
  return config;
}

TEST(Oo7Test, PrometheusBuildHasExpectedShape) {
  Config config = SmallConfig();
  PrometheusOo7 bench(config);
  Database& db = bench.db();
  EXPECT_EQ(db.Extent("CompositePart").size(),
            static_cast<std::size_t>(config.composite_parts));
  EXPECT_EQ(db.Extent("AtomicPart").size(),
            static_cast<std::size_t>(config.total_atomic_parts()));
  // fanout 2, 3 levels: 1 + 2 complex, 4 base.
  EXPECT_EQ(db.Extent("ComplexAssembly").size(), 3u);
  EXPECT_EQ(db.Extent("BaseAssembly").size(), 4u);
  EXPECT_EQ(bench.base_assemblies().size(), 4u);
  // Connections: 3 per atomic part.
  EXPECT_EQ(db.LinkExtent("connected_to").size(),
            static_cast<std::size_t>(config.total_atomic_parts() *
                                     config.connections_per_atomic));
}

TEST(Oo7Test, BothImplementationsDoTheSameWork) {
  Config config = SmallConfig();
  PrometheusOo7 prom(config);
  BaselineOo7 base(config);
  // Identical seeds produce identical structure: traversal visit counts
  // and query answers must agree exactly.
  EXPECT_EQ(prom.TraverseT1(), base.TraverseT1());
  OpCounts pt5 = prom.TraverseT5(1234);
  OpCounts bt5 = base.TraverseT5(1234);
  EXPECT_EQ(pt5.visited, bt5.visited);
  EXPECT_EQ(pt5.updated, bt5.updated);
  EXPECT_EQ(prom.RangeQ2(1500, 2000), base.RangeQ2(1500, 2000));
  EXPECT_EQ(prom.ReverseQ4(50), base.ReverseQ4(50));
  std::uint32_t pc = 0, bc = 0;
  EXPECT_EQ(prom.LookupQ1(100, &pc), base.LookupQ1(100, &bc));
}

TEST(Oo7Test, T5ActuallyUpdates) {
  PrometheusOo7 prom(SmallConfig());
  OpCounts counts = prom.TraverseT5(424242);
  EXPECT_GT(counts.updated, 0u);
  // Spot-check one reachable atomic part.
  Oid comp = prom.composite_parts()[0];
  Oid root = prom.db().Neighbors(comp, "root_part")[0];
  // The root part may or may not be referenced by an assembly; check that
  // at least one atomic part carries the new value.
  bool found = false;
  for (Oid part : prom.db().Extent("AtomicPart")) {
    auto x = prom.db().GetAttribute(part, "x");
    if (x.ok() && x.value().Equals(Value::Int(424242))) {
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found);
  (void)root;
}

TEST(Oo7Test, S1GrowsBothStoresEqually) {
  Config config = SmallConfig();
  PrometheusOo7 prom(config);
  BaselineOo7 base(config);
  std::size_t atoms_before = prom.db().Extent("AtomicPart").size();
  ASSERT_TRUE(prom.InsertS1(3).ok());
  ASSERT_TRUE(base.InsertS1(3).ok());
  EXPECT_EQ(prom.db().Extent("AtomicPart").size(),
            atoms_before + 3u * config.atomic_per_composite);
  EXPECT_EQ(base.atomic_part_count(),
            atoms_before + 3u * config.atomic_per_composite);
}

TEST(Oo7Test, S2CascadesAtomicParts) {
  Config config = SmallConfig();
  PrometheusOo7 prom(config);
  std::size_t comps_before = prom.db().Extent("CompositePart").size();
  std::size_t atoms_before = prom.db().Extent("AtomicPart").size();
  ASSERT_TRUE(prom.DeleteS2(2).ok());
  EXPECT_EQ(prom.db().Extent("CompositePart").size(), comps_before - 2u);
  // Lifetime-dependent aggregation removed each composite's atomic parts.
  EXPECT_EQ(prom.db().Extent("AtomicPart").size(),
            atoms_before - 2u * config.atomic_per_composite);
  // Traversal still works and agrees with a baseline that deleted the
  // same composites.
  BaselineOo7 base(config);
  ASSERT_TRUE(base.DeleteS2(2).ok());
  EXPECT_EQ(prom.TraverseT1(), base.TraverseT1());
}

TEST(Oo7Test, PoolCanQueryTheBenchmarkDatabase) {
  PrometheusOo7 prom(SmallConfig());
  pool::QueryEngine engine(&prom.db());
  auto r = engine.Execute(
      "select count(children(c, 'has_part')) from CompositePart c limit 1");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().rows.size(), 1u);
  EXPECT_TRUE(r.value().rows[0][0].Equals(Value::Int(10)));
  // Weighted connections are queryable as first-class links.
  auto lengths = engine.Execute(
      "select l.length from connected_to l where l.length > 900 limit 5");
  ASSERT_TRUE(lengths.ok());
}

TEST(Oo7Test, DeterministicAcrossRuns) {
  Config config = SmallConfig();
  PrometheusOo7 a(config);
  PrometheusOo7 b(config);
  EXPECT_EQ(a.TraverseT1(), b.TraverseT1());
  EXPECT_EQ(a.RangeQ2(1200, 1800), b.RangeQ2(1200, 1800));
}

}  // namespace
}  // namespace prometheus::oo7
