#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "storage/fault.h"
#include "storage/recovery.h"
#include "storage/snapshot.h"

namespace prometheus::storage {
namespace {

namespace fs = std::filesystem;

AttributeDef Attr(std::string name, ValueType type) {
  AttributeDef a;
  a.name = std::move(name);
  a.type = type;
  return a;
}

/// The schema every store in this suite runs on. Used both as a
/// `DurableStore` bootstrap and to prepare reference databases.
Status Bootstrap(Database* db) {
  auto cls = db->DefineClass("Taxon", {},
                             {Attr("name", ValueType::kString),
                              Attr("year", ValueType::kInt)});
  if (!cls.ok()) return cls.status();
  RelationshipSemantics owns;
  owns.lifetime_dependent = true;
  auto r1 = db->DefineRelationship("owns", "Taxon", "Taxon", owns,
                                   {Attr("note", ValueType::kString)});
  if (!r1.ok()) return r1.status();
  RelationshipSemantics constant;
  constant.constant = true;
  auto r2 = db->DefineRelationship("published", "Taxon", "Taxon", constant);
  if (!r2.ok()) return r2.status();
  return Status::Ok();
}

DurableStore::Options StoreOptions(Env* env = nullptr) {
  DurableStore::Options options;
  options.env = env;
  options.bootstrap = Bootstrap;
  return options;
}

/// Canonical, order-independent digest of all user-visible state: every
/// object and link rendered as its storage record, plus every synonym set.
/// Two databases with equal fingerprints are indistinguishable to queries.
std::string Fingerprint(const Database& db) {
  std::vector<std::string> parts;
  for (const ClassDef* cls : db.classes()) {
    for (Oid oid : db.Extent(cls->name(), /*include_subclasses=*/false)) {
      parts.push_back(ObjectRecord(db, oid));
      std::vector<Oid> set = db.SynonymSet(oid);
      if (set.size() > 1 && oid == *std::min_element(set.begin(), set.end())) {
        std::sort(set.begin(), set.end());
        std::string syn = "SYNSET";
        for (Oid member : set) syn += " " + std::to_string(member);
        parts.push_back(std::move(syn));
      }
    }
  }
  for (const RelationshipDef* rel : db.relationships()) {
    for (Oid lid : db.LinkExtent(rel->name(), false)) {
      parts.push_back(LinkRecord(db, lid));
    }
  }
  std::sort(parts.begin(), parts.end());
  std::string out;
  for (const std::string& p : parts) {
    out += p;
    out += '\n';
  }
  return out;
}

constexpr int kSteps = 200;

/// One deterministic mutation step. Every step succeeds on a healthy
/// database; on a crashed store the vetoed mutation reports an error.
/// Mix: creations, updates, links, cascading deletes, synonym
/// declarations, multi-record committed transactions (which must recover
/// atomically) and aborted transactions (which must never recover).
Status DoStep(Database* db, int i, std::vector<Oid>* pool) {
  auto purge_dead = [&] {
    pool->erase(std::remove_if(pool->begin(), pool->end(),
                               [&](Oid oid) {
                                 return db->GetObject(oid) == nullptr;
                               }),
                pool->end());
  };
  auto create = [&]() -> Status {
    auto obj = db->CreateObject("Taxon", {{"name", Value::String(
                                              "t" + std::to_string(i))},
                                          {"year", Value::Int(i)}});
    if (!obj.ok()) return obj.status();
    pool->push_back(obj.value());
    return Status::Ok();
  };
  switch (i % 10) {
    case 1: {  // cascading delete (lifetime-dependent links kill targets)
      if (i <= 20 || pool->size() < 6) return create();
      Oid victim = (*pool)[(static_cast<std::size_t>(i) * 7) % pool->size()];
      PROMETHEUS_RETURN_IF_ERROR(db->DeleteObject(victim));
      purge_dead();
      return Status::Ok();
    }
    case 3: {  // attribute update
      if (pool->empty()) return create();
      Oid target = (*pool)[static_cast<std::size_t>(i) % pool->size()];
      return db->SetAttribute(target, "year", Value::Int(1900 + i));
    }
    case 5: {  // attributed link between the two newest objects
      if (pool->size() < 2) return create();
      Oid src = (*pool)[pool->size() - 1];
      Oid dst = (*pool)[pool->size() - 2];
      return db->CreateLink("owns", src, dst, kNullOid,
                            {{"note", Value::String("s" + std::to_string(i))}})
          .status();
    }
    case 6: {  // synonym declaration
      if (pool->size() < 4) return create();
      Oid a = (*pool)[(static_cast<std::size_t>(i) * 3) % pool->size()];
      Oid b = (*pool)[(static_cast<std::size_t>(i) * 5 + 1) % pool->size()];
      if (a == b || db->AreSynonyms(a, b)) return create();
      return db->DeclareSynonym(a, b);
    }
    case 7: {  // committed transaction: three records, atomic on recovery
      PROMETHEUS_RETURN_IF_ERROR(db->Begin());
      auto a = db->CreateObject(
          "Taxon", {{"name", Value::String("txn" + std::to_string(i))}});
      if (!a.ok()) return a.status();
      auto b = db->CreateObject("Taxon");
      if (!b.ok()) return b.status();
      PROMETHEUS_RETURN_IF_ERROR(
          db->SetAttribute(a.value(), "year", Value::Int(i)));
      PROMETHEUS_RETURN_IF_ERROR(db->Commit());
      pool->push_back(a.value());
      pool->push_back(b.value());
      return Status::Ok();
    }
    case 9: {  // aborted transaction: must never appear after recovery
      PROMETHEUS_RETURN_IF_ERROR(db->Begin());
      auto ghost = db->CreateObject("Taxon", {{"name", Value::String("ghost")}});
      if (!ghost.ok()) return ghost.status();
      return db->Abort();
    }
    default:
      return create();
  }
}

/// Runs the workload until completion or the first durability failure.
/// Returns the number of fully applied steps.
int RunWorkload(DurableStore* store) {
  std::vector<Oid> pool;
  for (int i = 0; i < kSteps; ++i) {
    if (!DoStep(&store->db(), i, &pool).ok()) return i;
    // A commit whose journal flush crashed still succeeds in memory; the
    // sticky status is how the application learns the store is dead.
    if (!store->status().ok()) return i;
  }
  return kSteps;
}

/// Runs the workload on a plain database, recording the fingerprint at
/// every durable point: after each non-transactional mutation record and
/// after each commit. These are exactly the states a crash at any journal
/// byte may recover to.
std::set<std::string> ReferenceDurableStates(std::string* final_fp) {
  Database db;
  EXPECT_TRUE(Bootstrap(&db).ok());
  std::set<std::string> durable;
  durable.insert(Fingerprint(db));  // a crash before any record lands here
  bool in_txn = false;
  db.bus().Subscribe(
      [&](const Event& e) {
        switch (e.kind) {
          case EventKind::kTransactionBegin:
            in_txn = true;
            break;
          case EventKind::kAfterAbort:
            in_txn = false;
            break;
          case EventKind::kAfterCommit:
            in_txn = false;
            durable.insert(Fingerprint(db));
            break;
          case EventKind::kAfterCreateObject:
          case EventKind::kAfterDeleteObject:
          case EventKind::kAfterSetAttribute:
          case EventKind::kAfterCreateLink:
          case EventKind::kAfterDeleteLink:
          case EventKind::kAfterSetLinkAttribute:
          case EventKind::kAfterDeclareSynonym:
            if (!in_txn) durable.insert(Fingerprint(db));
            break;
          default:
            break;
        }
        return Status::Ok();
      },
      /*priority=*/10);
  std::vector<Oid> pool;
  for (int i = 0; i < kSteps; ++i) {
    EXPECT_TRUE(DoStep(&db, i, &pool).ok()) << "reference step " << i;
  }
  if (final_fp != nullptr) *final_fp = Fingerprint(db);
  return durable;
}

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/prometheus_" + name;
  fs::remove_all(dir);
  return dir;
}

std::vector<std::string> DirEntries(const std::string& dir) {
  std::vector<std::string> names;
  for (const auto& entry : fs::directory_iterator(dir)) {
    names.push_back(entry.path().filename().string());
  }
  std::sort(names.begin(), names.end());
  return names;
}

// ---------------------------------------------------------------- fault env

TEST(FaultInjectionEnvTest, TearsTheFailingAppend) {
  FaultInjectionEnv env;
  FaultPolicy policy;
  policy.fail_after_bytes = 10;
  env.SetPolicy(policy);
  std::string path = ::testing::TempDir() + "/fault_torn.bin";
  auto file = env.NewWritableFile(path, /*truncate=*/true);
  ASSERT_TRUE(file.ok());
  EXPECT_TRUE(file.value()->Append("01234567").ok());  // 8 bytes, under budget
  EXPECT_FALSE(file.value()->Append("abcdefgh").ok());  // crosses the limit
  EXPECT_TRUE(env.crashed());
  // The torn write persisted exactly the byte budget: 8 + 2.
  EXPECT_EQ(env.FileSize(path).value(), 10u);
  // A dead env refuses everything, like a killed process.
  EXPECT_FALSE(file.value()->Append("x").ok());
  EXPECT_FALSE(env.NewWritableFile(path, false).ok());
  EXPECT_FALSE(env.RenameFile(path, path + ".2").ok());
  // SetPolicy revives it for the next matrix entry.
  env.SetPolicy(FaultPolicy());
  EXPECT_FALSE(env.crashed());
  EXPECT_TRUE(env.NewWritableFile(path, true).ok());
}

TEST(FaultInjectionEnvTest, AppendCountFaultSuppressesTearing) {
  FaultInjectionEnv env;
  FaultPolicy policy;
  policy.fail_after_appends = 2;
  policy.torn_writes = false;
  env.SetPolicy(policy);
  std::string path = ::testing::TempDir() + "/fault_count.bin";
  auto file = env.NewWritableFile(path, true);
  ASSERT_TRUE(file.ok());
  EXPECT_TRUE(file.value()->Append("aaaa").ok());
  EXPECT_FALSE(file.value()->Append("bbbb").ok());  // 2nd append crashes
  EXPECT_EQ(env.FileSize(path).value(), 4u);  // nothing of it persisted
}

TEST(FaultInjectionEnvTest, SyncAndRenameFaultsDoNotCrashTheEnv) {
  FaultInjectionEnv env;
  FaultPolicy policy;
  policy.fail_sync = true;
  policy.fail_rename = true;
  env.SetPolicy(policy);
  std::string path = ::testing::TempDir() + "/fault_sync.bin";
  auto file = env.NewWritableFile(path, true);
  ASSERT_TRUE(file.ok());
  EXPECT_TRUE(file.value()->Append("data").ok());
  EXPECT_FALSE(file.value()->Sync().ok());
  EXPECT_FALSE(env.RenameFile(path, path + ".2").ok());
  EXPECT_FALSE(env.crashed());  // still alive: writes keep flowing
  EXPECT_TRUE(file.value()->Append("more").ok());
}

// ------------------------------------------------------------ durable store

TEST(DurableStoreTest, FreshStoreBootstrapsAndSurvivesReopen) {
  std::string dir = FreshDir("fresh");
  std::string fp;
  {
    auto store = DurableStore::Open(dir, StoreOptions());
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    EXPECT_TRUE(store.value()->recovery_info().snapshot_file.empty());
    Database& db = store.value()->db();
    ASSERT_NE(db.FindClass("Taxon"), nullptr);  // bootstrap ran
    ASSERT_TRUE(db.CreateObject("Taxon", {{"name", Value::String("a")}}).ok());
    ASSERT_TRUE(db.CreateObject("Taxon", {{"name", Value::String("b")}}).ok());
    fp = Fingerprint(db);
  }
  auto reopened = DurableStore::Open(dir, StoreOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(Fingerprint(reopened.value()->db()), fp);
  EXPECT_EQ(reopened.value()->recovery_info().replayed_records, 2u);
  EXPECT_FALSE(reopened.value()->recovery_info().torn_tail);
}

// A bootstrap that seeds *data* (not just schema) must survive a reopen
// even when no checkpoint ever ran: the full journal's prologue has to
// carry the bootstrapped objects, links, and synonyms, or replay starts
// from an empty database and every record referencing them fails.
TEST(DurableStoreTest, BootstrapDataSurvivesReopenWithoutCheckpoint) {
  auto seeded = [](Database* db) -> Status {
    PROMETHEUS_RETURN_IF_ERROR(Bootstrap(db));
    auto a = db->CreateObject("Taxon", {{"name", Value::String("seed-a")},
                                        {"year", Value::Int(1753)}});
    if (!a.ok()) return a.status();
    auto b = db->CreateObject("Taxon", {{"name", Value::String("seed-b")}});
    if (!b.ok()) return b.status();
    auto c = db->CreateObject("Taxon", {{"name", Value::String("seed-c")}});
    if (!c.ok()) return c.status();
    PROMETHEUS_RETURN_IF_ERROR(
        db->CreateLink("owns", a.value(), b.value(), kNullOid,
                       {{"note", Value::String("from bootstrap")}})
            .status());
    return db->DeclareSynonym(b.value(), c.value());
  };
  DurableStore::Options options;
  options.bootstrap = seeded;

  std::string dir = FreshDir("bootstrap_data");
  std::string fp;
  {
    auto store = DurableStore::Open(dir, options);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    Database& db = store.value()->db();
    EXPECT_EQ(db.object_count(), 3u);
    // Mutate a bootstrapped object so replay must resolve it by oid.
    std::vector<Oid> extent = db.Extent("Taxon", false);
    ASSERT_FALSE(extent.empty());
    ASSERT_TRUE(db.SetAttribute(extent.front(), "year",
                                Value::Int(1859)).ok());
    fp = Fingerprint(db);
  }  // no Checkpoint: everything must come back from the journal alone
  auto reopened = DurableStore::Open(dir, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  Database& db = reopened.value()->db();
  EXPECT_EQ(Fingerprint(db), fp);
  EXPECT_EQ(db.object_count(), 3u);
  EXPECT_TRUE(reopened.value()->recovery_info().snapshot_file.empty());
  EXPECT_FALSE(reopened.value()->recovery_info().torn_tail);
}

// Schema defined at *runtime* — through the live store, not a bootstrap —
// must be journaled like any mutation: a class defined after open, with
// objects created in it, has to survive a reopen with no checkpoint.
TEST(DurableStoreTest, RuntimeDdlSurvivesReopenWithoutCheckpoint) {
  std::string dir = FreshDir("runtime_ddl");
  std::string fp;
  {
    auto store = DurableStore::Open(dir, DurableStore::Options{});
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    Database& db = store.value()->db();
    ASSERT_TRUE(Bootstrap(&db).ok());  // DDL on the live, journaled db
    RelationshipSemantics plain;
    ASSERT_TRUE(db.DefineRelationshipTemplate("annotates", plain,
                                              {Attr("text",
                                                    ValueType::kString)})
                    .ok());
    ASSERT_TRUE(
        db.InstantiateRelationship("annotates", "remarks", "Taxon", "Taxon")
            .ok());
    auto a = db.CreateObject("Taxon", {{"name", Value::String("live-a")}});
    ASSERT_TRUE(a.ok());
    auto b = db.CreateObject("Taxon", {{"name", Value::String("live-b")}});
    ASSERT_TRUE(b.ok());
    ASSERT_TRUE(db.CreateLink("remarks", a.value(), b.value(), kNullOid,
                              {{"text", Value::String("runtime")}})
                    .ok());
    fp = Fingerprint(db);
  }  // no Checkpoint: schema + data must both come back from the journal
  auto reopened = DurableStore::Open(dir, DurableStore::Options{});
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  Database& db = reopened.value()->db();
  EXPECT_EQ(Fingerprint(db), fp);
  ASSERT_NE(db.FindClass("Taxon"), nullptr);
  ASSERT_NE(db.FindRelationship("remarks"), nullptr);
  EXPECT_NE(db.FindTemplateSemantics("annotates"), nullptr);
  EXPECT_EQ(db.object_count(), 2u);
  EXPECT_FALSE(reopened.value()->recovery_info().torn_tail);
}

TEST(DurableStoreTest, ReopenAppendsToTheLiveJournal) {
  std::string dir = FreshDir("reopen_append");
  for (int round = 0; round < 3; ++round) {
    auto store = DurableStore::Open(dir, StoreOptions());
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    ASSERT_TRUE(store.value()
                    ->db()
                    .CreateObject("Taxon",
                                  {{"year", Value::Int(round)}})
                    .ok());
  }
  auto store = DurableStore::Open(dir, StoreOptions());
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store.value()->db().object_count(), 3u);
  // No checkpoint ever ran: everything lives in the one full journal.
  EXPECT_EQ(DirEntries(dir),
            std::vector<std::string>({"journal-000001.log"}));
}

TEST(DurableStoreTest, CheckpointRotatesPrunesAndRecovers) {
  std::string dir = FreshDir("checkpoint");
  std::string fp;
  {
    auto opened = DurableStore::Open(dir, StoreOptions());
    ASSERT_TRUE(opened.ok());
    DurableStore& store = *opened.value();
    std::vector<Oid> pool;
    for (int i = 0; i < 40; ++i) ASSERT_TRUE(DoStep(&store.db(), i, &pool).ok());
    ASSERT_TRUE(store.Checkpoint().ok()) << store.status().ToString();
    EXPECT_EQ(store.generation(), 2u);
    for (int i = 40; i < 80; ++i) ASSERT_TRUE(DoStep(&store.db(), i, &pool).ok());
    ASSERT_TRUE(store.Checkpoint().ok());
    EXPECT_EQ(store.generation(), 4u);
    for (int i = 80; i < 100; ++i) {
      ASSERT_TRUE(DoStep(&store.db(), i, &pool).ok());
    }
    fp = Fingerprint(store.db());
  }
  // Current generation + one fallback generation; nothing older.
  EXPECT_EQ(DirEntries(dir),
            std::vector<std::string>({"journal-000003.log", "journal-000005.log",
                                      "snapshot-000002.pdb",
                                      "snapshot-000004.pdb"}));
  auto reopened = DurableStore::Open(dir, StoreOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value()->recovery_info().snapshot_file,
            "snapshot-000004.pdb");
  EXPECT_EQ(Fingerprint(reopened.value()->db()), fp);
  EXPECT_TRUE(reopened.value()->db().ValidateCardinality().ok());
}

TEST(DurableStoreTest, CorruptNewestSnapshotFallsBackToPreviousGeneration) {
  std::string dir = FreshDir("fallback");
  std::string fp;
  {
    auto opened = DurableStore::Open(dir, StoreOptions());
    ASSERT_TRUE(opened.ok());
    DurableStore& store = *opened.value();
    std::vector<Oid> pool;
    for (int i = 0; i < 40; ++i) ASSERT_TRUE(DoStep(&store.db(), i, &pool).ok());
    ASSERT_TRUE(store.Checkpoint().ok());
    for (int i = 40; i < 80; ++i) ASSERT_TRUE(DoStep(&store.db(), i, &pool).ok());
    ASSERT_TRUE(store.Checkpoint().ok());
    for (int i = 80; i < 100; ++i) {
      ASSERT_TRUE(DoStep(&store.db(), i, &pool).ok());
    }
    fp = Fingerprint(store.db());
  }
  // Maul the newest snapshot; recovery must fall back to the previous one
  // and reconstruct the exact same state through the journal chain.
  {
    std::fstream f(dir + "/snapshot-000004.pdb",
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(40);
    f.write("XXXXXXXXXXXXXXXX", 16);
  }
  auto reopened = DurableStore::Open(dir, StoreOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value()->recovery_info().snapshot_file,
            "snapshot-000002.pdb");
  ASSERT_EQ(reopened.value()->recovery_info().skipped.size(), 1u);
  EXPECT_EQ(Fingerprint(reopened.value()->db()), fp);
  // The store stays fully usable: it can mutate and checkpoint again.
  ASSERT_TRUE(reopened.value()->db().CreateObject("Taxon").ok());
  EXPECT_TRUE(reopened.value()->Checkpoint().ok());
}

// ----------------------------------------------------- checkpoint crashes

class CheckpointCrashTest : public ::testing::Test {
 protected:
  /// Builds a store with one valid checkpoint plus journal tail, then
  /// returns it (opened through `fenv`). `fp` is the pre-crash fingerprint.
  Result<std::unique_ptr<DurableStore>> Build(const std::string& name) {
    dir = FreshDir(name);
    auto opened = DurableStore::Open(dir, StoreOptions(&fenv));
    if (!opened.ok()) return opened.status();
    std::unique_ptr<DurableStore> store = std::move(opened).value();
    std::vector<Oid> pool;
    for (int i = 0; i < 40; ++i) {
      Status st = DoStep(&store->db(), i, &pool);
      if (!st.ok()) return st;
    }
    if (Status st = store->Checkpoint(); !st.ok()) return st;
    for (int i = 40; i < 60; ++i) {
      Status st = DoStep(&store->db(), i, &pool);
      if (!st.ok()) return st;
    }
    fp = Fingerprint(store->db());
    return store;
  }

  void ExpectCleanRecovery() {
    auto reopened = DurableStore::Open(dir, StoreOptions());
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    EXPECT_EQ(reopened.value()->recovery_info().snapshot_file,
              "snapshot-000002.pdb");
    EXPECT_EQ(Fingerprint(reopened.value()->db()), fp);
    EXPECT_TRUE(reopened.value()->db().ValidateCardinality().ok());
    // No staging leftovers survive recovery, and the next checkpoint works.
    for (const std::string& name : DirEntries(dir)) {
      EXPECT_EQ(name.find(".tmp"), std::string::npos) << name;
    }
    EXPECT_TRUE(reopened.value()->Checkpoint().ok());
  }

  FaultInjectionEnv fenv;
  std::string dir;
  std::string fp;
};

TEST_F(CheckpointCrashTest, CrashMidSnapshotWriteKeepsPreviousGeneration) {
  auto store = Build("ckpt_crash_bytes");
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  FaultPolicy policy;
  policy.fail_after_bytes = 200;  // dies inside the .tmp staging write
  fenv.SetPolicy(policy);
  EXPECT_FALSE(store.value()->Checkpoint().ok());
  store.value().reset();
  ExpectCleanRecovery();
}

TEST_F(CheckpointCrashTest, FailedRenameKeepsPreviousGeneration) {
  auto store = Build("ckpt_crash_rename");
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  FaultPolicy policy;
  policy.fail_rename = true;
  fenv.SetPolicy(policy);
  EXPECT_FALSE(store.value()->Checkpoint().ok());
  // A failed rename is not a crash: the journal is still live and the
  // store keeps accepting (and journalling) mutations.
  ASSERT_TRUE(store.value()->db().CreateObject("Taxon").ok());
  fp = Fingerprint(store.value()->db());
  store.value().reset();
  ExpectCleanRecovery();
}

TEST_F(CheckpointCrashTest, FailedFsyncKeepsPreviousGeneration) {
  auto store = Build("ckpt_crash_sync");
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  FaultPolicy policy;
  policy.fail_sync = true;
  fenv.SetPolicy(policy);
  EXPECT_FALSE(store.value()->Checkpoint().ok());
  store.value().reset();
  ExpectCleanRecovery();
}

// --------------------------------------------------------- crash matrix

/// The tentpole test: crash at every single append the durability layer
/// ever makes during a 200-step (≈220-record) workload, recover, and
/// require the recovered state to be byte-for-byte one of the reference
/// run's durable states — i.e. a consistent prefix of the committed
/// history, with committed transactions atomic and aborted ones absent.
TEST(CrashMatrixTest, EveryAppendCrashRecoversToADurablePrefix) {
  std::string final_fp;
  const std::set<std::string> durable = ReferenceDurableStates(&final_fp);
  ASSERT_GT(durable.size(), 150u);  // the workload is genuinely long

  // Probe run: count the appends of a fault-free execution.
  std::uint64_t total_appends = 0;
  {
    FaultInjectionEnv fenv;
    std::string dir = FreshDir("crash_probe");
    auto store = DurableStore::Open(dir, StoreOptions(&fenv));
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    ASSERT_EQ(RunWorkload(store.value().get()), kSteps);
    EXPECT_EQ(Fingerprint(store.value()->db()), final_fp);
    store.value().reset();  // END record
    total_appends = fenv.appends_seen();
  }
  ASSERT_GT(total_appends, 220u);

  FaultInjectionEnv fenv;
  for (std::uint64_t k = 1; k <= total_appends; ++k) {
    SCOPED_TRACE("crash at append " + std::to_string(k));
    std::string dir = FreshDir("crash_matrix");
    FaultPolicy policy;
    policy.fail_after_appends = static_cast<std::int64_t>(k);
    policy.torn_writes = (k % 2 == 0);  // alternate torn and clean crashes
    fenv.SetPolicy(policy);
    {
      auto store = DurableStore::Open(dir, StoreOptions(&fenv));
      if (store.ok()) RunWorkload(store.value().get());
      // The store dies here: destructor close fails silently, like a kill.
    }
    auto recovered = DurableStore::Open(dir, StoreOptions());
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    const Database& db = recovered.value()->db();
    EXPECT_EQ(durable.count(Fingerprint(db)), 1u)
        << "recovered state is not a durable prefix";
    EXPECT_TRUE(db.ValidateCardinality().ok());
    ASSERT_NE(db.FindClass("Taxon"), nullptr);
  }
}

// ----------------------------------------------------- corruption matrices

TEST(CorruptionMatrixTest, JournalByteFlipsNeverCrashReplay) {
  std::string path = ::testing::TempDir() + "/corrupt_journal.log";
  Database db;
  ASSERT_TRUE(Bootstrap(&db).ok());
  {
    auto journal = Journal::Open(&db, path, Journal::OpenMode::kTruncate);
    ASSERT_TRUE(journal.ok());
    std::vector<Oid> pool;
    for (int i = 0; i < 30; ++i) ASSERT_TRUE(DoStep(&db, i, &pool).ok());
  }
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    bytes = buf.str();
  }
  Database reference;
  Journal::ReplayReport ref_report;
  ASSERT_TRUE(Journal::Replay(&reference, path, &ref_report).ok());

  std::string flipped_path = path + ".flip";
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string mutated = bytes;
    mutated[i] = static_cast<char>(mutated[i] ^ 0xFF);
    std::ofstream(flipped_path, std::ios::binary) << mutated;
    Database replica;
    Journal::ReplayReport report;
    Status st = Journal::Replay(&replica, flipped_path, &report);
    // Clean outcome only: either the valid prefix replays, or the stream
    // is rejected with kIoError. Never a crash, never a throw.
    EXPECT_TRUE(st.ok() || st.code() == Status::Code::kIoError)
        << "byte " << i << ": " << st.ToString();
    if (st.ok()) {
      EXPECT_LE(report.applied_records, ref_report.applied_records);
    }
  }
}

TEST(CorruptionMatrixTest, JournalTruncationAtEveryByteRecoversAPrefix) {
  std::string path = ::testing::TempDir() + "/truncate_journal.log";
  Database db;
  ASSERT_TRUE(Bootstrap(&db).ok());
  {
    auto journal = Journal::Open(&db, path, Journal::OpenMode::kTruncate);
    ASSERT_TRUE(journal.ok());
    std::vector<Oid> pool;
    for (int i = 0; i < 20; ++i) ASSERT_TRUE(DoStep(&db, i, &pool).ok());
  }
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    bytes = buf.str();
  }
  Database reference;
  Journal::ReplayReport ref_report;
  ASSERT_TRUE(Journal::Replay(&reference, path, &ref_report).ok());
  std::uint64_t max_applied = 0;
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::istringstream in(bytes.substr(0, cut));
    Database replica;
    Journal::ReplayReport report;
    Status st = Journal::Replay(&replica, in, &report);
    if (st.ok()) {
      EXPECT_LE(report.applied_records, ref_report.applied_records);
      max_applied = std::max(max_applied, report.applied_records);
      // Applied records grow monotonically with the cut: a longer prefix
      // never recovers less.
      EXPECT_GE(report.applied_records, max_applied);
    } else {
      EXPECT_EQ(st.code(), Status::Code::kIoError);
    }
  }
  EXPECT_EQ(max_applied, ref_report.applied_records);
}

TEST(CorruptionMatrixTest, SnapshotTruncationAtEveryLineLeavesDbUntouched) {
  Database db;
  ASSERT_TRUE(Bootstrap(&db).ok());
  std::vector<Oid> pool;
  for (int i = 0; i < 30; ++i) ASSERT_TRUE(DoStep(&db, i, &pool).ok());
  std::ostringstream out;
  ASSERT_TRUE(SaveSnapshot(db, out).ok());
  const std::string full = out.str();
  int boundaries = 0;
  for (std::size_t pos = full.find('\n'); pos != std::string::npos;
       pos = full.find('\n', pos + 1)) {
    std::string prefix = full.substr(0, pos + 1);
    if (prefix.size() == full.size()) break;  // the complete snapshot
    ++boundaries;
    std::istringstream in(prefix);
    Database target;
    Status st = LoadSnapshot(&target, in);
    EXPECT_EQ(st.code(), Status::Code::kIoError) << "line boundary " << pos;
    // Completeness is checked before anything is applied: the target
    // database is still pristine, not partially mutated.
    EXPECT_EQ(target.object_count(), 0u);
    EXPECT_EQ(target.link_count(), 0u);
    EXPECT_TRUE(target.classes().empty());
  }
  EXPECT_GT(boundaries, 15);
}

TEST(CorruptionMatrixTest, SnapshotByteFlipsNeverCrashLoad) {
  Database db;
  ASSERT_TRUE(Bootstrap(&db).ok());
  std::vector<Oid> pool;
  for (int i = 0; i < 30; ++i) ASSERT_TRUE(DoStep(&db, i, &pool).ok());
  std::ostringstream out;
  ASSERT_TRUE(SaveSnapshot(db, out).ok());
  const std::string full = out.str();
  for (std::size_t i = 0; i < full.size(); ++i) {
    std::string mutated = full;
    mutated[i] = static_cast<char>(mutated[i] ^ 0xFF);
    std::istringstream in(mutated);
    Database target;
    Status st = LoadSnapshot(&target, in);
    // Exception-free parsing: every flip yields Ok (benign, e.g. inside a
    // string payload) or a clean kIoError — never a crash or a throw.
    EXPECT_TRUE(st.ok() || st.code() == Status::Code::kIoError)
        << "byte " << i << ": " << st.ToString();
  }
}

}  // namespace
}  // namespace prometheus::storage
