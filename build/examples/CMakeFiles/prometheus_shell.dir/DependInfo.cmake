
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/prometheus_shell.cpp" "examples/CMakeFiles/prometheus_shell.dir/prometheus_shell.cpp.o" "gcc" "examples/CMakeFiles/prometheus_shell.dir/prometheus_shell.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/query/CMakeFiles/prometheus_query.dir/DependInfo.cmake"
  "/root/repo/build/src/rules/CMakeFiles/prometheus_rules.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/prometheus_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/prometheus_index.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/prometheus_core.dir/DependInfo.cmake"
  "/root/repo/build/src/event/CMakeFiles/prometheus_event.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/prometheus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
