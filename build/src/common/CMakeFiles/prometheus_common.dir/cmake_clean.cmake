file(REMOVE_RECURSE
  "CMakeFiles/prometheus_common.dir/status.cc.o"
  "CMakeFiles/prometheus_common.dir/status.cc.o.d"
  "CMakeFiles/prometheus_common.dir/value.cc.o"
  "CMakeFiles/prometheus_common.dir/value.cc.o.d"
  "libprometheus_common.a"
  "libprometheus_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prometheus_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
