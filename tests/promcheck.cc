// promcheck: reads a Prometheus text exposition from stdin and validates
// it with the strict conformance parser the test suite uses. Exit 0 when
// clean; exit 1 with the offence on stderr otherwise. The CI smoke job
// pipes a live `curl /metrics` scrape through this, so a conformance
// regression fails the build even if no unit test anticipated it.
//
//   curl -fsS localhost:9464/metrics | ./promcheck

#include <iostream>
#include <sstream>
#include <string>

#include "prometheus_text_parser.h"

int main() {
  std::ostringstream input;
  input << std::cin.rdbuf();
  const std::string text = input.str();

  prometheus::testing::PromExposition exposition;
  const std::string error =
      prometheus::testing::ParsePrometheusText(text, &exposition);
  if (!error.empty()) {
    std::cerr << "promcheck: " << error << "\n";
    return 1;
  }
  std::size_t samples = 0;
  for (const auto& f : exposition.families) samples += f.samples.size();
  std::cout << "promcheck: OK — " << exposition.families.size()
            << " families, " << samples << " samples\n";
  return 0;
}
