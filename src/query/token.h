#ifndef PROMETHEUS_QUERY_TOKEN_H_
#define PROMETHEUS_QUERY_TOKEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace prometheus::pool {

/// Lexical token kinds of POOL (thesis 5.1.1). Keywords are
/// case-insensitive, identifiers case-sensitive.
enum class TokenKind : std::uint8_t {
  kEnd,
  kIdentifier,
  kInt,
  kDouble,
  kString,
  // Keywords.
  kSelect,
  kDistinct,
  kFrom,
  kWhere,
  kOrder,
  kBy,
  kGroup,
  kHaving,
  kAsc,
  kDesc,
  kLimit,
  kAs,
  kAnd,
  kOr,
  kNot,
  kIn,
  kLike,
  kTrue,
  kFalse,
  kNull,
  // Punctuation / operators.
  kComma,
  kDot,
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kStar,
  kPlus,
  kMinus,
  kSlash,
  kPercent,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
};

/// A lexical token with its source position (for error messages).
struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;        ///< identifier / string payload
  std::int64_t int_value = 0;
  double double_value = 0;
  std::size_t offset = 0;  ///< byte offset into the source
};

/// Tokenizes POOL source text. Unterminated strings and unknown characters
/// produce kParseError.
Result<std::vector<Token>> Tokenize(const std::string& source);

}  // namespace prometheus::pool

#endif  // PROMETHEUS_QUERY_TOKEN_H_
