#include "storage/import.h"

#include <fstream>

#include "storage/snapshot.h"

namespace prometheus::storage {

namespace {

/// Rewrites every object reference inside `value` through `map`.
/// References to objects outside the snapshot become null.
Value RemapValue(const Value& value,
                 const std::unordered_map<Oid, Oid>& map) {
  switch (value.type()) {
    case ValueType::kRef: {
      auto it = map.find(value.AsRef());
      return it == map.end() ? Value::Null() : Value::Ref(it->second);
    }
    case ValueType::kList: {
      Value::List out;
      out.reserve(value.AsList().size());
      for (const Value& v : value.AsList()) {
        out.push_back(RemapValue(v, map));
      }
      return Value::MakeList(std::move(out));
    }
    case ValueType::kStruct: {
      Value::Struct out;
      out.reserve(value.AsStruct().size());
      for (const auto& [name, v] : value.AsStruct()) {
        out.emplace_back(name, RemapValue(v, map));
      }
      return Value::MakeStruct(std::move(out));
    }
    default:
      return value;
  }
}

/// True when `value` contains an object reference anywhere.
bool ContainsRef(const Value& value) {
  if (value.type() == ValueType::kRef) return true;
  if (value.type() == ValueType::kList) {
    for (const Value& v : value.AsList()) {
      if (ContainsRef(v)) return true;
    }
  }
  if (value.type() == ValueType::kStruct) {
    for (const auto& [name, v] : value.AsStruct()) {
      if (ContainsRef(v)) return true;
    }
  }
  return false;
}

Status MergeSchema(Database* db, const Database& src, ImportReport* report) {
  for (const ClassDef* cls : src.classes()) {
    const ClassDef* existing = db->FindClass(cls->name());
    if (existing != nullptr) {
      // The sources must agree on the attributes they share.
      for (const AttributeDef& attr : cls->attributes()) {
        const AttributeDef* found = existing->FindAttribute(attr.name);
        if (found == nullptr) {
          return Status::InvalidArgument(
              "schema conflict: class '" + cls->name() +
              "' lacks imported attribute '" + attr.name + "'");
        }
        if (found->type != attr.type) {
          return Status::InvalidArgument(
              "schema conflict: attribute '" + cls->name() + "." +
              attr.name + "' has a different type in the import");
        }
      }
      continue;
    }
    std::vector<std::string> supers;
    for (const ClassDef* s : cls->supers()) supers.push_back(s->name());
    std::vector<AttributeDef> attrs = cls->attributes();
    PROMETHEUS_RETURN_IF_ERROR(
        db->DefineClass(cls->name(), supers, std::move(attrs),
                        cls->is_abstract())
            .status());
    for (const MethodDef& method : cls->methods()) {
      PROMETHEUS_RETURN_IF_ERROR(db->DefineMethod(cls->name(), method));
    }
    ++report->classes_defined;
  }
  for (const RelationshipDef* rel : src.relationships()) {
    const RelationshipDef* existing = db->FindRelationship(rel->name());
    if (existing != nullptr) {
      if (existing->source_class()->name() != rel->source_class()->name() ||
          existing->target_class()->name() != rel->target_class()->name()) {
        return Status::InvalidArgument(
            "schema conflict: relationship '" + rel->name() +
            "' relates different classes in the import");
      }
      for (const AttributeDef& attr : rel->attributes()) {
        if (existing->FindAttribute(attr.name) == nullptr) {
          return Status::InvalidArgument(
              "schema conflict: relationship '" + rel->name() +
              "' lacks imported attribute '" + attr.name + "'");
        }
      }
      continue;
    }
    std::vector<std::string> supers;
    for (const RelationshipDef* s : rel->supers()) {
      supers.push_back(s->name());
    }
    std::vector<AttributeDef> attrs = rel->attributes();
    PROMETHEUS_RETURN_IF_ERROR(
        db->DefineRelationship(rel->name(), rel->source_class()->name(),
                               rel->target_class()->name(), rel->semantics(),
                               std::move(attrs), supers)
            .status());
    ++report->relationships_defined;
  }
  return Status::Ok();
}

}  // namespace

Result<ImportReport> ImportSnapshot(Database* db, std::istream& in) {
  // Stage the snapshot in a scratch database, then merge object by object
  // through the public API so events/rules/indexes observe the import.
  Database staging;
  PROMETHEUS_RETURN_IF_ERROR(LoadSnapshot(&staging, in));

  ImportReport report;
  PROMETHEUS_RETURN_IF_ERROR(MergeSchema(db, staging, &report));

  // Pass 1: create the objects with their non-reference attributes.
  for (const ClassDef* cls : staging.classes()) {
    for (Oid old_oid :
         staging.Extent(cls->name(), /*include_subclasses=*/false)) {
      const Object* obj = staging.GetObject(old_oid);
      std::vector<AttrInit> inits;
      for (const auto& [name, value] : obj->attrs) {
        if (!ContainsRef(value)) inits.emplace_back(name, value);
      }
      PROMETHEUS_ASSIGN_OR_RETURN(
          Oid fresh, db->CreateObject(cls->name(), std::move(inits)));
      report.oid_map[old_oid] = fresh;
      ++report.objects_imported;
    }
  }
  // Pass 2: reference-bearing attributes, now that the map is complete.
  for (const auto& [old_oid, fresh] : report.oid_map) {
    const Object* obj = staging.GetObject(old_oid);
    for (const auto& [name, value] : obj->attrs) {
      if (!ContainsRef(value)) continue;
      PROMETHEUS_RETURN_IF_ERROR(
          db->SetAttribute(fresh, name, RemapValue(value, report.oid_map)));
    }
  }
  // Pass 3: links, with endpoints, contexts and attributes remapped.
  for (const RelationshipDef* rel : staging.relationships()) {
    for (Oid lid : staging.LinkExtent(rel->name(),
                                      /*include_subrelationships=*/false)) {
      const Link* link = staging.GetLink(lid);
      auto src = report.oid_map.find(link->source);
      auto dst = report.oid_map.find(link->target);
      if (src == report.oid_map.end() || dst == report.oid_map.end()) {
        return Status::IoError("imported link references a missing object");
      }
      Oid ctx = kNullOid;
      if (link->context != kNullOid) {
        auto mapped = report.oid_map.find(link->context);
        if (mapped != report.oid_map.end()) ctx = mapped->second;
      }
      std::vector<AttrInit> inits;
      for (const auto& [name, value] : link->attrs) {
        inits.emplace_back(name, RemapValue(value, report.oid_map));
      }
      PROMETHEUS_RETURN_IF_ERROR(
          db->CreateLink(rel->name(), src->second, dst->second, ctx,
                         std::move(inits))
              .status());
      ++report.links_imported;
    }
  }
  // Pass 4: synonym sets.
  for (const auto& [old_oid, fresh] : report.oid_map) {
    Oid root = staging.CanonicalOf(old_oid);
    if (root == old_oid) continue;
    auto mapped_root = report.oid_map.find(root);
    if (mapped_root == report.oid_map.end()) continue;
    PROMETHEUS_RETURN_IF_ERROR(
        db->DeclareSynonym(fresh, mapped_root->second));
    ++report.synonyms_imported;
  }
  return report;
}

Result<ImportReport> ImportSnapshot(Database* db, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "'");
  return ImportSnapshot(db, in);
}

}  // namespace prometheus::storage
