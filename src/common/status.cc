#include "common/status.h"

namespace prometheus {

const char* StatusCodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kConstraintViolation:
      return "ConstraintViolation";
    case Status::Code::kAborted:
      return "Aborted";
    case Status::Code::kParseError:
      return "ParseError";
    case Status::Code::kTypeError:
      return "TypeError";
    case Status::Code::kIoError:
      return "IoError";
    case Status::Code::kFailedPrecondition:
      return "FailedPrecondition";
    case Status::Code::kDeadlineExceeded:
      return "DeadlineExceeded";
    case Status::Code::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace prometheus
