file(REMOVE_RECURSE
  "CMakeFiles/prometheus_storage.dir/import.cc.o"
  "CMakeFiles/prometheus_storage.dir/import.cc.o.d"
  "CMakeFiles/prometheus_storage.dir/journal.cc.o"
  "CMakeFiles/prometheus_storage.dir/journal.cc.o.d"
  "CMakeFiles/prometheus_storage.dir/snapshot.cc.o"
  "CMakeFiles/prometheus_storage.dir/snapshot.cc.o.d"
  "libprometheus_storage.a"
  "libprometheus_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prometheus_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
