file(REMOVE_RECURSE
  "libprometheus_index.a"
)
